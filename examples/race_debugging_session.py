#!/usr/bin/env python
"""A debugging session: find a race, fix it, confirm the fix, compare detectors.

The paper positions race detection as a *debugging* technique (Section V-A):
you run your program at small scale with detection enabled, read the report,
add the missing synchronization, and re-run.  This example walks that loop on
the producer/consumer hand-off:

1. run the buggy version (flag polling, no synchronization) — the detector
   flags the ``flag`` and ``buffer`` cells;
2. cross-check with the execution-varying oracle: re-running under different
   seeds really does change what the consumer observes, so the race is real;
3. apply the fix (a barrier between production and consumption) and re-run —
   the detector is silent and the consumer always sees the full payload;
4. replay the buggy trace through the offline detectors to compare the paper's
   dual-clock algorithm with the single-clock and lockset baselines.

Run with ``python examples/race_debugging_session.py``.
"""

from repro.analysis.reporting import format_race_report, format_table
from repro.detectors import (
    LocksetDetector,
    PostMortemDualClockDetector,
    SeedVaryingOracle,
    SingleClockDetector,
)
from repro.workloads import ProducerConsumerWorkload


def main() -> None:
    # Step 1: the buggy program.  The consumer's think time is drawn so that
    # its reads land in the middle of the producer's write sequence — the
    # regime where the race actually changes what it observes.
    buggy = ProducerConsumerWorkload(synchronized=False, consumer_delay=15.0)
    buggy_outcome = buggy.run(seed=0)
    print(format_race_report(buggy_outcome.run, title="step 1: races in the unsynchronized hand-off"))
    print()

    # Step 2: is it a real race?  Ask the execution-varying oracle.
    oracle = SeedVaryingOracle(buggy.factory(), seeds=tuple(range(8)))
    truth = oracle.evaluate()
    observed = {
        (run.per_rank_private[1].get("saw_flag"), tuple(run.per_rank_private[1].get("received", [])))
        for run in truth.runs.values()
    }
    print("step 2: (flag seen, buffer contents) observed across eight interleavings:")
    for row in sorted(observed, key=repr):
        print(f"  {row}")
    print(f"  oracle verdict: {'REAL race' if truth.racy else 'no observable divergence'}")
    print()

    # Step 3: the fix.
    fixed = ProducerConsumerWorkload(synchronized=True)
    fixed_outcome = fixed.run(seed=0)
    print(
        format_table(
            ["variant", "race signals", "consumer received"],
            [
                (
                    "buggy (flag polling)",
                    buggy_outcome.run.race_count,
                    buggy_outcome.runtime.private_memories[1].read("received"),
                ),
                (
                    "fixed (barrier)",
                    fixed_outcome.run.race_count,
                    fixed_outcome.runtime.private_memories[1].read("received"),
                ),
            ],
            title="step 3: before and after the fix",
        )
    )
    print()

    # Step 4: detector comparison on the buggy trace.
    accesses = buggy_outcome.runtime.recorder.accesses()
    world = buggy_outcome.run.config.world_size
    rows = []
    for detector in (PostMortemDualClockDetector(), SingleClockDetector(), LocksetDetector()):
        result = detector.detect(accesses, world)
        read_read = sum(1 for f in result.findings if not f.involves_write())
        rows.append((detector.name, result.count(), read_read))
    print(
        format_table(
            ["detector", "findings", "read-read (false) findings"],
            rows,
            title="step 4: offline detectors on the buggy trace",
        )
    )
    print()
    print(
        "The dual-clock detector and its single-clock ablation both find the\n"
        "flag/buffer races; only the single-clock variant also reports harmless\n"
        "read-read pairs, and lockset reports nothing because every access is\n"
        "individually protected by the NIC lock — locks give atomicity, not order."
    )


if __name__ == "__main__":
    main()
