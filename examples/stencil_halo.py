#!/usr/bin/env python
"""Stencil halo-exchange demo: the same program with and without barriers.

The 1-D Jacobi stencil pushes boundary cells into the neighbours' halo slots
with one-sided puts — the communication pattern PGAS languages were designed
for.  With barriers separating exchange and compute phases the program is
race-free; delete the barriers and the halo writes of one iteration race with
the halo reads of the previous one on the neighbouring rank.

The demo runs both variants on the same parameters and prints, side by side:
the detector's verdict, the message traffic, and the detection overhead
(extra clock messages/bytes) — i.e. a miniature of experiments E11/E13.

Run with ``python examples/stencil_halo.py``.
"""

from repro.analysis.overhead import detection_overhead_for
from repro.analysis.reporting import format_race_report, format_table
from repro.workloads import StencilWorkload


def run_variant(use_barriers: bool, seed: int = 0):
    """Run one variant and return (workload result, overhead dict)."""
    workload = StencilWorkload(
        world_size=4, cells_per_rank=8, iterations=3, use_barriers=use_barriers
    )
    outcome = workload.run(seed=seed)
    return outcome, detection_overhead_for(outcome.run)


def main() -> None:
    with_barriers, overhead_sync = run_variant(use_barriers=True)
    without_barriers, overhead_racy = run_variant(use_barriers=False)

    rows = [
        (
            "with barriers",
            with_barriers.run.race_count,
            with_barriers.run.fabric_stats.data_messages,
            with_barriers.run.fabric_stats.detection_messages,
            f"{overhead_sync['detection_messages_per_access']:.2f}",
            f"{with_barriers.run.elapsed_sim_time:.1f}",
        ),
        (
            "without barriers",
            without_barriers.run.race_count,
            without_barriers.run.fabric_stats.data_messages,
            without_barriers.run.fabric_stats.detection_messages,
            f"{overhead_racy['detection_messages_per_access']:.2f}",
            f"{without_barriers.run.elapsed_sim_time:.1f}",
        ),
    ]
    print(
        format_table(
            [
                "variant",
                "race signals",
                "data messages",
                "clock messages",
                "clock msgs / access",
                "simulated time",
            ],
            rows,
            title="1-D stencil, 4 ranks, 3 iterations",
        )
    )
    print()
    print(format_race_report(without_barriers.run, title="races in the barrier-free variant"))
    print()
    print(
        "The barrier-separated variant is silent; removing the barriers makes\n"
        "the halo writes race with the neighbours' reads, and the detector\n"
        "pinpoints the halo cells involved."
    )


if __name__ == "__main__":
    main()
