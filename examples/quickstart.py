#!/usr/bin/env python
"""Quickstart: build a 3-process DSM machine, race two writers, read the report.

This is the smallest end-to-end use of the library:

1. create a :class:`repro.DSMRuntime` (3 simulated processes, RDMA-capable
   NICs, race detection on);
2. declare a shared scalar ``a`` physically placed on rank 1;
3. run two unsynchronized writers (ranks 0 and 2) — the scenario of the
   paper's Figure 5a;
4. print the race report and the per-run statistics.

Run with ``python examples/quickstart.py``.
"""

from repro import DSMRuntime, RuntimeConfig, SignalPolicy
from repro.analysis.reporting import format_race_report, format_run_summary
from repro.analysis.spacetime import render_run


def writer(api):
    """Each writer computes a little, then puts its rank into the shared scalar."""
    yield from api.compute(0.25 * api.rank)
    yield from api.put("a", f"value-from-P{api.rank}")
    api.log(f"P{api.rank} wrote to 'a'")


def owner(api):
    """The rank that owns the datum does nothing — one-sided accesses need no help."""
    yield from api.compute(0.0)


def main() -> None:
    config = RuntimeConfig(
        world_size=3,
        seed=0,
        topology="complete",
        latency="constant",
        # The paper's recommendation: signal races, never abort (Section IV-D).
        signal_policy=SignalPolicy.COLLECT,
    )
    runtime = DSMRuntime(config)
    runtime.declare_scalar("a", owner=1, initial=0)

    runtime.set_program(0, writer)
    runtime.set_program(1, owner)
    runtime.set_program(2, writer)

    result = runtime.run()

    print(format_run_summary(result, title="quickstart: two unsynchronized writers"))
    print()
    print(format_race_report(result))
    print()
    print("what happened, as a space-time diagram (paper-style):")
    print(render_run(runtime, result))
    print()
    print(f"final value of 'a': {result.shared_value('a')!r}")
    print("(re-run with a different RuntimeConfig.seed to see the other outcome win)")


if __name__ == "__main__":
    main()
