#!/usr/bin/env python
"""Master/worker demo: intentional (benign) races are signalled, never fatal.

Section IV-D of the paper uses the master/worker pattern as the example of a
program that races *on purpose*: workers grab task tickets and bump a shared
completion counter without synchronization.  The demo shows three things:

1. the run completes normally — the default signalling policy reports races
   without aborting;
2. the races concentrate on the coordination cells (``ticket``,
   ``completed``); when the racy ticket hands the same task to two workers,
   the duplicated task's result cell races too — every flagged cell really is
   written without ordering;
3. the observable symptom of the benign race (a final ``completed`` counter
   that can be lower than the task count because of lost updates) is visible
   by comparing runs under different seeds.

Run with ``python examples/master_worker_demo.py``.
"""

from repro.analysis.reporting import format_race_report, format_table
from repro.workloads import MasterWorkerWorkload


def main() -> None:
    workload = MasterWorkerWorkload(world_size=5, tasks=10)

    rows = []
    for seed in (0, 1, 2):
        outcome = workload.run(seed=seed)
        result = outcome.run
        flagged = sorted(outcome.detected_symbols())
        rows.append(
            (
                seed,
                result.race_count,
                ", ".join(flagged) or "-",
                result.shared_value("completed"),
                sum(1 for value in result.final_shared_values["results"] if value is not None),
            )
        )
        if seed == 0:
            print(format_race_report(result, title="races signalled (seed 0)"))
            print()

    print(
        format_table(
            ["seed", "race signals", "racy symbols", "final 'completed'", "results filled"],
            rows,
            title="master/worker under three interleavings",
        )
    )
    print()
    print(
        "Every task's result is present in every run even though the\n"
        "coordination cells race (and duplicated tasks make their result cell\n"
        "race too).  The final value of 'completed' varies across seeds —\n"
        "exactly the benign nondeterminism the paper says must be signalled\n"
        "but must not abort the program."
    )


if __name__ == "__main__":
    main()
