#!/usr/bin/env python
"""RPC echo over two-sided verbs: SEND/RECV, a shared receive queue, an
event channel — and the receive-buffer reuse race the detector exists for.

What this demo shows, end to end:

1. rank 0 runs a *reactive* server: a pool of receive slots posted to an
   SRQ, its receive and send completion queues multiplexed through one
   event channel, and a completion handler that reposts each consumed slot
   and echoes the payload back with a SEND — no polling of specific peers,
   no knowledge of client memory;
2. clients post a reply buffer, SEND a request, and wait for both
   completions — the hybrid-runtime (MPI-over-verbs) programming model;
3. the same program with one line of impatience added — the client reuses
   its posted reply buffer before the reply lands — is a race, and the
   dual-clock detector flags it on every run.

Run with ``python examples/rpc_echo.py``.
"""

from repro.workloads import RPCEchoWorkload


def show(title, result):
    print(f"--- {title}")
    print(f"    server: {result.run.per_rank_private[0]}")
    for rank in range(1, result.runtime.config.world_size):
        private = result.run.per_rank_private[rank]
        print(f"    client P{rank}: replies={private['replies']} "
              f"all_echoed={private['all_echoed']}")
    print(f"    races detected: {result.run.race_count}")
    for record in result.run.races.distinct():
        print(f"      {record.describe() if hasattr(record, 'describe') else record}")
    print()


def main() -> None:
    print("RPC echo: 3 clients x 2 requests, SRQ server, event-channel loop\n")

    correct = RPCEchoWorkload(num_clients=3, requests_per_client=2).run(seed=0)
    show("correct protocol (wait for the reply completion before reuse)", correct)
    assert correct.run.race_count == 0

    racy = RPCEchoWorkload(
        num_clients=3, requests_per_client=2, racy_buffer_reuse=True
    ).run(seed=0)
    show("buggy protocol (reply buffer reused while the send is in flight)", racy)
    assert racy.run.race_count > 0

    print("the detector caught the in-flight buffer reuse on symbols:",
          sorted(racy.detected_symbols()))


if __name__ == "__main__":
    main()
