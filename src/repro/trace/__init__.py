"""Execution tracing, serialization and replay.

The paper notes the detection algorithm "can be implemented in the
communication library of the run-time support system" or "in the pre-compiler,
as wrappers around remote data accesses" (Section V-B).  The first option is
the online detector wired into the NIC; the second corresponds to collecting a
trace of remote accesses and analysing it afterwards.  This package provides
the trace infrastructure both paths share:

* :class:`~repro.trace.recorder.TraceRecorder` — collects every shared-memory
  access and every completed one-sided operation during a run;
* :mod:`repro.trace.serialization` — JSON round-tripping of traces, so runs
  can be archived and diffed;
* :class:`~repro.trace.replay.TraceReplayer` — feeds a recorded trace back
  through a detector offline (the post-mortem detector and some benchmarks
  build on it).
"""

from repro.trace.events import OperationRecord, TraceSummary
from repro.trace.recorder import TraceRecorder
from repro.trace.serialization import (
    access_to_dict,
    access_from_dict,
    trace_to_json,
    trace_from_json,
)
from repro.trace.replay import TraceReplayer, ReplayOutcome

__all__ = [
    "OperationRecord",
    "TraceSummary",
    "TraceRecorder",
    "access_to_dict",
    "access_from_dict",
    "trace_to_json",
    "trace_from_json",
    "TraceReplayer",
    "ReplayOutcome",
]
