"""JSON serialization of traces.

Traces are archived as plain JSON so that a debugging session can be saved,
shared and re-analysed later (the pre-compiler / wrapper implementation route
of Section V-B naturally produces such logs).  Only JSON-representable values
survive the round trip; exotic payloads are stringified.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.trace.events import OperationRecord, SyncEvent

_JSON_SAFE = (str, int, float, bool, type(None))

#: Schema version stamped into archived traces.  Loaders accept archives
#: without the field (legacy producers) but reject a mismatching value —
#: silently misreading a future schema would corrupt a replay.
TRACE_ARCHIVE_SCHEMA_VERSION = 1


def _safe_value(value: object) -> object:
    """Return *value* if JSON-safe, else its ``repr``."""
    if isinstance(value, _JSON_SAFE):
        return value
    if isinstance(value, (list, tuple)) and all(isinstance(v, _JSON_SAFE) for v in value):
        return list(value)
    return repr(value)


def access_to_dict(access: MemoryAccess) -> Dict[str, object]:
    """Serialize one memory access to a JSON-safe dictionary."""
    return {
        "access_id": access.access_id,
        "rank": access.rank,
        "address": {"rank": access.address.rank, "offset": access.address.offset},
        "kind": access.kind.value,
        "value": _safe_value(access.value),
        "time": access.time,
        "symbol": access.symbol,
        "operation": access.operation,
        "observed": _safe_value(access.observed),
    }


def access_from_dict(data: Dict[str, object]) -> MemoryAccess:
    """Inverse of :func:`access_to_dict`."""
    address = data["address"]
    return MemoryAccess(
        access_id=int(data["access_id"]),
        rank=int(data["rank"]),
        address=GlobalAddress(int(address["rank"]), int(address["offset"])),
        kind=AccessKind(data["kind"]),
        value=data.get("value"),
        time=float(data.get("time", 0.0)),
        symbol=data.get("symbol"),
        operation=str(data.get("operation", "")),
        observed=data.get("observed"),
    )


def operation_to_dict(record: OperationRecord) -> Dict[str, object]:
    """Serialize one operation record to a JSON-safe dictionary."""
    return {
        "operation": record.operation,
        "origin": record.origin,
        "target": {"rank": record.target.rank, "offset": record.target.offset},
        "symbol": record.symbol,
        "start_time": record.start_time,
        "end_time": record.end_time,
        "data_messages": record.data_messages,
        "control_messages": record.control_messages,
        "raced": record.raced,
        "posted_time": record.posted_time,
    }


def operation_from_dict(data: Dict[str, object]) -> OperationRecord:
    """Inverse of :func:`operation_to_dict`."""
    target = data["target"]
    return OperationRecord(
        operation=str(data["operation"]),
        origin=int(data["origin"]),
        target=GlobalAddress(int(target["rank"]), int(target["offset"])),
        symbol=data.get("symbol"),
        start_time=float(data["start_time"]),
        end_time=float(data["end_time"]),
        data_messages=int(data["data_messages"]),
        control_messages=int(data["control_messages"]),
        raced=bool(data["raced"]),
        posted_time=(
            float(data["posted_time"]) if data.get("posted_time") is not None else None
        ),
    )


def sync_to_dict(sync: SyncEvent) -> Dict[str, object]:
    """Serialize one synchronization event."""
    return {
        "sync_id": sync.sync_id,
        "time": sync.time,
        "participants": list(sync.participants),
        "kind": sync.kind,
        "clock": list(sync.clock) if sync.clock is not None else None,
    }


def sync_from_dict(data: Dict[str, object]) -> SyncEvent:
    """Inverse of :func:`sync_to_dict`."""
    clock = data.get("clock")
    return SyncEvent(
        sync_id=int(data["sync_id"]),
        time=float(data["time"]),
        participants=tuple(int(r) for r in data["participants"]),
        kind=str(data.get("kind", "barrier")),
        clock=tuple(int(c) for c in clock) if clock is not None else None,
    )


def trace_to_json(
    world_size: int,
    accesses: List[MemoryAccess],
    operations: Optional[List[OperationRecord]] = None,
    syncs: Optional[List[SyncEvent]] = None,
    indent: Optional[int] = None,
    run_info: Optional[Dict[str, object]] = None,
) -> str:
    """Serialize a whole trace to a JSON string.

    *run_info* archives the producing run's provenance (clock transport,
    wire format, CQ moderation, ...) in the header; it is optional and
    ignored by the replayer — recorded clocks are knob-independent, which
    is exactly why replay reproduces the online report for every knob
    setting.
    """
    payload = {
        "format": "repro-dsm-trace",
        "version": 1,
        "schema_version": TRACE_ARCHIVE_SCHEMA_VERSION,
        "world_size": world_size,
        "accesses": [access_to_dict(a) for a in accesses],
        "operations": [operation_to_dict(o) for o in (operations or [])],
        "syncs": [sync_to_dict(s) for s in (syncs or [])],
    }
    if run_info:
        payload["run_info"] = {key: _safe_value(value) for key, value in run_info.items()}
    return json.dumps(payload, indent=indent)


def trace_from_json(
    text: str,
) -> Tuple[int, List[MemoryAccess], List[OperationRecord], List[SyncEvent]]:
    """Parse a JSON trace; returns ``(world_size, accesses, operations, syncs)``.

    The optional ``run_info`` header survives in the raw JSON for
    provenance tooling but is not part of the replay inputs.
    """
    payload = json.loads(text)
    if payload.get("format") != "repro-dsm-trace":
        raise ValueError(
            f"not a repro DSM trace (format={payload.get('format')!r})"
        )
    if int(payload.get("version", 0)) != 1:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    schema_version = payload.get("schema_version")
    if schema_version is not None and schema_version != TRACE_ARCHIVE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema_version {schema_version!r} "
            f"(this loader reads version {TRACE_ARCHIVE_SCHEMA_VERSION})"
        )
    accesses = [access_from_dict(a) for a in payload.get("accesses", [])]
    operations = [operation_from_dict(o) for o in payload.get("operations", [])]
    syncs = [sync_from_dict(s) for s in payload.get("syncs", [])]
    return int(payload["world_size"]), accesses, operations, syncs
