"""In-memory trace recorder.

The recorder is attached to every NIC by the runtime; each shared-memory
access and each completed one-sided operation is appended to it.  Detectors
that work post-mortem (:mod:`repro.detectors.postmortem`,
:mod:`repro.detectors.lockset`) and the ground-truth oracle consume the
recorded accesses; the analysis package consumes the operation records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.net.nic import RemoteOperationResult
from repro.trace.events import OperationRecord, SyncEvent, TraceSummary, summarize
from repro.util.ids import IdAllocator
from repro.util.validation import require_positive


class TraceRecorder:
    """Collects accesses, operations and synchronization events of one run."""

    def __init__(self, world_size: int, keep_values: bool = True) -> None:
        require_positive(world_size, "world_size")
        self._world_size = world_size
        self._keep_values = keep_values
        self._accesses: List[MemoryAccess] = []
        self._operations: List[OperationRecord] = []
        self._syncs: List[SyncEvent] = []
        #: Provenance of the traced run (clock transport, wire format, CQ
        #: moderation, ...) — archived with the trace so a saved artifact
        #: records which knobs produced it.  Purely informational: replay
        #: uses the recorded clocks, which are knob-independent.
        self._run_info: Dict[str, object] = {}
        # Accesses and syncs share one id sequence so that sorting a combined
        # stream by (time, id) reproduces the exact order in which the online
        # system processed them.
        self._ids = IdAllocator("access")

    @property
    def world_size(self) -> int:
        """Number of ranks in the traced execution."""
        return self._world_size

    def set_run_info(self, **info: object) -> None:
        """Merge provenance fields into the trace header."""
        self._run_info.update(info)

    def run_info(self) -> Dict[str, object]:
        """Provenance of the traced run, as recorded so far."""
        return dict(self._run_info)

    # -- recording --------------------------------------------------------------

    def record_access(
        self,
        rank: int,
        address: GlobalAddress,
        kind: AccessKind,
        value: object = None,
        time: float = 0.0,
        symbol: Optional[str] = None,
        operation: str = "",
        observed: object = None,
    ) -> MemoryAccess:
        """Append one shared-memory access; returns the stored record."""
        access = MemoryAccess(
            access_id=self._ids.next_int(),
            rank=rank,
            address=address,
            kind=kind,
            value=value if self._keep_values else None,
            time=time,
            symbol=symbol,
            operation=operation,
            observed=observed if self._keep_values else None,
        )
        self._accesses.append(access)
        return access

    def record_sync(self, participants, time: float = 0.0, kind: str = "barrier") -> SyncEvent:
        """Append one symmetric synchronization event among *participants*."""
        event = SyncEvent(
            sync_id=self._ids.next_int(),
            time=time,
            participants=tuple(sorted(set(int(r) for r in participants))),
            kind=kind,
        )
        self._syncs.append(event)
        return event

    def record_transfer(
        self,
        source: int,
        destination: int,
        time: float = 0.0,
        kind: str = "transfer",
        clock: Optional[tuple] = None,
    ) -> SyncEvent:
        """Append one *directional* clock event (two-sided send machinery).

        Unlike :meth:`record_sync`, participant order is meaningful and
        preserved: ``(source, destination)``.  ``kind="send_post"`` records
        the sender-side posting event (a local tick); ``kind="transfer"``
        records the match, with *clock* carrying the sender's post-time
        snapshot the receiver merged.
        """
        event = SyncEvent(
            sync_id=self._ids.next_int(),
            time=time,
            participants=(int(source), int(destination)),
            kind=kind,
            clock=tuple(int(c) for c in clock) if clock is not None else None,
        )
        self._syncs.append(event)
        return event

    def record_operation(
        self,
        result: RemoteOperationResult,
        symbol: Optional[str] = None,
        posted_time: Optional[float] = None,
    ) -> OperationRecord:
        """Append one completed one-sided operation.

        *posted_time* is supplied for verbs-posted (asynchronous) operations:
        the simulated time the work request entered its queue pair, which
        precedes ``start_time`` (when the NIC began servicing it).
        """
        record = OperationRecord(
            operation=result.operation,
            origin=result.origin,
            target=result.target,
            symbol=symbol,
            start_time=result.start_time,
            end_time=result.end_time,
            data_messages=result.data_messages,
            control_messages=result.control_messages,
            raced=result.raced,
            posted_time=posted_time,
        )
        self._operations.append(record)
        return record

    # -- queries -------------------------------------------------------------------

    def accesses(
        self,
        rank: Optional[int] = None,
        address: Optional[GlobalAddress] = None,
        symbol: Optional[str] = None,
        kind: Optional[AccessKind] = None,
    ) -> List[MemoryAccess]:
        """Return recorded accesses, optionally filtered."""
        result = self._accesses
        if rank is not None:
            result = [a for a in result if a.rank == rank]
        if address is not None:
            result = [a for a in result if a.address == address]
        if symbol is not None:
            result = [a for a in result if a.symbol == symbol]
        if kind is not None:
            result = [a for a in result if a.kind is kind]
        return list(result)

    def operations(self, operation: Optional[str] = None) -> List[OperationRecord]:
        """Return recorded operations, optionally filtered by type."""
        if operation is None:
            return list(self._operations)
        return [o for o in self._operations if o.operation == operation]

    def syncs(self) -> List["SyncEvent"]:
        """Return recorded synchronization events in recording order."""
        return list(self._syncs)

    def conflicting_pairs(self) -> List[tuple]:
        """All pairs of accesses to the same cell with at least one write.

        These are the *potential* races of Section III-C; a detector decides
        which of them are causally unordered.  Quadratic in the per-cell access
        count, intended for debugging-scale traces (the paper: ~10 processes).
        """
        by_address: Dict[GlobalAddress, List[MemoryAccess]] = {}
        for access in self._accesses:
            by_address.setdefault(access.address, []).append(access)
        pairs = []
        for accesses in by_address.values():
            for i in range(len(accesses)):
                for j in range(i + 1, len(accesses)):
                    if accesses[i].conflicts_with(accesses[j]):
                        pairs.append((accesses[i], accesses[j]))
        return pairs

    def summary(self) -> TraceSummary:
        """Aggregate statistics of the recorded execution."""
        return summarize(self._world_size, self._accesses, self._operations)

    def clear(self) -> None:
        """Drop all recorded data (ids keep increasing)."""
        self._accesses.clear()
        self._operations.clear()
        self._syncs.clear()

    def __len__(self) -> int:
        return len(self._accesses)

    def __iter__(self) -> Iterable[MemoryAccess]:
        return iter(list(self._accesses))
