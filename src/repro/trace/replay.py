"""Offline replay of recorded traces through a detector.

The paper's second deployment option (Section V-B) is to wrap remote data
accesses in the pre-compiler and analyse them later.  :class:`TraceReplayer`
implements that path: it takes the accesses recorded by
:class:`~repro.trace.recorder.TraceRecorder` (or loaded from JSON) and drives
a fresh :class:`~repro.core.detector.DualClockRaceDetector` over them in
timestamp order, using stand-in memory cells for the clock storage.

Happens-before is reconstructed from three sources: the program order of each
rank, the data flow of shared-memory accesses (the same clock rules the online
detector applies), and the explicit synchronization events
(:class:`~repro.trace.events.SyncEvent`, e.g. barriers) recorded in the trace.
With all three, offline replay produces exactly the same race report as the
online detector — the integration and property tests assert that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.detector import DetectorConfig, DualClockRaceDetector
from repro.core.races import RaceRecord, RaceReport, SignalPolicy
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.memory.public import MemoryCell
from repro.trace.events import SyncEvent


@dataclass
class ReplayOutcome:
    """Result of replaying one trace."""

    races: List[RaceRecord]
    accesses_replayed: int
    cells_touched: int

    @property
    def race_count(self) -> int:
        """Number of race signals produced during replay."""
        return len(self.races)


class TraceReplayer:
    """Replays recorded accesses through a dual-clock detector."""

    def __init__(
        self,
        world_size: int,
        config: Optional[DetectorConfig] = None,
        policy: SignalPolicy = SignalPolicy.COLLECT,
    ) -> None:
        self._world_size = world_size
        self._config = config or DetectorConfig()
        self._policy = policy

    def replay(
        self,
        accesses: List[MemoryAccess],
        syncs: Optional[List[SyncEvent]] = None,
    ) -> ReplayOutcome:
        """Run the detector over *accesses* (and *syncs*) in recorded order.

        The combined stream is processed by ``(time, id)``, which is exactly
        the order in which the online detector handled the same events.
        """
        detector = DualClockRaceDetector(
            self._world_size,
            config=self._config,
            report=RaceReport(self._policy),
        )
        cells: Dict[GlobalAddress, MemoryCell] = {}
        stream: List[tuple] = [
            (access.time, access.access_id, "access", access) for access in accesses
        ]
        for sync in syncs or []:
            stream.append((sync.time, sync.sync_id, "sync", sync))
        stream.sort(key=lambda item: (item[0], item[1]))
        replayed = 0
        for _time, _eid, kind, event in stream:
            if kind == "sync":
                self._apply_sync(detector, event)
                continue
            access = event
            replayed += 1
            cell = cells.setdefault(access.address, MemoryCell())
            if access.kind is AccessKind.RMW:
                detector.on_rmw(
                    access.rank,
                    access.address,
                    cell,
                    symbol=access.symbol,
                    time=access.time,
                    operation=access.operation or "fetch_add",
                )
                cell.value = access.value
            elif access.kind is AccessKind.WRITE:
                detector.on_write(
                    access.rank,
                    access.address,
                    cell,
                    symbol=access.symbol,
                    time=access.time,
                    operation=access.operation or "put",
                )
                cell.value = access.value
            else:
                detector.on_read(
                    access.rank,
                    access.address,
                    cell,
                    symbol=access.symbol,
                    time=access.time,
                    operation=access.operation or "get",
                )
        return ReplayOutcome(
            races=detector.races(),
            accesses_replayed=replayed,
            cells_touched=len(cells),
        )

    @staticmethod
    def _apply_sync(detector: DualClockRaceDetector, sync: SyncEvent) -> None:
        """Merge every participant's clock to their common upper bound."""
        participants = [
            rank for rank in sync.participants if 0 <= rank < detector.world_size
        ]
        if len(participants) < 2:
            return
        merged = detector.current_clock(participants[0]).copy()
        for rank in participants[1:]:
            merged.merge_in_place(detector.current_clock(rank))
        for rank in participants:
            detector.process_clock(rank).observe_vector(merged)
