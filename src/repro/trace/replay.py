"""Offline replay of recorded traces through a detector.

The paper's second deployment option (Section V-B) is to wrap remote data
accesses in the pre-compiler and analyse them later.  :class:`TraceReplayer`
implements that path: it takes the accesses recorded by
:class:`~repro.trace.recorder.TraceRecorder` (or loaded from JSON) and drives
a fresh :class:`~repro.core.detector.DualClockRaceDetector` over them in
timestamp order, using stand-in memory cells for the clock storage.

Happens-before is reconstructed from three sources: the program order of each
rank, the data flow of shared-memory accesses (the same clock rules the online
detector applies), and the explicit synchronization events
(:class:`~repro.trace.events.SyncEvent`) recorded in the trace — symmetric
barriers, the directional ``send_post``/``transfer``/``recv_complete``
machinery of two-sided SEND/RECV matching, and the
``wr_post``/``wr_transfer``/``wr_retire`` triple of posted one-sided work
(whose recorded clock snapshots replay the exact carried clocks of the
unified clock transport).  With all three, offline replay produces exactly
the same race report as the online detector — the integration and property
tests assert that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.clocks import VectorClock
from repro.core.detector import DetectorConfig, DualClockRaceDetector
from repro.core.races import RaceRecord, RaceReport, SignalPolicy
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.memory.public import MemoryCell
from repro.trace.events import SyncEvent


@dataclass
class ReplayOutcome:
    """Result of replaying one trace."""

    races: List[RaceRecord]
    accesses_replayed: int
    cells_touched: int
    #: Per-check-type cost profile of the replay detector (same shape as the
    #: online ``RunResult.detection_profile``), so postmortem replay cost —
    #: compares, joins, epoch fast-path hits — is comparable across
    #: ``DetectorConfig`` settings without rerunning the program.
    detection_profile: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def race_count(self) -> int:
        """Number of race signals produced during replay."""
        return len(self.races)


class TraceReplayer:
    """Replays recorded accesses through a dual-clock detector."""

    def __init__(
        self,
        world_size: int,
        config: Optional[DetectorConfig] = None,
        policy: SignalPolicy = SignalPolicy.COLLECT,
    ) -> None:
        self._world_size = world_size
        self._config = config or DetectorConfig()
        self._policy = policy

    def replay(
        self,
        accesses: List[MemoryAccess],
        syncs: Optional[List[SyncEvent]] = None,
    ) -> ReplayOutcome:
        """Run the detector over *accesses* (and *syncs*) in recorded order.

        The combined stream is processed by ``(time, id)``, which is exactly
        the order in which the online detector handled the same events.
        """
        detector = DualClockRaceDetector(
            self._world_size,
            config=self._config,
            report=RaceReport(self._policy),
        )
        cells: Dict[GlobalAddress, MemoryCell] = {}
        # Snapshot clock of the most recent SEND/RECV match per directed
        # (sender, receiver) pair: the scatter writes that follow a transfer
        # event replay with the clock the message carried, exactly as online.
        # Sends on one queue pair are serviced in order, so "most recent" is
        # always the matching one.
        transfer_clocks: Dict[tuple, VectorClock] = {}
        # Pending post-time snapshots of serviced one-sided work requests,
        # FIFO per directed (origin, target rank) pair.  A ``wr_transfer``
        # sync is recorded immediately before the access it instruments
        # (adjacent trace ids), so the head entry always belongs to the next
        # matching access — which replays with the carried snapshot as its
        # event clock, exactly as online.
        wr_clocks: Dict[tuple, List[VectorClock]] = {}
        stream: List[tuple] = [
            (access.time, access.access_id, "access", access) for access in accesses
        ]
        for sync in syncs or []:
            stream.append((sync.time, sync.sync_id, "sync", sync))
        stream.sort(key=lambda item: (item[0], item[1]))
        replayed = 0
        for _time, _eid, kind, event in stream:
            if kind == "sync":
                self._apply_sync(detector, event, transfer_clocks, wr_clocks)
                continue
            access = event
            replayed += 1
            cell = cells.setdefault(access.address, MemoryCell())
            pending = wr_clocks.get((access.rank, access.address.rank))
            carried = pending.pop(0) if pending else None
            if access.kind is AccessKind.RMW:
                detector.on_rmw(
                    access.rank,
                    access.address,
                    cell,
                    symbol=access.symbol,
                    time=access.time,
                    operation=access.operation or "fetch_add",
                    carried_clock=carried,
                )
                cell.value = access.value
            elif access.kind is AccessKind.WRITE:
                is_send = access.operation == "send"
                detector.on_write(
                    access.rank,
                    access.address,
                    cell,
                    symbol=access.symbol,
                    time=access.time,
                    operation=access.operation or "put",
                    # Scatter writes replay with the matched message's clock
                    # and keep the owner-tick exemption (owner_event=None
                    # resolves to it whenever a carried clock is present);
                    # every other write is an owner event, carried or live.
                    carried_clock=(
                        transfer_clocks.get((access.rank, access.address.rank))
                        if is_send
                        else carried
                    ),
                    owner_event=None if is_send else True,
                )
                cell.value = access.value
            else:
                detector.on_read(
                    access.rank,
                    access.address,
                    cell,
                    symbol=access.symbol,
                    time=access.time,
                    operation=access.operation or "get",
                    carried_clock=carried,
                )
        return ReplayOutcome(
            races=detector.races(),
            accesses_replayed=replayed,
            cells_touched=len(cells),
            detection_profile=detector.profiler.snapshot(),
        )

    @staticmethod
    def _apply_sync(
        detector: DualClockRaceDetector,
        sync: SyncEvent,
        transfer_clocks: Optional[Dict[tuple, VectorClock]] = None,
        wr_clocks: Optional[Dict[tuple, List[VectorClock]]] = None,
    ) -> None:
        """Re-apply one recorded synchronization to the replay clocks.

        Symmetric kinds (barriers) merge every participant to the common
        upper bound.  The two-sided kinds are *directional* and replay the
        exact clock flow the online detector performed: ``send_post`` /
        ``recv_post`` / ``wr_post`` tick the posting rank (posting is an
        event), ``transfer`` records the clock the matched message carried
        (used by the scatter writes that follow it — the landing
        synchronizes nobody), ``wr_transfer`` queues the carried snapshot
        of a serviced one-sided work request for the access that follows
        it, and ``recv_complete`` / ``wr_retire`` merge the carried clock
        into the retiring rank.  Recorded snapshots — never the replayed
        live clocks — drive the merges, so a buffer-reuse race stays a race
        offline.
        """
        participants = [
            rank for rank in sync.participants if 0 <= rank < detector.world_size
        ]
        if sync.kind in ("send_post", "recv_post", "wr_post"):
            # Posting (a send, a receive buffer, or a one-sided work
            # request) is an event of participants[0]; the other
            # participant only records who the post was aimed at.
            if participants:
                detector.local_event(participants[0])
            return
        if sync.kind == "wr_transfer":
            if len(sync.participants) != 2 or sync.clock is None:
                return
            origin, target = sync.participants
            if wr_clocks is not None:
                wr_clocks.setdefault((origin, target), []).append(
                    VectorClock.from_entries(sync.clock)
                )
            return
        if sync.kind == "wr_retire":
            if len(sync.participants) != 2 or sync.clock is None:
                return
            origin, target = sync.participants
            if not (0 <= origin < detector.world_size):
                return
            detector.on_completion_retired(
                origin,
                target if 0 <= target < detector.world_size else origin,
                VectorClock.from_entries(sync.clock),
            )
            return
        if sync.kind == "transfer":
            if len(sync.participants) != 2:
                return
            sender, receiver = sync.participants
            if sync.clock is not None:
                snapshot = VectorClock.from_entries(sync.clock)
            elif 0 <= sender < detector.world_size:
                # Trace recorded without detection: best effort, the live
                # clock stands in for the (unrecorded) message clock.
                snapshot = detector.current_clock(sender).copy()
            else:
                return
            if transfer_clocks is not None:
                transfer_clocks[(sender, receiver)] = snapshot
            return
        if sync.kind == "recv_complete":
            if len(sync.participants) != 2 or sync.clock is None:
                return
            receiver, sender = sync.participants
            if not (0 <= receiver < detector.world_size):
                return
            detector.process_clock(receiver).observe_vector(
                VectorClock.from_entries(sync.clock),
                source_rank=sender if 0 <= sender < detector.world_size else None,
            )
            return
        if sync.kind not in ("barrier", "join", "notify"):
            # Unknown kinds from newer trace producers are skipped rather
            # than misread as a symmetric barrier: replay exactness demands
            # that only events whose semantics we know move clocks.
            return
        if len(participants) < 2:
            return
        merged = detector.current_clock(participants[0]).copy()
        for rank in participants[1:]:
            merged.merge_in_place(detector.current_clock(rank))
        for rank in participants:
            detector.process_clock(rank).observe_vector(merged)
