"""Trace record types beyond the raw memory access.

:class:`~repro.memory.consistency.MemoryAccess` is the atom of a trace; this
module adds the operation-level record (one completed put/get with its timing
and message counts) and the whole-trace summary used by reports and
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess


@dataclass(frozen=True)
class SyncEvent:
    """One explicit synchronization among a set of ranks.

    Offline analyses need these events: without them a trace only shows the
    shared-memory accesses, and accesses that were ordered by a barrier online
    would look unordered when replayed (Section V-B's pre-compiler deployment
    would log the synchronization calls for exactly this reason).

    Kind families:

    * symmetric (``"barrier"``, ...): every participant merges to the common
      clock upper bound;
    * ``"send_post"`` / ``"recv_post"``: a two-sided send or receive buffer
      was posted — an event of ``participants[0]`` (the poster ticks; the
      other rank rides along for trace readability);
    * ``"transfer"``: a SEND matched a posted receive at
      ``participants[1]``'s NIC.  ``clock`` is the clock the message carried
      (sender's post-time snapshot joined with the buffer's post-time
      snapshot) — the clock of the scatter writes that follow; the landing
      itself synchronizes nobody;
    * ``"recv_complete"``: ``participants[0]`` (the receiver) retired the
      matched completion and merged ``clock`` — the directional
      happens-before edge of two-sided communication (the sender,
      ``participants[1]``, learns nothing);
    * ``"wr_post"``: a one-sided work request was posted — an event of
      ``participants[0]`` (the poster ticks and its snapshot rides in the
      request; ``participants[1]`` is the destination rank);
    * ``"wr_transfer"``: a posted one-sided operation was serviced at
      ``participants[1]``'s memory with ``clock`` — the post-time snapshot
      the message carried — as its event clock (recorded immediately before
      the access it instruments, so replay pairs them exactly);
    * ``"wr_retire"``: ``participants[0]`` (the initiator) retired a
      one-sided completion and merged ``clock`` — the batched join of the
      datum clocks its queue pair to ``participants[1]`` had serviced (the
      one-sided twin of ``"recv_complete"``).
    """

    sync_id: int
    time: float
    participants: tuple
    kind: str = "barrier"
    clock: Optional[tuple] = None


@dataclass(frozen=True)
class OperationRecord:
    """One completed high-level one-sided operation.

    Captures what the overhead and scalability experiments need: the type of
    operation, its latency (including lock waits) and how many messages of
    each category it generated.
    """

    operation: str
    origin: int
    target: GlobalAddress
    symbol: Optional[str]
    start_time: float
    end_time: float
    data_messages: int
    control_messages: int
    raced: bool
    #: For verbs-posted operations: when the work request was posted (the
    #: interval ``posted_time..start_time`` is queueing delay, during which
    #: the posting process was free to compute).  ``None`` for blocking ops.
    posted_time: Optional[float] = None

    @property
    def elapsed(self) -> float:
        """Simulated duration of the operation."""
        return self.end_time - self.start_time

    @property
    def was_posted(self) -> bool:
        """True when the operation went through a verbs queue pair."""
        return self.posted_time is not None

    @property
    def queued(self) -> float:
        """Time spent in the send queue before servicing began (0 if blocking)."""
        if self.posted_time is None:
            return 0.0
        return self.start_time - self.posted_time


@dataclass
class TraceSummary:
    """Aggregate view of one recorded execution."""

    world_size: int
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    rmws: int = 0
    operations: int = 0
    puts: int = 0
    gets: int = 0
    atomics: int = 0
    sends: int = 0
    posted_operations: int = 0
    local_accesses: int = 0
    cells_touched: int = 0
    races_flagged: int = 0
    duration: float = 0.0
    per_rank_accesses: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "world_size": self.world_size,
            "accesses": self.accesses,
            "reads": self.reads,
            "writes": self.writes,
            "rmws": self.rmws,
            "operations": self.operations,
            "puts": self.puts,
            "gets": self.gets,
            "atomics": self.atomics,
            "sends": self.sends,
            "posted_operations": self.posted_operations,
            "local_accesses": self.local_accesses,
            "cells_touched": self.cells_touched,
            "races_flagged": self.races_flagged,
            "duration": self.duration,
            "per_rank_accesses": dict(self.per_rank_accesses),
        }


def summarize(
    world_size: int,
    accesses: List[MemoryAccess],
    operations: List[OperationRecord],
) -> TraceSummary:
    """Build a :class:`TraceSummary` from raw trace contents."""
    summary = TraceSummary(world_size=world_size)
    summary.accesses = len(accesses)
    summary.reads = sum(1 for a in accesses if a.kind is AccessKind.READ)
    summary.writes = sum(1 for a in accesses if a.kind is AccessKind.WRITE)
    summary.rmws = sum(1 for a in accesses if a.kind is AccessKind.RMW)
    summary.operations = len(operations)
    summary.puts = sum(1 for o in operations if o.operation == "put")
    summary.gets = sum(1 for o in operations if o.operation == "get")
    summary.atomics = sum(
        1 for o in operations if o.operation in ("fetch_add", "compare_and_swap")
    )
    summary.sends = sum(1 for o in operations if o.operation == "send")
    summary.posted_operations = sum(1 for o in operations if o.was_posted)
    summary.local_accesses = sum(
        1 for a in accesses if a.operation.startswith("local_")
    )
    summary.cells_touched = len({a.address for a in accesses})
    summary.races_flagged = sum(1 for o in operations if o.raced)
    if accesses:
        summary.duration = max(a.time for a in accesses) - min(a.time for a in accesses)
    for access in accesses:
        summary.per_rank_accesses[access.rank] = (
            summary.per_rank_accesses.get(access.rank, 0) + 1
        )
    return summary
