"""The dual-clock race detector (Algorithms 1, 2 and 5 of the paper).

Every shared datum carries two vector clocks, stored in the owning rank's
public memory next to the data (``MemoryCell.access_clock`` /
``MemoryCell.write_clock``):

* ``V(x)`` — the *general-purpose clock*, advanced by every access to ``x``;
* ``W(x)`` — the *write clock*, advanced only by writes to ``x``.

Every process ``P_i`` maintains a matrix clock ``V_Pi`` and increments its
local component before each event (``update_local_clock``).  When a remote
operation reaches the datum (under the NIC lock, so the detection mechanism
itself cannot race — paper, end of Section IV-B), the detector compares the
event's clock with the datum's clock:

* a **write** (``put``) is compared against the datum's access clock ``V(x)``
  by default — a write races with *any* unordered earlier access;
* a **read** (``get``) is compared against the datum's write clock ``W(x)`` —
  a read races only with an unordered earlier *write*, so concurrent reads are
  never flagged (Figure 4, Section IV-D).

If the two clocks are incomparable (Corollary 1) a :class:`RaceRecord` is
emitted through the configured :class:`~repro.core.races.RaceReport`.  After
the check the datum's clocks are merged with the event clock (Algorithm 5 /
``max_clock``) and, for a ``get``, the origin process's clock merges the
datum's clock (the data — and therefore its causal history — flowed back to
the origin).

Clock-update conventions (calibrated against the clock values printed in
Figures 4 and 5a–5c; see DESIGN.md "Interpretation notes"):

* the *arrival* of a remote write at the owner's memory is an event of the
  owning process: the owner's clock merges the incoming clock and ticks, and
  the datum clocks record that reception (``write_effect_ticks_owner``,
  default on).  This matches the clock values printed on the space-time
  diagrams of Figure 5 (``110`` on the P1 line after ``m1(100)``), makes the
  second put of Figure 5a a detected race, keeps the causally chained accesses
  of Figure 5b ordered, and makes the unordered *arrivals* of Figure 5c a
  detected race even though the two puts are ordered at their issuers;
* servicing a ``get`` ticks nothing (Figure 5b shows ``P0`` merely merging
  ``010``); the reader learns the datum's access clock from the reply;
* a process never races with its own immediately preceding access to the same
  datum (program order plus FIFO delivery, ``same_origin_program_order``) —
  this is what keeps Figure 2's put-then-get by P2 silent;
* a writer does not otherwise learn the owner's new tick from its own put
  (one-sided writes are fire-and-forget); the optional
  ``origin_learns_datum_after_write`` knob models acknowledged puts instead.

The paper's pseudo-code also admits a stricter comparison that we keep for
ablations (benchmark E9): ``comparison = STRICT`` uses the literal Algorithm 3
(strictly smaller in every component) instead of Mattern's order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.clocks import Epoch, MatrixClock, VectorClock
from repro.core.comparator import (
    ClockOrdering,
    compare_clocks,
    compare_clocks_strict,
    epoch_precedes,
    ordering,
)
from repro.core.races import RaceRecord, RaceReport, SignalPolicy
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.memory.public import MemoryCell
from repro.obs.profiler import DetectionProfiler
from repro.util.validation import require_positive, require_rank


class WriteCheckMode(enum.Enum):
    """Which per-datum clock a *write* is checked against.

    ``ACCESS_CLOCK`` (default) — check against ``V(x)``: a write races with any
    unordered earlier access, read or write.  This is the reading implied by
    Section IV-A ("causally ordered with the latest write on this data" for
    reads, and symmetric protection for writes).

    ``WRITE_CLOCK`` — check against ``W(x)`` only, the literal text of
    Algorithm 1: unordered write/read pairs where the read came first are then
    missed; kept for the fidelity ablation.
    """

    ACCESS_CLOCK = "access-clock"
    WRITE_CLOCK = "write-clock"


class ComparisonMode(enum.Enum):
    """Which clock comparison implements ``compare_clocks``."""

    MATTERN = "mattern"   # component-wise <= with at least one <  (Lemma 1)
    STRICT = "strict"     # component-wise <  in every entry       (Algorithm 3, literal)


@dataclass
class DetectorConfig:
    """Tunable knobs of the detector.

    Attributes
    ----------
    enabled:
        When false, no checks are performed and no clocks or clock traffic are
        maintained — modelling a production run with detection off (used by
        the overhead benchmark E11 as the baseline).
    write_check:
        See :class:`WriteCheckMode`.
    comparison:
        See :class:`ComparisonMode`.
    write_effect_ticks_owner:
        Treat the arrival of a remote write at the owner's memory as an event
        of the owning process: the owner's clock merges the incoming clock and
        ticks, and the datum clocks record that reception (the convention
        behind the clock values of Figures 5a–5c, e.g. ``110`` on the P1 line
        after ``m1(100)``).  Default on; turning it off reduces detection to
        pure issuing-side happens-before, which misses the arrival-order race
        of Figure 5c (ablation benchmark).
    same_origin_program_order:
        Consecutive accesses by the *same* process to the same datum are
        ordered by program order plus the FIFO delivery of the fabric, so a
        process can never race with its own immediately preceding access
        (e.g. Figure 2's put-then-get by P2).  Default on; the check is only
        skipped when the last conflicting access was by the same origin.
    origin_learns_on_get:
        Merge the datum's clock into the reading process's clock (data flowed
        back, so causality follows the data).  Default on.
    origin_learns_on_put_check:
        Merge the clock fetched for the pre-write check into the writer's
        clock.  Default on (the writer did observe that clock value).
    origin_learns_datum_after_write:
        Additionally merge the datum clock *including the owner's new tick*
        into the writer's clock when the put completes.  Default off
        (paper-faithful); turning it on treats put completion as a
        synchronization, which silences reports on repeated unsynchronized
        puts from one origin but misses Figure 5c.
    treat_rmw_pairs_as_ordered:
        One-sided atomics (``fetch_add``, ``compare_and_swap``) are serviced
        atomically by the target NIC, so two RMW operations on the same cell
        can never interleave destructively even when causally unordered.
        When this knob is on, an RMW is checked only against the cell's
        *plain* (non-RMW) accesses — unordered RMW/RMW pairs are silenced,
        the hardware-serialization analogue of the paper's benign
        master-worker races.  Default off: the paper's happens-before
        discipline signals every unordered conflicting pair, atomic or not,
        leaving benignity to the signal policy.
    control_messages_per_check:
        Extra NIC messages charged per instrumented operation for fetching and
        writing back clocks (Algorithm 5 uses a get_clock + put_clock pair; a
        piggybacked implementation would use 0).  Used for overhead accounting.
    epochs:
        Enable the FastTrack-style epoch fast path: per-datum clocks whose
        content is known to equal a single rank's captured principal vector
        carry a ``(rank, scalar)`` annotation, and checks against an
        annotated clock run as one O(1) component probe instead of O(n)
        directional compares.  The annotation is dropped (promotion to a
        full vector) whenever a merge produces content with no O(1) epoch
        witness — the read-share case — and re-established by the next
        owner-event write (demotion back to an epoch).  Verdicts, clock
        contents, and join counts are identical with the knob on or off;
        only ``compares`` drop (traded for ``epoch_hits`` in the
        detection profile).  Only active under the Mattern comparison —
        the STRICT ablation always runs the full-vector path.  Default on;
        runtime-level gate: ``RuntimeConfig.detector_epochs``.
    """

    enabled: bool = True
    write_check: WriteCheckMode = WriteCheckMode.ACCESS_CLOCK
    comparison: ComparisonMode = ComparisonMode.MATTERN
    write_effect_ticks_owner: bool = True
    same_origin_program_order: bool = True
    origin_learns_on_get: bool = True
    origin_learns_on_put_check: bool = True
    origin_learns_datum_after_write: bool = False
    treat_rmw_pairs_as_ordered: bool = False
    control_messages_per_check: int = 2
    epochs: bool = True

    def compare(self, first: VectorClock, second: VectorClock) -> bool:
        """``compare_clocks`` under the configured comparison mode."""
        if self.comparison is ComparisonMode.STRICT:
            return compare_clocks_strict(first, second)
        return compare_clocks(first, second)

    def clocks_unordered(self, first: VectorClock, second: VectorClock) -> bool:
        """The race test of Algorithms 1–2: neither clock precedes the other.

        Equal clocks are considered ordered (identical causal history cannot
        constitute a race) under the Mattern comparison; under the literal
        strict comparison equality is *not* an ordering, exactly as the
        paper's Algorithm 3 would compute.
        """
        if self.comparison is ComparisonMode.MATTERN and first == second:
            return False
        return not self.compare(first, second) and not self.compare(second, first)

    def reference_unknown(self, reference: VectorClock, event: VectorClock) -> bool:
        """The race test for *carried* events: datum history not in the snapshot.

        A carried operation takes effect at the memory *now*, after every
        access the datum clock records — but its event clock is the
        post-time snapshot, which may be arbitrarily stale.  The pair is
        ordered only when the snapshot already contains the datum's history
        (``reference <= event``); mere incomparability-freedom is not
        enough, because a dominated snapshot (``event < reference``) means
        the effect is landing after accesses the poster never knew about —
        Figure 5c's arrival-order race, same-origin edition.  For live
        events the two tests coincide (a freshly ticked clock can never be
        dominated by the datum clock), which is why
        :meth:`clocks_unordered` is stated symmetrically in the paper.
        """
        if self.comparison is ComparisonMode.MATTERN and reference == event:
            return False
        return not self.compare(reference, event)


@dataclass
class AccessCheckResult:
    """Outcome of one instrumented remote access."""

    race: Optional[RaceRecord]
    event_clock: Tuple[int, ...]
    datum_access_clock: Tuple[int, ...]
    datum_write_clock: Optional[Tuple[int, ...]]
    extra_control_messages: int = 0
    extra_clock_bytes: int = 0
    #: Epoch annotation of ``datum_access_clock`` at result time, when the
    #: fast path could establish one — lets downstream consumers (the queue
    #: pair's drain) chain O(1) domination probes across a burst.
    datum_epoch: Optional[Epoch] = None

    @property
    def raced(self) -> bool:
        """True when this access was flagged."""
        return self.race is not None


@dataclass
class _LastAccessInfo:
    """Detector-side memory of who last touched a datum.

    Beyond the reporting fields, each "last X" records whether that access
    was *live* (the process's own clock ticked at the access — blocking
    operations) or *carried* (the NIC engine acted from a post-time snapshot
    the message physically carried — posted one-sided work and two-sided
    scatter writes), plus the origin-component of its event clock.  The
    refined ``same_origin_program_order`` guard needs both: program order
    only orders same-origin pairs whose issue-to-effect paths are themselves
    ordered (live/live, carried/carried on one queue pair, or live-then-post
    where the snapshot proves the post came after the blocking access
    returned) — a posted-but-unwaited operation and a later live access by
    the same rank are NOT ordered, which is exactly the async blind spot the
    clock-transport refactor closes.
    """

    last_writer: Optional[int] = None
    last_writer_live: bool = True
    last_writer_component: int = 0
    last_accessor: Optional[int] = None
    last_access_kind: AccessKind = AccessKind.WRITE
    last_accessor_live: bool = True
    last_accessor_component: int = 0
    # Last *non-atomic* accessor, consulted by RMW checks when
    # ``treat_rmw_pairs_as_ordered`` is enabled.
    last_plain_accessor: Optional[int] = None
    last_plain_kind: AccessKind = AccessKind.WRITE
    last_plain_live: bool = True
    last_plain_component: int = 0
    # FastTrack-style epoch annotations of the per-datum clocks: ``(r, s)``
    # asserts the clock's content equals rank ``r``'s principal as captured
    # at its ``s``-th own tick (see :class:`repro.core.clocks.Epoch`); None
    # is the promoted-to-full-vector state.  Maintained in lockstep with the
    # cell clock contents, which presumes the per-address MemoryCell identity
    # the NIC maintains (the detector is the only cell-clock mutator).
    access_epoch: Optional[Epoch] = None
    write_epoch: Optional[Epoch] = None
    plain_epoch: Optional[Epoch] = None


class DualClockRaceDetector:
    """Per-execution race detector implementing the paper's algorithm."""

    #: Bytes per vector-clock entry, for message/storage overhead accounting.
    BYTES_PER_ENTRY = 8

    def __init__(
        self,
        world_size: int,
        config: Optional[DetectorConfig] = None,
        report: Optional[RaceReport] = None,
    ) -> None:
        require_positive(world_size, "world_size")
        self._world_size = world_size
        self.config = config if config is not None else DetectorConfig()
        # Note: RaceReport is falsy while empty, so test for None explicitly.
        self.report = report if report is not None else RaceReport(SignalPolicy.COLLECT)
        self._process_clocks: Dict[int, MatrixClock] = {
            rank: MatrixClock(rank, world_size) for rank in range(world_size)
        }
        self._last_info: Dict[GlobalAddress, _LastAccessInfo] = {}
        # Per-datum clock covering only the *plain* (non-RMW) accesses; built
        # lazily and only consulted when ``treat_rmw_pairs_as_ordered`` is on.
        self._plain_clocks: Dict[GlobalAddress, VectorClock] = {}
        self._checks_performed = 0
        self._control_messages = 0
        self._clock_bytes_on_wire = 0
        # Per-check-type cost attribution; a private profiler until the
        # runtime binds the simulator-wide one (bind_observability).
        self._profiler = DetectionProfiler()
        self._last_check_compares = 0
        self._last_check_epoch_hits = 0
        # Tri-state outcome of the last _check: True when it established
        # ``reference <= event`` (virgin reference, or a non-racy verdict),
        # False when racy, None when the check was skipped (same-origin
        # program order) and nothing is known.
        self._last_check_reference_covered: Optional[bool] = None
        self._spans = None

    def bind_observability(self, obs: object) -> None:
        """Route hot-path profiling and race instants into a shared bundle."""
        profiler = getattr(obs, "profiler", None)
        if profiler is not None:
            self._profiler = profiler
        self._spans = getattr(obs, "spans", None)

    @property
    def profiler(self) -> DetectionProfiler:
        """The per-check-type cost profiler in use."""
        return self._profiler

    # -- clocks ---------------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Number of processes the clocks cover."""
        return self._world_size

    def process_clock(self, rank: int) -> MatrixClock:
        """The matrix clock maintained by *rank*."""
        require_rank(rank, self._world_size, "rank")
        return self._process_clocks[rank]

    def current_clock(self, rank: int) -> VectorClock:
        """A copy of *rank*'s current principal vector clock."""
        return self.process_clock(rank).principal()

    def local_event(self, rank: int) -> VectorClock:
        """``update_local_clock``: tick *rank* for a purely local event."""
        return self.process_clock(rank).tick()

    def transfer_clock(self, from_rank: int, to_rank: int) -> VectorClock:
        """Merge *from_rank*'s clock into *to_rank*'s (explicit synchronization).

        Used by the runtime's collectives (barrier, point-to-point
        notifications): any explicit synchronization creates a happens-before
        edge, which is what makes subsequent accesses ordered.
        """
        snapshot = self.current_clock(from_rank)
        return self.process_clock(to_rank).observe_vector(snapshot, source_rank=from_rank)

    def on_recv_complete(
        self,
        receiver: int,
        sender: int,
        carried_clock: Optional[VectorClock] = None,
    ) -> Optional[VectorClock]:
        """Retiring a receive completion: the happens-before of message passing.

        Two-sided delivery synchronizes the receiving *process* at the moment
        it retires the receive completion — not when the payload lands in its
        memory (the NIC scatters without the process's involvement, exactly
        like a one-sided put; but unlike a put, the landing is NOT treated as
        an owner event, because the two-sided contract gives the receiver an
        explicit synchronization point and treating the landing as one would
        hide a receiver that touches the posted buffer between landing and
        retirement).  At retirement the receiver merges *carried_clock* — the
        clock the message carried: the sender's post-time snapshot joined
        with the receive buffer's post-time snapshot — a *directional*
        transfer; the sender learns nothing back.

        Post-time snapshots, not live clocks, are essential on both sides:
        the sender's later events must not leak into the match (the
        same-origin blind spot the ROADMAP documents), and the receiver's
        buffer scribbles after posting must stay unordered with the scatter
        so the detector keeps seeing them — in *every* schedule, whether the
        scribble lands before or after the payload.  For the same reason a
        missing snapshot merges *nothing*: substituting the sender's live
        clock would manufacture exactly the happens-before this method
        exists to avoid.
        """
        if not self.config.enabled or carried_clock is None:
            return None
        return self.process_clock(receiver).observe_vector(
            carried_clock, source_rank=sender
        )

    def on_completion_retired(
        self,
        origin: int,
        target_rank: int,
        carried_clock: Optional[VectorClock] = None,
    ) -> Optional[VectorClock]:
        """Retiring a one-sided work completion: the initiator learns the datum.

        The completion of a posted put/get/atomic carries the datum's clock
        back to the initiator (piggybacked on the ack/reply, or fetched by
        the roundtrip transport); merging it at *retirement* — not at
        service — is the one-sided twin of :meth:`on_recv_complete`.  Until
        the initiator waits, nothing orders it after the operation's effect
        at the owner's memory, so a posted-but-unwaited operation and a
        later same-rank access to the same cell stay causally unordered —
        the false-negative class the post-time snapshot discipline closes.

        Under the per-queue-pair batched transport the carried clock is the
        join of every datum clock the drain serviced so far on that queue
        pair, which is sound because RC completes requests in order: one
        merge per retirement batch covers the whole burst.
        """
        if not self.config.enabled or carried_clock is None:
            return None
        return self.process_clock(origin).observe_vector(
            carried_clock, source_rank=target_rank
        )

    # -- bookkeeping helpers ------------------------------------------------------

    def _ensure_cell_clocks(self, cell: MemoryCell) -> None:
        if cell.access_clock is None:
            cell.access_clock = VectorClock.zeros(self._world_size)
        if cell.write_clock is None:
            cell.write_clock = VectorClock.zeros(self._world_size)

    def _info(self, address: GlobalAddress) -> _LastAccessInfo:
        return self._last_info.setdefault(address, _LastAccessInfo())

    def _plain_clock(self, address: GlobalAddress) -> VectorClock:
        """Clock covering only the non-RMW accesses to *address* (lazy)."""
        clock = self._plain_clocks.get(address)
        if clock is None:
            clock = VectorClock.zeros(self._world_size)
            self._plain_clocks[address] = clock
        return clock

    def _epochs_active(self) -> bool:
        """Epoch annotations presume Mattern semantics (equality is ordered,
        and the O(1) probe is exact for ``<=``); the STRICT ablation always
        runs the full-vector path."""
        return self.config.epochs and self.config.comparison is ComparisonMode.MATTERN

    @staticmethod
    def _covers(clock: VectorClock, epoch: Optional[Epoch]) -> bool:
        """O(1) probe: does *clock* dominate the clock *epoch* annotates?"""
        return epoch is not None and epoch_precedes(epoch, clock)

    @staticmethod
    def _merge_annotation(
        current_epoch: Optional[Epoch],
        covered: bool,
        event_epoch: Optional[Epoch],
        cell_clock: VectorClock,
    ) -> Optional[Epoch]:
        """Annotation for ``cell := cell ∪ event``, computed *before* the merge.

        Three exact O(1) cases: the old content was *covered* by the event
        (merged content == event, so the event's own epoch — if it has one —
        annotates the result); the event was already contained in the cell
        (witnessed by probing the event's epoch against the pre-merge cell:
        content unchanged, the standing annotation survives); otherwise the
        merge is a genuine join with no O(1) witness and the annotation drops
        to the full-vector state.
        """
        if covered:
            return event_epoch
        if event_epoch is not None and (
            cell_clock.component(event_epoch.rank) >= event_epoch.scalar
        ):
            return current_epoch
        return None

    def _note_plain_access(
        self,
        address: GlobalAddress,
        event_clock: VectorClock,
        event_epoch: Optional[Epoch] = None,
    ) -> int:
        """Fold a plain access into the per-datum non-RMW clock, when needed.

        Returns the number of clock joins performed (0 or 1) so the hot-path
        profiler can attribute the cost to the enclosing check.
        """
        if self.config.treat_rmw_pairs_as_ordered:
            clock = self._plain_clock(address)
            if self._epochs_active():
                info = self._info(address)
                covered = clock.total() == 0 or self._covers(
                    event_clock, info.plain_epoch
                )
                info.plain_epoch = self._merge_annotation(
                    info.plain_epoch, covered, event_epoch, clock
                )
            clock.merge_in_place(event_clock)
            return 1
        return 0

    def _charge_overhead(self, result: AccessCheckResult) -> None:
        self._control_messages += result.extra_control_messages
        self._clock_bytes_on_wire += result.extra_clock_bytes

    def _overhead_for_check(
        self, wire_clock_bytes: Optional[int] = None
    ) -> Tuple[int, int]:
        """Control messages and clock bytes booked per instrumented access.

        One vector clock per booked control message (Algorithm 5's fetch +
        update each move one).  *wire_clock_bytes* is the clock's measured
        wire size under the active ``clock_wire`` format, passed in by the
        NIC when it actually charged the round trip; ``None`` books the
        uncompressed ``world_size × BYTES_PER_ENTRY`` figure.  A piggybacked
        deployment sets ``control_messages_per_check = 0`` and books nothing
        here — its clock bytes ride on data messages and are accounted by
        the clock-transport layer (``RunResult.clock_transport_stats``), so
        the two figures never contradict each other for the same run.
        """
        messages = self.config.control_messages_per_check
        per_clock = (
            wire_clock_bytes
            if wire_clock_bytes is not None
            else self._world_size * self.BYTES_PER_ENTRY
        )
        return messages, messages * per_clock

    # -- the instrumented operations ------------------------------------------------

    def on_write(
        self,
        origin: int,
        address: GlobalAddress,
        cell: MemoryCell,
        *,
        symbol: Optional[str] = None,
        time: float = 0.0,
        operation: str = "put",
        carried_clock: Optional[VectorClock] = None,
        owner_event: Optional[bool] = None,
        wire_clock_bytes: Optional[int] = None,
    ) -> AccessCheckResult:
        """Algorithm 1: instrument a remote write (``put``) into *cell*.

        Must be called while the NIC lock on *address* is held.

        *carried_clock* is for writes the NIC engine performs on the origin's
        behalf from a clock the message physically carried — the scattered
        cells of a matched two-sided SEND, and every *posted* one-sided put
        under the clock-transport discipline.  The check then uses that
        snapshot as the event clock instead of ticking the origin's live
        clock, and the origin learns nothing back at service time (it is not
        there to learn — it synchronizes later, at completion retirement): a
        buffer scribble or same-origin access concurrent with the in-flight
        operation stays causally unordered with it, so the detector keeps
        seeing it.

        *owner_event* controls whether the write's arrival still counts as an
        event of the owning process when a carried clock is in play.  Posted
        one-sided puts pass ``True`` — their landing is an owner event
        exactly like a blocking put's (the ``write_effect_ticks_owner``
        convention) — while two-sided scatter writes keep the default
        exemption: their owner synchronizes explicitly at completion
        retirement, and an implicit owner event would hide buffer accesses
        the receiver makes between landing and retirement.  ``None`` (the
        default) resolves to "owner event iff no carried clock", the
        pre-existing behaviour.
        """
        require_rank(origin, self._world_size, "origin")
        if not self.config.enabled:
            return self._uninstrumented(origin, cell)
        profile_started = self._profiler.start()
        joins = 0
        self._ensure_cell_clocks(cell)
        if carried_clock is None:
            event_clock = self.process_clock(origin).tick()
        else:
            event_clock = carried_clock.copy()
        live = carried_clock is None
        origin_component = event_clock.component(origin)
        if owner_event is None:
            owner_event = live
        reference = (
            cell.access_clock
            if self.config.write_check is WriteCheckMode.ACCESS_CLOCK
            else cell.write_clock
        )
        assert reference is not None  # _ensure_cell_clocks ran
        info = self._info(address)
        use_access = self.config.write_check is WriteCheckMode.ACCESS_CLOCK
        epochs = self._epochs_active()
        pre_access_epoch = info.access_epoch if epochs else None
        pre_write_epoch = info.write_epoch if epochs else None
        race = self._check(
            origin=origin,
            address=address,
            kind=AccessKind.WRITE,
            event_clock=event_clock,
            reference_clock=reference,
            previous_rank=(info.last_accessor if use_access else info.last_writer),
            previous_kind=(
                info.last_access_kind if use_access else AccessKind.WRITE
            ),
            symbol=symbol,
            time=time,
            operation=operation,
            current_live=live,
            previous_live=(
                info.last_accessor_live if use_access else info.last_writer_live
            ),
            previous_component=(
                info.last_accessor_component
                if use_access
                else info.last_writer_component
            ),
            reference_epoch=(pre_access_epoch if use_access else pre_write_epoch),
        )
        if carried_clock is None and self.config.origin_learns_on_put_check:
            # The writer fetched the datum clock for the check; it now knows it.
            self.process_clock(origin).observe_vector(reference)
            event_clock = self.current_clock(origin)
            joins += 1
        event_epoch: Optional[Epoch] = None
        access_covered = write_covered = False
        new_access_epoch: Optional[Epoch] = None
        new_write_epoch: Optional[Epoch] = None
        if epochs:
            if live:
                # A freshly ticked (and possibly reference-enriched) live
                # event clock IS the origin's principal at its current tick.
                event_epoch = Epoch(origin, origin_component)
            covered = self._last_check_reference_covered
            if live and self.config.origin_learns_on_put_check:
                # The observe above folded the checked reference into the
                # event clock, so coverage holds even for a racy verdict.
                covered = True
            if use_access:
                access_covered = (
                    covered
                    if covered is not None
                    else self._covers(event_clock, pre_access_epoch)
                )
                # W(x) <= V(x) always (every write also advanced V), so
                # access coverage implies write coverage.
                write_covered = access_covered or self._covers(
                    event_clock, pre_write_epoch
                )
            else:
                write_covered = (
                    covered
                    if covered is not None
                    else self._covers(event_clock, pre_write_epoch)
                )
                access_covered = self._covers(event_clock, pre_access_epoch)
                write_covered = write_covered or access_covered
            new_access_epoch = self._merge_annotation(
                pre_access_epoch, access_covered, event_epoch, cell.access_clock
            )
            new_write_epoch = self._merge_annotation(
                pre_write_epoch, write_covered, event_epoch, cell.write_clock
            )
        # Algorithm 5 (update_clock / update_clock_W): merge the event clock
        # into both per-datum clocks; the write's effect at the owner's memory
        # additionally counts as an event of the owning process.
        cell.access_clock.merge_in_place(event_clock)
        cell.write_clock.merge_in_place(event_clock)
        joins += 2
        if epochs:
            info.access_epoch = new_access_epoch
            info.write_epoch = new_write_epoch
        if (
            self.config.write_effect_ticks_owner
            and address.rank != origin
            and owner_event
        ):
            # The arrival of the write at the owner's memory is an event of the
            # owning process (this is how the paper's Figure 5 space-time
            # diagrams advance the target's clock on reception of a put): the
            # owner merges the incoming clock, ticks its own component, and the
            # datum clocks record that reception event.  Two-sided scatter
            # writes (owner_event False) are exempt: their owner synchronizes
            # explicitly at completion retirement (on_recv_complete), and an
            # implicit owner event here would order — and hide — buffer
            # accesses the receiver makes between landing and retirement.
            # Posted one-sided puts (carried clock, owner_event True) keep the
            # owner event: the tick is what a later unwaited same-origin
            # access cannot know about, making the async race detectable.
            owner_clock = self.process_clock(address.rank)
            owner_clock.observe_vector(event_clock)
            owner_view = owner_clock.tick()
            owner_epoch = (
                Epoch(address.rank, owner_view.component(address.rank))
                if epochs
                else None
            )
            cell.access_clock.merge_in_place(owner_view)
            cell.write_clock.merge_in_place(owner_view)
            joins += 3 + self._note_plain_access(address, owner_view, owner_epoch)
            if epochs:
                # The owner view dominates the event clock, so the cells now
                # hold exactly ``owner_view`` whenever the pre-tick content
                # was covered — by the event (covered flags) or by the owner
                # view itself (O(1) probe of the post-event annotation).
                # This is the demotion back to an epoch after a read-share.
                info.access_epoch = (
                    owner_epoch
                    if access_covered or self._covers(owner_view, new_access_epoch)
                    else None
                )
                info.write_epoch = (
                    owner_epoch
                    if write_covered or self._covers(owner_view, new_write_epoch)
                    else None
                )
        if carried_clock is None and self.config.origin_learns_datum_after_write:
            self.process_clock(origin).observe_vector(cell.access_clock)
            joins += 1
        joins += self._note_plain_access(address, event_clock, event_epoch)
        info.last_writer = origin
        info.last_writer_live = live
        info.last_writer_component = origin_component
        info.last_accessor = origin
        info.last_access_kind = AccessKind.WRITE
        info.last_accessor_live = live
        info.last_accessor_component = origin_component
        info.last_plain_accessor = origin
        info.last_plain_kind = AccessKind.WRITE
        info.last_plain_live = live
        info.last_plain_component = origin_component
        self._checks_performed += 1
        self._profiler.record(
            "write",
            live,
            started=profile_started,
            compares=self._last_check_compares,
            joins=joins,
            epoch_hits=self._last_check_epoch_hits,
        )
        messages, clock_bytes = self._overhead_for_check(wire_clock_bytes)
        result = AccessCheckResult(
            race=race,
            event_clock=event_clock.frozen(),
            datum_access_clock=cell.access_clock.frozen(),
            datum_write_clock=cell.write_clock.frozen(),
            extra_control_messages=messages,
            extra_clock_bytes=clock_bytes,
            datum_epoch=info.access_epoch,
        )
        self._charge_overhead(result)
        return result

    def on_read(
        self,
        origin: int,
        address: GlobalAddress,
        cell: MemoryCell,
        *,
        symbol: Optional[str] = None,
        time: float = 0.0,
        operation: str = "get",
        carried_clock: Optional[VectorClock] = None,
        wire_clock_bytes: Optional[int] = None,
    ) -> AccessCheckResult:
        """Algorithm 2: instrument a remote read (``get``) of *cell*.

        Must be called while the NIC lock on *address* is held.

        *carried_clock* is the post-time snapshot of a *posted* get, carried
        to the target by the request message: the check uses it as the event
        clock instead of ticking the origin's live clock, and the datum's
        causal history flows back at completion retirement
        (:meth:`on_completion_retired`) rather than at service.  The arrival
        of a carried read additionally counts as an owner event folded into
        the *access* clock only (never the write clock — a read is not a
        write): that tick is what a later unwaited same-origin write to the
        cell cannot know about, making the read side of the async blind spot
        detectable.  A blocking get keeps the paper's calibration — servicing
        it ticks nobody (Figure 5b).
        """
        require_rank(origin, self._world_size, "origin")
        if not self.config.enabled:
            return self._uninstrumented(origin, cell)
        profile_started = self._profiler.start()
        joins = 0
        self._ensure_cell_clocks(cell)
        if carried_clock is None:
            event_clock = self.process_clock(origin).tick()
        else:
            event_clock = carried_clock.copy()
        live = carried_clock is None
        origin_component = event_clock.component(origin)
        info = self._info(address)
        epochs = self._epochs_active()
        pre_access_epoch = info.access_epoch if epochs else None
        race = self._check(
            origin=origin,
            address=address,
            kind=AccessKind.READ,
            event_clock=event_clock,
            reference_clock=cell.write_clock,
            previous_rank=info.last_writer,
            previous_kind=AccessKind.WRITE,
            symbol=symbol,
            time=time,
            operation=operation,
            current_live=live,
            previous_live=info.last_writer_live,
            previous_component=info.last_writer_component,
            reference_epoch=(info.write_epoch if epochs else None),
        )
        if carried_clock is None and self.config.origin_learns_on_get:
            # The data (and its causal history) flows back to the reader.
            self.process_clock(origin).observe_vector(cell.access_clock)
            event_clock = self.current_clock(origin)
            joins += 1
        event_epoch: Optional[Epoch] = None
        access_covered = False
        new_access_epoch: Optional[Epoch] = None
        if epochs:
            if live:
                event_epoch = Epoch(origin, origin_component)
            if live and self.config.origin_learns_on_get:
                # The observe above folded V(x) itself into the event clock.
                access_covered = True
            else:
                access_covered = self._covers(event_clock, pre_access_epoch)
            new_access_epoch = self._merge_annotation(
                pre_access_epoch, access_covered, event_epoch, cell.access_clock
            )
        cell.access_clock.merge_in_place(event_clock)
        joins += 1
        if epochs:
            # A carried read whose coverage has no O(1) witness drops the
            # annotation: this is the read-share promotion to a full vector.
            # The write clock is untouched by a read, so its epoch stands.
            info.access_epoch = new_access_epoch
        if (
            carried_clock is not None
            and self.config.write_effect_ticks_owner
            and address.rank != origin
        ):
            # The NIC-engine read's arrival is an owner event recorded in the
            # access clock only: later writes (checked against V(x)) see it,
            # later reads (checked against W(x)) do not — concurrent reads
            # stay silent, Figure 4.
            owner_clock = self.process_clock(address.rank)
            owner_clock.observe_vector(event_clock)
            owner_view = owner_clock.tick()
            owner_epoch = (
                Epoch(address.rank, owner_view.component(address.rank))
                if epochs
                else None
            )
            cell.access_clock.merge_in_place(owner_view)
            joins += 2 + self._note_plain_access(address, owner_view, owner_epoch)
            if epochs:
                info.access_epoch = (
                    owner_epoch
                    if access_covered or self._covers(owner_view, new_access_epoch)
                    else None
                )
        joins += self._note_plain_access(address, event_clock, event_epoch)
        info.last_accessor = origin
        info.last_access_kind = AccessKind.READ
        info.last_accessor_live = live
        info.last_accessor_component = origin_component
        info.last_plain_accessor = origin
        info.last_plain_kind = AccessKind.READ
        info.last_plain_live = live
        info.last_plain_component = origin_component
        self._checks_performed += 1
        self._profiler.record(
            "read",
            live,
            started=profile_started,
            compares=self._last_check_compares,
            joins=joins,
            epoch_hits=self._last_check_epoch_hits,
        )
        messages, clock_bytes = self._overhead_for_check(wire_clock_bytes)
        result = AccessCheckResult(
            race=race,
            event_clock=event_clock.frozen(),
            datum_access_clock=cell.access_clock.frozen(),
            datum_write_clock=cell.write_clock.frozen() if cell.write_clock else None,
            extra_control_messages=messages,
            extra_clock_bytes=clock_bytes,
            datum_epoch=info.access_epoch,
        )
        self._charge_overhead(result)
        return result

    def on_rmw(
        self,
        origin: int,
        address: GlobalAddress,
        cell: MemoryCell,
        *,
        symbol: Optional[str] = None,
        time: float = 0.0,
        operation: str = "fetch_add",
        carried_clock: Optional[VectorClock] = None,
        wire_clock_bytes: Optional[int] = None,
    ) -> AccessCheckResult:
        """Instrument a one-sided atomic read-modify-write of *cell*.

        Must be called while the NIC lock on *address* is held.  An RMW both
        observes and deposits a value, so by default it is checked against the
        datum's general-purpose clock ``V(x)`` (like a write: any unordered
        earlier access conflicts) and, like a ``get``, its reply carries the
        datum's causal history back to the origin.  With
        ``treat_rmw_pairs_as_ordered`` the check only consults the plain
        (non-RMW) accesses, modelling the target NIC's atomic execution unit
        serializing RMW/RMW pairs.

        *carried_clock* is the post-time snapshot of a *posted* atomic: the
        event clock is the snapshot, the origin learns the reply's history at
        completion retirement (:meth:`on_completion_retired`) instead of at
        service, and the effect at the owner's memory still counts as an
        owner event (an RMW writes, exactly as a posted put does).
        """
        require_rank(origin, self._world_size, "origin")
        if not self.config.enabled:
            return self._uninstrumented(origin, cell)
        profile_started = self._profiler.start()
        joins = 0
        self._ensure_cell_clocks(cell)
        if carried_clock is None:
            event_clock = self.process_clock(origin).tick()
        else:
            event_clock = carried_clock.copy()
        live = carried_clock is None
        origin_component = event_clock.component(origin)
        info = self._info(address)
        epochs = self._epochs_active()
        pre_access_epoch = info.access_epoch if epochs else None
        pre_write_epoch = info.write_epoch if epochs else None
        if self.config.treat_rmw_pairs_as_ordered:
            reference: VectorClock = self._plain_clock(address)
            previous_rank = info.last_plain_accessor
            previous_kind = info.last_plain_kind
            previous_live = info.last_plain_live
            previous_component = info.last_plain_component
            reference_epoch = info.plain_epoch if epochs else None
        else:
            assert cell.access_clock is not None  # _ensure_cell_clocks ran
            reference = cell.access_clock
            previous_rank = info.last_accessor
            previous_kind = info.last_access_kind
            previous_live = info.last_accessor_live
            previous_component = info.last_accessor_component
            reference_epoch = pre_access_epoch
        race = self._check(
            origin=origin,
            address=address,
            kind=AccessKind.RMW,
            event_clock=event_clock,
            reference_clock=reference,
            previous_rank=previous_rank,
            previous_kind=previous_kind,
            symbol=symbol,
            time=time,
            operation=operation,
            current_live=live,
            previous_live=previous_live,
            previous_component=previous_component,
            reference_epoch=reference_epoch,
        )
        if carried_clock is None and self.config.origin_learns_on_get:
            # The old value flows back in the ATOMIC_REPLY, and with it the
            # datum's causal history (same rule as a get).
            self.process_clock(origin).observe_vector(cell.access_clock)
            event_clock = self.current_clock(origin)
            joins += 1
        event_epoch: Optional[Epoch] = None
        access_covered = write_covered = False
        new_access_epoch: Optional[Epoch] = None
        new_write_epoch: Optional[Epoch] = None
        if epochs:
            if live:
                event_epoch = Epoch(origin, origin_component)
            if live and self.config.origin_learns_on_get:
                # The observe above folded V(x) itself into the event clock.
                access_covered = True
            elif not self.config.treat_rmw_pairs_as_ordered:
                covered = self._last_check_reference_covered
                access_covered = (
                    covered
                    if covered is not None
                    else self._covers(event_clock, pre_access_epoch)
                )
            else:
                access_covered = self._covers(event_clock, pre_access_epoch)
            write_covered = access_covered or self._covers(
                event_clock, pre_write_epoch
            )
            new_access_epoch = self._merge_annotation(
                pre_access_epoch, access_covered, event_epoch, cell.access_clock
            )
            new_write_epoch = self._merge_annotation(
                pre_write_epoch, write_covered, event_epoch, cell.write_clock
            )
        # The RMW writes: both per-datum clocks advance, and the effect at the
        # owner's memory counts as an event of the owning process, exactly as
        # for a put.  The plain-access clock is deliberately *not* touched.
        cell.access_clock.merge_in_place(event_clock)
        cell.write_clock.merge_in_place(event_clock)
        joins += 2
        if epochs:
            info.access_epoch = new_access_epoch
            info.write_epoch = new_write_epoch
        if self.config.write_effect_ticks_owner and address.rank != origin:
            owner_clock = self.process_clock(address.rank)
            owner_clock.observe_vector(event_clock)
            owner_view = owner_clock.tick()
            cell.access_clock.merge_in_place(owner_view)
            cell.write_clock.merge_in_place(owner_view)
            joins += 3
            if epochs:
                owner_epoch = Epoch(
                    address.rank, owner_view.component(address.rank)
                )
                info.access_epoch = (
                    owner_epoch
                    if access_covered or self._covers(owner_view, new_access_epoch)
                    else None
                )
                info.write_epoch = (
                    owner_epoch
                    if write_covered or self._covers(owner_view, new_write_epoch)
                    else None
                )
            if carried_clock is None and self.config.origin_learns_on_get:
                # The reply leaves the owner after the reception event.
                self.process_clock(origin).observe_vector(cell.access_clock)
                event_clock = self.current_clock(origin)
                joins += 1
        info.last_writer = origin
        info.last_writer_live = live
        info.last_writer_component = origin_component
        info.last_accessor = origin
        info.last_access_kind = AccessKind.RMW
        info.last_accessor_live = live
        info.last_accessor_component = origin_component
        self._checks_performed += 1
        self._profiler.record(
            "rmw",
            live,
            started=profile_started,
            compares=self._last_check_compares,
            joins=joins,
            epoch_hits=self._last_check_epoch_hits,
        )
        messages, clock_bytes = self._overhead_for_check(wire_clock_bytes)
        result = AccessCheckResult(
            race=race,
            event_clock=event_clock.frozen(),
            datum_access_clock=cell.access_clock.frozen(),
            datum_write_clock=cell.write_clock.frozen(),
            extra_control_messages=messages,
            extra_clock_bytes=clock_bytes,
            datum_epoch=info.access_epoch,
        )
        self._charge_overhead(result)
        return result

    @staticmethod
    def _same_origin_ordered(
        origin: int,
        event_clock: VectorClock,
        current_live: bool,
        previous_live: bool,
        previous_component: int,
    ) -> bool:
        """Is a same-origin (previous, current) access pair surely ordered?

        * live → live: program order — the process issued both and the first
          completed before the second was issued;
        * live → carried: ordered iff the current post's snapshot already
          contains the previous event's tick (the post was made after the
          blocking access returned); a snapshot older than the previous
          event means the operation was posted *before* it, and the NIC
          engine may service it on either side;
        * carried → carried: same origin + same cell implies the same queue
          pair, whose drain services posts in order (the RC guarantee);
        * carried → live: nothing orders the NIC engine's effect against the
          process's later access — the posted-but-unwaited blind spot, so
          the clock comparison must run.
        """
        if previous_live and current_live:
            return True
        if previous_live and not current_live:
            return event_clock.component(origin) > previous_component
        if not previous_live and not current_live:
            return True
        return False

    def _uninstrumented(self, origin: int, cell: MemoryCell) -> AccessCheckResult:
        """Detection disabled: no clocks, no checks, no overhead."""
        return AccessCheckResult(
            race=None,
            event_clock=(),
            datum_access_clock=(),
            datum_write_clock=None,
            extra_control_messages=0,
            extra_clock_bytes=0,
        )

    def _check(
        self,
        *,
        origin: int,
        address: GlobalAddress,
        kind: AccessKind,
        event_clock: VectorClock,
        reference_clock: VectorClock,
        previous_rank: Optional[int],
        previous_kind: AccessKind,
        symbol: Optional[str],
        time: float,
        operation: str,
        current_live: bool = True,
        previous_live: bool = True,
        previous_component: int = 0,
        reference_epoch: Optional[Epoch] = None,
    ) -> Optional[RaceRecord]:
        """Corollary 1: signal a race when the clocks are incomparable.

        A virgin datum (all-zero reference clock) has never been accessed:
        the zero clock happens-before every non-zero clock, so no race can be
        reported for a first access.  When the last conflicting access was
        made by the same process AND the pair is ordered by an issue-to-effect
        path — program order for live/live, RC in-order servicing for
        carried/carried (same origin + same cell implies the same queue
        pair), or a post provably made after a live access returned — the
        check is skipped (``same_origin_program_order``).  A carried access
        followed by a live one is the async blind spot: nothing orders the
        NIC engine's effect against the process's later access, so the clock
        comparison runs.

        When the caller holds a valid epoch annotation of the reference
        clock, both provenance variants collapse to one O(1) probe.  For a
        carried event ``reference_unknown`` is literally ``not (reference <=
        event)``, which the probe decides exactly.  For a live event the
        freshly ticked origin component cannot appear in the reference yet,
        so ``event <= reference`` and equality are impossible and
        ``clocks_unordered`` reduces to the same ``not (reference <= event)``
        — identical verdicts by construction, no confirming full compare.
        """
        self._last_check_compares = 0
        self._last_check_epoch_hits = 0
        self._last_check_reference_covered = None
        if reference_clock.total() == 0:
            # The zero clock precedes every event clock.
            self._last_check_reference_covered = True
            return None
        if (
            self.config.same_origin_program_order
            and previous_rank is not None
            and previous_rank == origin
            and self._same_origin_ordered(
                origin, event_clock, current_live, previous_live, previous_component
            )
        ):
            return None
        if reference_epoch is not None:
            # The FastTrack fast path: one O(1) component probe.
            self._last_check_epoch_hits = 1
            racy = not epoch_precedes(reference_epoch, event_clock)
        elif current_live:
            # Two directional O(n) comparisons (neither clock precedes the other).
            self._last_check_compares = 2
            racy = self.config.clocks_unordered(event_clock, reference_clock)
        else:
            # One directional O(n) comparison (is the datum history in the snapshot?).
            self._last_check_compares = 1
            racy = self.config.reference_unknown(reference_clock, event_clock)
        # A non-racy verdict establishes ``reference <= event`` in both
        # provenances: directly for carried events, and by the fresh-tick
        # argument (the other two Mattern outcomes are impossible) for live
        # ones.  Consumed only by the epoch annotation maintenance.
        self._last_check_reference_covered = not racy
        if not racy:
            return None
        record = RaceRecord(
            address=address,
            current_rank=origin,
            current_kind=kind,
            current_clock=event_clock.frozen(),
            previous_rank=previous_rank,
            previous_kind=previous_kind,
            previous_clock=reference_clock.frozen(),
            time=time,
            symbol=symbol,
            operation=operation,
            detail=f"compare_clocks failed both ways ({self.config.comparison.value})",
        )
        self.report.signal(record)
        if self._spans is not None:
            self._spans.instant(
                f"rank-P{origin}",
                "race_signal",
                time,
                symbol=symbol or str(address),
                operation=operation,
                previous=f"P{previous_rank}" if previous_rank is not None else "?",
            )
        return record

    # -- overhead accounting ---------------------------------------------------------

    @property
    def checks_performed(self) -> int:
        """Number of instrumented remote accesses."""
        return self._checks_performed

    @property
    def control_messages(self) -> int:
        """Extra NIC messages attributable to detection (clock fetch/update)."""
        return self._control_messages

    @property
    def clock_bytes_on_wire(self) -> int:
        """Extra bytes of clock payload attributable to detection."""
        return self._clock_bytes_on_wire

    def clock_storage_entries(self) -> int:
        """Vector-clock entries held in the process matrix clocks (``n²`` each).

        Includes the per-datum plain-access clocks maintained when
        ``treat_rmw_pairs_as_ordered`` is enabled (``n`` entries per touched
        cell), so the overhead accounting reflects that configuration's cost.
        """
        return sum(c.storage_entries() for c in self._process_clocks.values()) + sum(
            c.size for c in self._plain_clocks.values()
        )

    def races(self) -> List[RaceRecord]:
        """All race records signalled so far."""
        return self.report.records()

    def race_count(self) -> int:
        """Number of race signals so far."""
        return len(self.report)
