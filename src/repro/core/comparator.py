"""Clock comparison and merge primitives (Algorithms 3 and 4 of the paper).

The detection condition (Corollary 1) is: given two events ``e1``, ``e2`` with
clocks ``H1``, ``H2``, *if no ordering can be determined between ``H1`` and
``H2`` there exists a race condition between ``e1`` and ``e2``*.  The
functions here provide both the paper's literal ``compare_clocks`` (strict
component-wise ``<``, Algorithm 3) and the standard Mattern ordering
(component-wise ``<=`` with at least one strict inequality), which is the
mathematically exact characterization of happens-before (Lemma 1).  The
detector uses the Mattern ordering by default and the literal variant when
configured for a faithful-to-the-letter ablation.
"""

from __future__ import annotations

import enum
from typing import Union

from repro.core.clocks import ClockLike, Epoch, VectorClock


class ClockOrdering(enum.Enum):
    """Result of comparing two vector clocks."""

    BEFORE = "before"          # first happens-before second
    AFTER = "after"            # second happens-before first
    EQUAL = "equal"            # identical clocks (same causal history)
    CONCURRENT = "concurrent"  # incomparable: a potential race

    @property
    def is_ordered(self) -> bool:
        """True when a happens-before (or equality) relation exists."""
        return self is not ClockOrdering.CONCURRENT


def _as_clock(value: ClockLike) -> VectorClock:
    return value if isinstance(value, VectorClock) else VectorClock(value)


def compare_clocks(first: ClockLike, second: ClockLike) -> bool:
    """Mattern comparison: ``True`` iff *first* happens-before *second*.

    This is the semantic reading of the paper's ``compare_clocks(Pi, a, Pj, b)``
    primitive: it answers "is the event carrying *first* causally before the
    event carrying *second*?".  Equality returns ``False`` (an event does not
    happen before itself), mirroring the strict ``<`` of Lemma 1.
    """
    return _as_clock(first).happens_before(second)


def compare_clocks_strict(first: ClockLike, second: ClockLike) -> bool:
    """The paper's literal Algorithm 3: every component strictly smaller.

    Strictly stronger than :func:`compare_clocks`; under this reading more
    clock pairs are "incomparable" and the detector reports more races.  Kept
    for the fidelity ablation (benchmark E9).
    """
    return _as_clock(first).strictly_less(second)


def happens_before(first: ClockLike, second: ClockLike) -> bool:
    """Alias of :func:`compare_clocks` with the conventional name."""
    return compare_clocks(first, second)


def concurrent(first: ClockLike, second: ClockLike) -> bool:
    """True when neither clock happens-before the other and they differ.

    This is the ``e1 × e2`` condition of Corollary 1: the pair is a race
    candidate (an actual race additionally requires one of the two accesses to
    be a write, which the detector checks before signalling).
    """
    a, b = _as_clock(first), _as_clock(second)
    return a.concurrent_with(b)


def epoch_precedes(epoch: Epoch, clock: VectorClock) -> bool:
    """O(1) exact test: does the epoch-annotated clock happen-before-or-equal *clock*?

    Given a clock ``C`` validly annotated with ``epoch == (r, s)`` (see
    :class:`repro.core.clocks.Epoch` for the invariant this presumes), the
    Mattern relation ``C <= clock`` holds **iff** ``clock[r] >= s``: the
    forward direction is ``C[r] == s``, and the reverse is the invariant
    itself — any clock that has absorbed rank ``r``'s ``s``-th tick absorbed
    the whole annotated state with it.  This single-component probe is the
    entire FastTrack fast path; both outcomes are exact, so callers never
    need a confirming full compare.
    """
    return clock.component(epoch[0]) >= epoch[1]


def ordering(first: ClockLike, second: ClockLike) -> ClockOrdering:
    """Classify the relation between two clocks."""
    a, b = _as_clock(first), _as_clock(second)
    if a == b:
        return ClockOrdering.EQUAL
    if a.happens_before(b):
        return ClockOrdering.BEFORE
    if b.happens_before(a):
        return ClockOrdering.AFTER
    return ClockOrdering.CONCURRENT


def max_clock(first: ClockLike, second: ClockLike) -> VectorClock:
    """Algorithm 4: component-wise maximum, returned as a new clock.

    ``∀l, V'[l] = max(V_Pi[l], V_Pj[l])`` — the standard vector-clock merge
    rule [17] applied on every remote clock update (Algorithm 5).
    """
    return _as_clock(first).merged(second)
