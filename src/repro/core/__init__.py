"""The paper's primary contribution: logical-clock race detection for DSM.

This package implements Section IV of the paper:

* :mod:`repro.core.clocks` — Lamport scalar clocks, vector clocks and the
  matrix clocks the paper's processes maintain (``V_Pi`` with the local
  component ``V_Pi[i, i]``);
* :mod:`repro.core.comparator` — the clock-comparison and merge primitives
  (``compare_clocks``, Algorithm 3; ``max_clock``, Algorithm 4) and the
  happens-before / concurrency relations of Mattern's theorem (Lemma 1);
* :mod:`repro.core.races` — race records, reports and the signalling policy
  (Section IV-D: signal but never abort);
* :mod:`repro.core.detector` — the dual-clock detector that instruments every
  remote ``put`` (Algorithm 1) and ``get`` (Algorithm 2), maintaining a
  general-purpose access clock ``V`` and a write clock ``W`` per shared datum
  and updating them with Algorithm 5.
"""

from repro.core.clocks import LamportClock, VectorClock, MatrixClock
from repro.core.comparator import (
    ClockOrdering,
    compare_clocks,
    compare_clocks_strict,
    happens_before,
    concurrent,
    max_clock,
    ordering,
)
from repro.core.races import RaceRecord, RaceReport, SignalPolicy, RaceConditionSignal
from repro.core.detector import (
    DetectorConfig,
    DualClockRaceDetector,
    WriteCheckMode,
)

__all__ = [
    "LamportClock",
    "VectorClock",
    "MatrixClock",
    "ClockOrdering",
    "compare_clocks",
    "compare_clocks_strict",
    "happens_before",
    "concurrent",
    "max_clock",
    "ordering",
    "RaceRecord",
    "RaceReport",
    "SignalPolicy",
    "RaceConditionSignal",
    "DetectorConfig",
    "DualClockRaceDetector",
    "WriteCheckMode",
]
