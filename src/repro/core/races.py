"""Race records, reports and the signalling policy.

Section IV-D of the paper: *"race conditions must be signaled to the user
(e.g., by a message on the standard output of the program), but they must not
abort the execution of the program"* — some races (master-worker result
collection, for instance) are intentional.  The classes here implement that
policy: the detector produces :class:`RaceRecord` objects, a
:class:`RaceReport` aggregates and deduplicates them, and :class:`SignalPolicy`
decides whether a record is printed, collected silently, or (for tests that
*want* a hard failure) raised as :class:`RaceConditionSignal`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.clocks import VectorClock
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind


class RaceConditionSignal(RuntimeError):
    """Raised when the policy is ``ABORT`` (never the paper's default)."""

    def __init__(self, record: "RaceRecord") -> None:
        super().__init__(str(record))
        self.record = record


class SignalPolicy(enum.Enum):
    """What to do when a race is detected."""

    COLLECT = "collect"   # record silently (default for benchmarks)
    WARN = "warn"         # record and print to stdout (the paper's recommendation)
    ABORT = "abort"       # record and raise RaceConditionSignal (tests only)


@dataclass(frozen=True)
class RaceRecord:
    """One detected race between a new access and a previous conflicting access.

    Attributes
    ----------
    address:
        The shared cell on which the conflict occurred.
    symbol:
        Symbolic name of the shared variable, when the directory knows it.
    current_rank / current_kind / current_clock:
        The access being performed when the race was detected.
    previous_rank / previous_kind / previous_clock:
        The latest conflicting access recorded on the datum (its write clock
        or access clock, per the detector's configuration).
    time:
        Simulated time of detection.
    operation:
        The high-level operation during which detection fired ("put"/"get").
    detail:
        Free-form explanation used in reports.
    """

    address: GlobalAddress
    current_rank: int
    current_kind: AccessKind
    current_clock: Tuple[int, ...]
    previous_rank: Optional[int]
    previous_kind: AccessKind
    previous_clock: Tuple[int, ...]
    time: float = 0.0
    symbol: Optional[str] = None
    operation: str = ""
    detail: str = ""

    def involves_write(self) -> bool:
        """True when at least one of the two accesses is a write.

        By the paper's definition (Section III-C) this is always true for a
        genuine race; the detector enforces it before emitting a record, and
        the report's sanity checks re-verify it.
        """
        return self.current_kind.is_write or self.previous_kind.is_write

    def key(self) -> Tuple:
        """Deduplication key: the variable and the unordered pair of ranks/kinds."""
        pair = tuple(
            sorted(
                [
                    (self.current_rank, self.current_kind.value),
                    (self.previous_rank if self.previous_rank is not None else -1,
                     self.previous_kind.value),
                ]
            )
        )
        return (self.address, pair)

    def __str__(self) -> str:
        where = self.symbol or str(self.address)
        prev = (
            f"P{self.previous_rank}" if self.previous_rank is not None else "unknown process"
        )
        return (
            f"RACE on {where} at t={self.time:g}: "
            f"{self.current_kind.value} by P{self.current_rank} (clock {self.current_clock}) "
            f"is concurrent with {self.previous_kind.value} by {prev} "
            f"(clock {self.previous_clock})"
            + (f" [{self.detail}]" if self.detail else "")
        )


class RaceReport:
    """Aggregates race records for one execution.

    When a :class:`~repro.util.logging.SimLogger` is bound (the runtime binds
    its own), every signalled race is also routed through it as a
    ``warning``-severity record under the ``"race"`` category — so race
    reports flow through the same structured log as everything else, and
    ``to_jsonl()`` exports them alongside the run's other records.  Under the
    ``WARN`` policy the paper-prescribed stdout line is still printed.
    """

    def __init__(
        self,
        policy: SignalPolicy = SignalPolicy.COLLECT,
        logger: Optional[object] = None,
    ) -> None:
        self._policy = policy
        self._records: List[RaceRecord] = []
        self._logger = logger

    @property
    def policy(self) -> SignalPolicy:
        """The active signalling policy."""
        return self._policy

    def bind_logger(self, logger: object) -> None:
        """Attach the structured logger race signals are routed through."""
        self._logger = logger

    def signal(self, record: RaceRecord) -> None:
        """Handle one detected race according to the policy."""
        if not record.involves_write():
            raise ValueError(
                "refusing to record a race between two read-only accesses: "
                f"{record} — the paper explicitly excludes concurrent reads (Fig. 4)"
            )
        self._records.append(record)
        if self._logger is not None:
            self._logger.log(
                "race", str(record), rank=record.current_rank, level="warning"
            )
        if self._policy is SignalPolicy.WARN:
            print(str(record))
        elif self._policy is SignalPolicy.ABORT:
            raise RaceConditionSignal(record)

    # -- queries ------------------------------------------------------------------

    def records(self) -> List[RaceRecord]:
        """All records in detection order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def count(self) -> int:
        """Total number of race signals (including duplicates)."""
        return len(self._records)

    def distinct(self) -> List[RaceRecord]:
        """Records deduplicated by :meth:`RaceRecord.key`, keeping the first."""
        seen: Dict[Tuple, RaceRecord] = {}
        for record in self._records:
            seen.setdefault(record.key(), record)
        return list(seen.values())

    def by_address(self) -> Dict[GlobalAddress, List[RaceRecord]]:
        """Group records by the cell on which they were detected."""
        grouped: Dict[GlobalAddress, List[RaceRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.address, []).append(record)
        return grouped

    def by_symbol(self) -> Dict[Optional[str], List[RaceRecord]]:
        """Group records by shared-variable name."""
        grouped: Dict[Optional[str], List[RaceRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.symbol, []).append(record)
        return grouped

    def involving_rank(self, rank: int) -> List[RaceRecord]:
        """Records in which *rank* is one of the two conflicting accessors."""
        return [
            r
            for r in self._records
            if r.current_rank == rank or r.previous_rank == rank
        ]

    def summary(self) -> str:
        """A compact human-readable summary (one line per distinct race)."""
        distinct = self.distinct()
        if not distinct:
            return "no race conditions detected"
        lines = [f"{len(distinct)} distinct race(s), {len(self._records)} signal(s):"]
        lines.extend(f"  - {record}" for record in distinct)
        return "\n".join(lines)

    def clear(self) -> None:
        """Forget all records (used between benchmark iterations)."""
        self._records.clear()
