"""Logical clocks: Lamport scalars, vector clocks and matrix clocks.

The race-detection algorithm of the paper rests entirely on logical time:

* Lamport clocks [12] give a total order compatible with causality but cannot
  *characterize* it;
* vector clocks (Fayet/Mattern [15]) characterize causality exactly
  (Lemma 1 / Mattern's Theorem 10): ``e < e'  iff  V(e) < V(e')`` and
  ``e ∥ e'  iff  V(e) ∥ V(e')``;
* the paper's processes each maintain a *clock matrix* ``V_Pi`` — row ``j`` is
  ``P_i``'s latest knowledge of ``P_j``'s vector clock — and increment the
  diagonal entry ``V_Pi[i, i]`` before every event (Section IV-B).

Clock entries are stored as NumPy ``int64`` arrays: merges (component-wise
max, Algorithm 4) and comparisons are then single vectorized operations, which
matters because the detector performs one merge and up to two comparisons per
remote memory access.

Charron-Bost's lower bound (Section IV-C of the paper) says vector clocks for
``n`` processes need at least ``n`` entries; :attr:`VectorClock.size` is that
``n`` and the overhead benchmarks report storage directly in clock entries.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.util.validation import require_positive, require_rank, require_type

ClockLike = Union["VectorClock", Sequence[int], np.ndarray]


class Epoch(NamedTuple):
    """A FastTrack-style ``(rank, scalar)`` annotation of one vector clock.

    An epoch ``(r, s)`` attached to a clock ``C`` asserts the *epoch validity
    invariant*: ``C[r] == s`` and every clock ``X`` the system can ever
    compare against ``C`` with ``X[r] >= s`` dominates ``C`` component-wise.
    Under the standard vector-clock protocol the invariant holds exactly when
    ``C``'s content equals rank ``r``'s principal vector at its ``s``-th own
    tick *as last captured before any copy of that state escaped* — a
    component can only reach ``s`` by (transitively) merging a copy of that
    state, and the principal row grows monotonically, so every escape
    dominates the annotated capture.

    The payoff is the O(1) exact test ``C <= X  iff  X[r] >= s``
    (:func:`repro.core.comparator.epoch_precedes`), which replaces the O(n)
    directional compares of the detection hot path wherever an annotation is
    in hand.  Epochs are an *exact shortcut*, never a lossy state: when the
    invariant cannot be established locally the annotation is simply dropped
    and the full vector comparison runs, so verdicts cannot depend on them.
    """

    rank: int
    scalar: int


class LamportClock:
    """A scalar Lamport clock.

    Provided for completeness and for the baseline detectors' documentation:
    the paper notes scalar clocks track logical time but only vector clocks
    allow the *partial causal ordering* needed to detect races.
    """

    def __init__(self, initial: int = 0) -> None:
        require_type(initial, int, "initial")
        if initial < 0:
            raise ValueError(f"Lamport clock cannot start negative, got {initial}")
        self._value = initial

    @property
    def value(self) -> int:
        """Current clock value."""
        return self._value

    def tick(self) -> int:
        """Advance for a local event; return the new value."""
        self._value += 1
        return self._value

    def observe(self, other: int) -> int:
        """Merge a received timestamp (``max`` rule) and tick; return new value."""
        require_type(other, int, "other")
        self._value = max(self._value, other) + 1
        return self._value

    def copy(self) -> "LamportClock":
        """Return an independent copy."""
        return LamportClock(self._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock({self._value})"


class VectorClock:
    """A fixed-size vector clock over ``n`` processes.

    The clock is mutable (``tick``/``merge_in_place``) because the detector
    updates per-datum clocks in place under the NIC lock; every value that is
    stored in a trace or a race record is an explicit :meth:`copy` (or
    :meth:`frozen` tuple) so later mutation cannot corrupt history.
    """

    __slots__ = ("_entries",)

    def __init__(self, size_or_entries: Union[int, ClockLike]) -> None:
        if isinstance(size_or_entries, VectorClock):
            self._entries = size_or_entries._entries.copy()
            return
        if isinstance(size_or_entries, (int, np.integer)) and not isinstance(size_or_entries, bool):
            size = int(size_or_entries)
            require_positive(size, "size")
            self._entries = np.zeros(size, dtype=np.int64)
            return
        entries = np.asarray(size_or_entries, dtype=np.int64)
        if entries.ndim != 1 or entries.size == 0:
            raise ValueError(
                f"vector clock entries must be a non-empty 1-D sequence, got shape {entries.shape}"
            )
        if np.any(entries < 0):
            raise ValueError("vector clock entries must be non-negative")
        self._entries = entries.copy()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def zeros(cls, size: int) -> "VectorClock":
        """An all-zero clock for ``size`` processes (the paper's initial state)."""
        return cls(size)

    @classmethod
    def from_entries(cls, entries: Iterable[int]) -> "VectorClock":
        """Build a clock from an explicit entry list (used heavily in tests)."""
        return cls(list(entries))

    # -- basic accessors --------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of entries ``n`` — cannot be smaller than the process count [3]."""
        return int(self._entries.size)

    @property
    def entries(self) -> np.ndarray:
        """A *copy* of the underlying entries."""
        return self._entries.copy()

    def component(self, rank: int) -> int:
        """Entry for process *rank*."""
        require_rank(rank, self.size, "rank")
        return int(self._entries[rank])

    def frozen(self) -> Tuple[int, ...]:
        """An immutable, hashable snapshot of the entries."""
        return tuple(int(x) for x in self._entries)

    def total(self) -> int:
        """Sum of all entries — the number of causally known events."""
        return int(self._entries.sum())

    # -- updates -----------------------------------------------------------------

    def tick(self, rank: int) -> "VectorClock":
        """Increment the component of *rank* (a local event on that process)."""
        require_rank(rank, self.size, "rank")
        self._entries[rank] += 1
        return self

    def merge_in_place(self, other: ClockLike) -> "VectorClock":
        """Component-wise max with *other* (Algorithm 4), mutating ``self``."""
        other_entries = self._coerce(other)
        np.maximum(self._entries, other_entries, out=self._entries)
        return self

    def merged(self, other: ClockLike) -> "VectorClock":
        """Return a new clock equal to the component-wise max (Algorithm 4)."""
        other_entries = self._coerce(other)
        return VectorClock(np.maximum(self._entries, other_entries))

    def copy(self) -> "VectorClock":
        """Return an independent copy."""
        return VectorClock(self._entries)

    # -- comparisons ---------------------------------------------------------------

    def _coerce(self, other: ClockLike) -> np.ndarray:
        if isinstance(other, VectorClock):
            entries = other._entries
        else:
            entries = np.asarray(other, dtype=np.int64)
        if entries.shape != self._entries.shape:
            raise ValueError(
                f"clock size mismatch: {self._entries.size} vs {entries.size}"
            )
        return entries

    def dominates(self, other: ClockLike) -> bool:
        """True when ``self >= other`` component-wise (reflexive)."""
        return bool(np.all(self._entries >= self._coerce(other)))

    def happens_before(self, other: ClockLike) -> bool:
        """Mattern's strict order: ``self <= other`` everywhere and ``!=`` somewhere."""
        other_entries = self._coerce(other)
        return bool(
            np.all(self._entries <= other_entries)
            and np.any(self._entries < other_entries)
        )

    def strictly_less(self, other: ClockLike) -> bool:
        """The paper's literal Algorithm 3: strictly less in *every* component."""
        return bool(np.all(self._entries < self._coerce(other)))

    def concurrent_with(self, other: ClockLike) -> bool:
        """True when neither clock happens-before the other and they differ."""
        other_clock = other if isinstance(other, VectorClock) else VectorClock(other)
        return (
            not self.happens_before(other_clock)
            and not other_clock.happens_before(self)
            and self != other_clock
        )

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (VectorClock, list, tuple, np.ndarray)):
            return NotImplemented
        try:
            return bool(np.array_equal(self._entries, self._coerce(other)))
        except ValueError:
            return False

    def __hash__(self) -> int:
        return hash(self.frozen())

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, rank: int) -> int:
        return self.component(rank)

    def __repr__(self) -> str:
        return f"VectorClock({list(int(x) for x in self._entries)})"

    def __str__(self) -> str:
        return "".join(str(int(x)) for x in self._entries) if self.size <= 10 else repr(self)


class MatrixClock:
    """The per-process clock matrix ``V_Pi`` of the paper (Section IV-B).

    Row ``j`` holds ``P_i``'s latest knowledge of ``P_j``'s vector clock; the
    diagonal entry ``[i, i]`` is ``P_i``'s own event counter and is the value
    incremented by ``update_local_clock``.  The *principal row* ``row(i)`` is
    the vector clock actually attached to events and compared by the detector.
    """

    __slots__ = ("_rank", "_matrix")

    def __init__(self, rank: int, size: int) -> None:
        require_positive(size, "size")
        require_rank(rank, size, "rank")
        self._rank = rank
        self._matrix = np.zeros((size, size), dtype=np.int64)

    @property
    def rank(self) -> int:
        """The owning process."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes ``n`` (the matrix is ``n × n``)."""
        return int(self._matrix.shape[0])

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the full matrix."""
        return self._matrix.copy()

    def local_component(self) -> int:
        """The diagonal entry ``V_Pi[i, i]``."""
        return int(self._matrix[self._rank, self._rank])

    def row(self, rank: Optional[int] = None) -> VectorClock:
        """Return row *rank* (default: the principal row) as a vector clock."""
        rank = self._rank if rank is None else rank
        require_rank(rank, self.size, "rank")
        return VectorClock(self._matrix[rank])

    def principal(self) -> VectorClock:
        """The owning process's own vector clock (row ``i``)."""
        return self.row(self._rank)

    def tick(self) -> VectorClock:
        """``update_local_clock``: increment ``V_Pi[i, i]`` before an event.

        Returns a copy of the principal row *after* the increment, which is the
        clock value attached to the event (Algorithms 1 and 2).
        """
        self._matrix[self._rank, self._rank] += 1
        return self.principal()

    def observe_vector(self, other: ClockLike, source_rank: Optional[int] = None) -> VectorClock:
        """Merge a received vector clock into the principal row (Algorithm 4).

        When *source_rank* is given, the corresponding row is also raised to
        the received vector, recording what that process knew — this is the
        matrix-clock refinement of [17] mentioned in the paper.
        """
        other_entries = (
            other.entries if isinstance(other, VectorClock) else np.asarray(other, dtype=np.int64)
        )
        if other_entries.shape != (self.size,):
            raise ValueError(
                f"clock size mismatch: expected {self.size}, got {other_entries.size}"
            )
        np.maximum(
            self._matrix[self._rank], other_entries, out=self._matrix[self._rank]
        )
        if source_rank is not None:
            require_rank(source_rank, self.size, "source_rank")
            np.maximum(
                self._matrix[source_rank], other_entries, out=self._matrix[source_rank]
            )
        return self.principal()

    def known_lower_bound(self) -> VectorClock:
        """Column-wise minimum over rows: events known to be known by everyone.

        This is the classic matrix-clock garbage-collection bound; it is not
        needed by the detection algorithm itself but is exposed for the
        analysis package and future-work experiments.
        """
        return VectorClock(self._matrix.min(axis=0))

    def storage_entries(self) -> int:
        """Number of integer entries held (``n²``), for overhead accounting."""
        return int(self._matrix.size)

    def copy(self) -> "MatrixClock":
        """Return an independent copy."""
        clone = MatrixClock(self._rank, self.size)
        clone._matrix = self._matrix.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MatrixClock P{self._rank} {self.size}x{self.size} diag={self.local_component()}>"
