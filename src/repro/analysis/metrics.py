"""Detector accuracy metrics.

A detector's verdict for one program is reduced to "which shared symbols did
it flag"; the ground truth is the labelled corpus of
:mod:`repro.workloads.racy_patterns` (labels known by construction) or the
seed-varying oracle of :mod:`repro.detectors.ground_truth`.  Scoring is done
at two granularities:

* per *program*: did the detector's racy/clean verdict match the label?
* per *symbol*: of the symbols flagged, how many were truly racy (precision),
  and how many truly racy symbols were flagged (recall)?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass
class ConfusionCounts:
    """Standard confusion-matrix counts."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); defined as 1.0 when nothing was flagged."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); defined as 1.0 when nothing was truly racy."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; defined as 1.0 on an empty evaluation."""
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 1.0

    def add(self, predicted: bool, actual: bool) -> None:
        """Accumulate one prediction/label pair."""
        if predicted and actual:
            self.true_positives += 1
        elif predicted and not actual:
            self.false_positives += 1
        elif not predicted and actual:
            self.false_negatives += 1
        else:
            self.true_negatives += 1


@dataclass
class DetectorScore:
    """Aggregate score of one detector over a corpus."""

    detector_name: str
    program_level: ConfusionCounts = field(default_factory=ConfusionCounts)
    symbol_level: ConfusionCounts = field(default_factory=ConfusionCounts)
    per_program: Dict[str, Tuple[bool, bool]] = field(default_factory=dict)

    def record_program(
        self,
        program_name: str,
        flagged_symbols: Set[str],
        truly_racy_symbols: Set[str],
        all_symbols: Set[str],
        program_truly_racy: bool,
    ) -> None:
        """Accumulate one program's outcome into both granularities."""
        predicted_racy = bool(flagged_symbols)
        self.program_level.add(predicted_racy, program_truly_racy)
        self.per_program[program_name] = (predicted_racy, program_truly_racy)
        for symbol in sorted(all_symbols):
            self.symbol_level.add(symbol in flagged_symbols, symbol in truly_racy_symbols)

    def as_row(self) -> List[object]:
        """Row for the accuracy table: name, program acc, symbol P/R/F1."""
        return [
            self.detector_name,
            f"{self.program_level.accuracy:.2f}",
            f"{self.symbol_level.precision:.2f}",
            f"{self.symbol_level.recall:.2f}",
            f"{self.symbol_level.f1:.2f}",
        ]


def score_against_labels(
    detector_name: str,
    flagged_by_program: Dict[str, Set[str]],
    labels_by_program: Dict[str, Set[str]],
    symbols_by_program: Dict[str, Set[str]],
) -> DetectorScore:
    """Score one detector given per-program flagged / truly-racy / all symbols."""
    score = DetectorScore(detector_name=detector_name)
    for program, all_symbols in symbols_by_program.items():
        flagged = flagged_by_program.get(program, set())
        truly = labels_by_program.get(program, set())
        score.record_program(
            program_name=program,
            flagged_symbols=flagged & all_symbols,
            truly_racy_symbols=truly & all_symbols,
            all_symbols=all_symbols,
            program_truly_racy=bool(truly),
        )
    return score


def score_patterns(
    patterns: Sequence,
    flagged_symbols_fn: Callable[[object], Set[str]],
    detector_name: str,
    seed: int = 0,
) -> DetectorScore:
    """Score a detector over the labelled pattern corpus.

    *patterns* is a sequence of :class:`~repro.workloads.racy_patterns.LabelledPattern`;
    ``flagged_symbols_fn(pattern)`` must build/run the pattern (with *seed*) and
    return the set of symbols the detector flags.
    """
    flagged_by_program: Dict[str, Set[str]] = {}
    labels_by_program: Dict[str, Set[str]] = {}
    symbols_by_program: Dict[str, Set[str]] = {}
    for pattern in patterns:
        runtime = pattern.build(seed)
        all_symbols = {symbol.name for symbol in runtime.directory.symbols()}
        symbols_by_program[pattern.name] = all_symbols
        labels_by_program[pattern.name] = set(pattern.racy_symbols)
        flagged_by_program[pattern.name] = flagged_symbols_fn(pattern)
    return score_against_labels(
        detector_name, flagged_by_program, labels_by_program, symbols_by_program
    )
