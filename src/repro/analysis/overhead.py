"""Overhead accounting for the detection mechanism.

The paper discusses three costs analytically; this module measures all of
them on actual runs so benchmark E8/E11 can print them:

* **Clock size** (Section IV-C): vector clocks cannot have fewer than ``n``
  entries [Charron-Bost], so per shared datum the dual-clock scheme stores
  ``2·n`` entries, and each process keeps an ``n×n`` matrix clock —
  :func:`clock_storage_model` gives the closed form,
  :class:`OverheadComparison` reports what a run actually allocated.
* **Message overhead** (Section V-A): the clock fetch/update traffic per
  instrumented remote access, plus the growth of every data message by the
  piggybacked clock bytes.
* **Storage doubling of the dual-clock design** (Section IV-D): "it doubles
  the necessary amount of memory" relative to a single-clock scheme — visible
  as the ratio between dual-clock and single-clock storage in the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.runtime.runtime import RunResult

#: Bytes used to store one vector-clock entry.
BYTES_PER_ENTRY = 8


@dataclass(frozen=True)
class ClockStorageModel:
    """Closed-form storage requirements for one configuration."""

    world_size: int
    shared_data: int
    entries_per_datum_dual: int
    entries_per_datum_single: int
    datum_entries_dual: int
    datum_entries_single: int
    process_matrix_entries: int

    @property
    def total_entries_dual(self) -> int:
        """Datum clocks (dual) plus process matrix clocks."""
        return self.datum_entries_dual + self.process_matrix_entries

    @property
    def total_entries_single(self) -> int:
        """Datum clocks (single) plus process matrix clocks."""
        return self.datum_entries_single + self.process_matrix_entries

    @property
    def total_bytes_dual(self) -> int:
        """Dual-clock storage in bytes."""
        return self.total_entries_dual * BYTES_PER_ENTRY

    @property
    def dual_over_single_ratio(self) -> float:
        """How much more datum storage the dual-clock design needs (paper: 2x)."""
        if self.datum_entries_single == 0:
            return float("nan")
        return self.datum_entries_dual / self.datum_entries_single


def clock_storage_model(world_size: int, shared_data: int) -> ClockStorageModel:
    """Storage required for *shared_data* shared cells over *world_size* ranks."""
    if world_size <= 0 or shared_data < 0:
        raise ValueError("world_size must be positive and shared_data non-negative")
    per_datum_dual = 2 * world_size
    per_datum_single = world_size
    return ClockStorageModel(
        world_size=world_size,
        shared_data=shared_data,
        entries_per_datum_dual=per_datum_dual,
        entries_per_datum_single=per_datum_single,
        datum_entries_dual=per_datum_dual * shared_data,
        datum_entries_single=per_datum_single * shared_data,
        process_matrix_entries=world_size * world_size * world_size,
    )


@dataclass
class OverheadComparison:
    """Measured overhead of detection: instrumented run vs baseline run."""

    world_size: int
    baseline_messages: int
    instrumented_messages: int
    baseline_bytes: int
    instrumented_bytes: int
    detection_messages: int
    detection_bytes: int
    clock_storage_entries: int
    remote_accesses: int
    baseline_sim_time: float
    instrumented_sim_time: float

    @property
    def message_overhead_ratio(self) -> float:
        """Instrumented / baseline total message count."""
        return (
            self.instrumented_messages / self.baseline_messages
            if self.baseline_messages
            else float("nan")
        )

    @property
    def byte_overhead_ratio(self) -> float:
        """Instrumented / baseline total bytes."""
        return (
            self.instrumented_bytes / self.baseline_bytes
            if self.baseline_bytes
            else float("nan")
        )

    @property
    def extra_messages_per_access(self) -> float:
        """Detection-only messages per instrumented remote access."""
        return (
            self.detection_messages / self.remote_accesses
            if self.remote_accesses
            else 0.0
        )

    @property
    def time_overhead_ratio(self) -> float:
        """Instrumented / baseline simulated completion time."""
        return (
            self.instrumented_sim_time / self.baseline_sim_time
            if self.baseline_sim_time
            else float("nan")
        )

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for table rendering."""
        return {
            "world_size": self.world_size,
            "baseline_messages": self.baseline_messages,
            "instrumented_messages": self.instrumented_messages,
            "message_overhead_ratio": round(self.message_overhead_ratio, 3),
            "baseline_bytes": self.baseline_bytes,
            "instrumented_bytes": self.instrumented_bytes,
            "byte_overhead_ratio": round(self.byte_overhead_ratio, 3),
            "detection_messages": self.detection_messages,
            "extra_messages_per_access": round(self.extra_messages_per_access, 3),
            "clock_storage_entries": self.clock_storage_entries,
            "time_overhead_ratio": round(self.time_overhead_ratio, 3),
        }


def compare_runs(baseline: RunResult, instrumented: RunResult) -> OverheadComparison:
    """Build an :class:`OverheadComparison` from a detection-off and a detection-on run.

    The two runs must be of the same program and configuration apart from
    ``detector.enabled`` (the caller is responsible for that; the world sizes
    are cross-checked here).
    """
    if baseline.config.world_size != instrumented.config.world_size:
        raise ValueError(
            "baseline and instrumented runs have different world sizes: "
            f"{baseline.config.world_size} vs {instrumented.config.world_size}"
        )
    remote_accesses = instrumented.trace_summary.puts + instrumented.trace_summary.gets
    return OverheadComparison(
        world_size=instrumented.config.world_size,
        baseline_messages=baseline.fabric_stats.total_messages,
        instrumented_messages=instrumented.fabric_stats.total_messages,
        baseline_bytes=baseline.fabric_stats.total_bytes,
        instrumented_bytes=instrumented.fabric_stats.total_bytes,
        detection_messages=instrumented.fabric_stats.detection_messages,
        detection_bytes=instrumented.fabric_stats.detection_bytes,
        clock_storage_entries=instrumented.clock_storage_entries,
        remote_accesses=remote_accesses,
        baseline_sim_time=baseline.elapsed_sim_time,
        instrumented_sim_time=instrumented.elapsed_sim_time,
    )


def detection_overhead_for(result: RunResult) -> Dict[str, object]:
    """Single-run overhead summary (when no uninstrumented twin is available)."""
    remote = result.trace_summary.puts + result.trace_summary.gets
    return {
        "world_size": result.config.world_size,
        "remote_accesses": remote,
        "detection_messages": result.fabric_stats.detection_messages,
        "detection_bytes": result.fabric_stats.detection_bytes,
        "detection_messages_per_access": (
            result.fabric_stats.detection_messages / remote if remote else 0.0
        ),
        "clock_storage_entries": result.clock_storage_entries,
        "clock_storage_bytes": result.clock_storage_entries * BYTES_PER_ENTRY,
    }
