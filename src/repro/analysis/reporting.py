"""Plain-text report rendering.

Benchmarks and examples print small tables (who raced with whom, overhead per
world size, detector accuracy).  Keeping the formatting here means every
"table" recorded in EXPERIMENTS.md is produced by exactly one code path and is
stable across scripts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.runtime.runtime import RunResult


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with left-aligned columns sized to their content."""
    header_cells = [str(h) for h in headers]
    body = [[str(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(header_cells)} columns: {row}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def format_run_summary(result: RunResult, title: str = "run summary") -> str:
    """One run's headline numbers as a small two-column table."""
    summary = result.trace_summary
    rows = [
        ("world size", result.config.world_size),
        ("simulated time", f"{result.elapsed_sim_time:.2f}"),
        ("remote puts", summary.puts),
        ("remote gets", summary.gets),
        ("local public accesses", summary.local_accesses),
        ("total messages", result.fabric_stats.total_messages),
        ("data messages", result.fabric_stats.data_messages),
        ("lock messages", result.fabric_stats.lock_messages),
        ("detection messages", result.fabric_stats.detection_messages),
        ("race signals", result.race_count),
        ("distinct races", result.distinct_race_count),
        ("clock storage entries", result.clock_storage_entries),
    ]
    return format_table(["metric", "value"], rows, title=title)


def format_race_report(result: RunResult, title: str = "detected races") -> str:
    """Distinct races of a run, one row each."""
    rows = []
    for record in result.races.distinct():
        rows.append(
            (
                record.symbol or str(record.address),
                f"P{record.current_rank} {record.current_kind.value}",
                (
                    f"P{record.previous_rank} {record.previous_kind.value}"
                    if record.previous_rank is not None
                    else f"? {record.previous_kind.value}"
                ),
                f"{record.time:.2f}",
                str(record.current_clock),
                str(record.previous_clock),
            )
        )
    if not rows:
        return f"{title}\n(no race conditions detected)"
    return format_table(
        ["datum", "access", "conflicts with", "time", "clock", "previous clock"],
        rows,
        title=title,
    )
