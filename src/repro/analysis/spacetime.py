"""ASCII space-time diagrams of recorded executions.

The paper explains its scenarios with space-time diagrams (Figures 2–5): one
vertical line per process, one row per event, arrows for the messages.  This
module renders the same kind of diagram from a recorded trace so that a
debugging session (or EXPERIMENTS.md) can show *what actually happened* in a
run next to the race report.

The rendering is deliberately simple: one text row per shared-memory access or
synchronization event, in time order, with the access drawn in the column of
the process that performed it and annotated with the operation, the datum and
— when available from the race report — a ``RACE`` marker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.races import RaceRecord
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.trace.events import SyncEvent


def _column_label(access: MemoryAccess) -> str:
    symbol = access.symbol or str(access.address)
    if access.kind is AccessKind.RMW:
        kind = "U"  # atomic update
    else:
        kind = "W" if access.kind is AccessKind.WRITE else "R"
    tag = access.operation or ("put" if kind == "W" else "get")
    return f"{kind}:{symbol}[{tag}]"


def render_spacetime(
    world_size: int,
    accesses: Sequence[MemoryAccess],
    syncs: Sequence[SyncEvent] = (),
    races: Sequence[RaceRecord] = (),
    column_width: int = 22,
    max_rows: Optional[int] = 200,
) -> str:
    """Render a space-time diagram of *accesses* (plus barriers) as text.

    Parameters
    ----------
    world_size:
        Number of process columns.
    accesses / syncs:
        Trace contents, typically ``recorder.accesses()`` / ``recorder.syncs()``.
    races:
        Race records; the accesses they involve are marked with ``*RACE*``.
    column_width:
        Width of each process column.
    max_rows:
        Truncate very long traces (a note is appended when truncation occurs).
    """
    if world_size <= 0:
        raise ValueError(f"world_size must be positive, got {world_size}")
    racy_keys: Set[Tuple[int, object, float]] = set()
    for record in races:
        racy_keys.add((record.current_rank, record.address, record.time))

    header = "time".rjust(9) + " | " + " | ".join(
        f"P{rank}".center(column_width) for rank in range(world_size)
    )
    ruler = "-" * len(header)
    lines: List[str] = [header, ruler]

    stream: List[Tuple[float, int, str, object]] = [
        (a.time, a.access_id, "access", a) for a in accesses
    ]
    stream.extend((s.time, s.sync_id, "sync", s) for s in syncs)
    stream.sort(key=lambda item: (item[0], item[1]))

    truncated = False
    if max_rows is not None and len(stream) > max_rows:
        stream = stream[:max_rows]
        truncated = True

    for time, _eid, kind, event in stream:
        if kind == "sync":
            label = f"==== barrier ({len(event.participants)} ranks) ===="
            lines.append(f"{time:9.2f} | " + label.center((column_width + 3) * world_size - 3))
            continue
        access = event
        cells = [" " * column_width for _ in range(world_size)]
        label = _column_label(access)
        if (access.rank, access.address, access.time) in racy_keys:
            label += " *RACE*"
        if access.rank < world_size:
            cells[access.rank] = label[:column_width].center(column_width)
        lines.append(f"{time:9.2f} | " + " | ".join(cells))

    if truncated:
        lines.append(f"... ({len(accesses) + len(list(syncs)) - max_rows} more events)")
    return "\n".join(lines)


def render_run(runtime, result, **kwargs) -> str:
    """Convenience wrapper: diagram of a completed :class:`DSMRuntime` run."""
    return render_spacetime(
        runtime.config.world_size,
        runtime.recorder.accesses(),
        syncs=runtime.recorder.syncs(),
        races=result.races.records(),
        **kwargs,
    )
