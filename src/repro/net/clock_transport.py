"""The clock-transport layer: how causal clocks travel with verbs traffic.

The paper's Algorithm 5 moves clocks with an explicit CLOCK_FETCH /
CLOCK_UPDATE round trip per instrumented remote access; Section V-B alludes
to an optimized implementation in which the clocks ride on the data messages
themselves.  This module makes that choice a first-class, per-run policy
shared by *every* verbs path — one-sided puts/gets/atomics and two-sided
SEND/RECV alike — instead of a per-call-site accident:

``"roundtrip"`` (the paper's literal Algorithm 5, the default)
    Every instrumented remote access charges one CLOCK_FETCH + CLOCK_UPDATE
    pair on the fabric (when the NIC is configured to charge detection
    messages at all), and the detector books
    ``control_messages_per_check`` control messages per check.

``"piggyback"`` (the optimized implementation)
    No clock message ever crosses the fabric on its own.  Data messages grow
    by one vector clock (``world_size * BYTES_PER_ENTRY`` bytes, stamped
    into :attr:`~repro.net.message.Message.carried_clock` so the payload is
    inspectable), and the per-queue-pair drain *batches* the origin-side
    clock joins: each completion carries the join of every datum clock the
    drain has serviced so far on that queue pair, so a burst of posts
    retired together costs one clock merge per drain — not one per access.
    Batching is sound because requests on one queue pair complete in order
    (the RC guarantee): retiring a later completion proves every earlier
    operation on that queue pair has taken effect.

The two modes are *verdict-identical by construction*: they share the same
post-time snapshots, the same carried-clock detector checks and the same
retirement joins, and differ only in what traffic the fabric sees and how
many joins the origin performs.  The benchmarks
(``benchmarks/bench_clock_transport.py``) pin down the strictly-fewer-
messages claim; the exploration campaign pins down verdict identity across
schedules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, Optional

from repro.net.message import MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.clocks import VectorClock
    from repro.net.nic import NIC

#: Legal values of the ``clock_transport`` knob.
CLOCK_TRANSPORT_MODES = ("roundtrip", "piggyback")


def validate_clock_transport(mode: str) -> str:
    """Return *mode* if legal, raise ``ValueError`` otherwise."""
    if mode not in CLOCK_TRANSPORT_MODES:
        raise ValueError(
            f"clock_transport must be one of {CLOCK_TRANSPORT_MODES}, got {mode!r}"
        )
    return mode


@dataclass
class ClockTransportStats:
    """Per-rank accounting of how clocks moved during one run."""

    #: CLOCK_FETCH/CLOCK_UPDATE pairs charged on the fabric (roundtrip mode).
    round_trips: int = 0
    #: Data messages that carried a piggybacked clock (piggyback mode).
    piggybacked_messages: int = 0
    #: Clock bytes that rode on data messages instead of dedicated traffic.
    piggybacked_bytes: int = 0
    #: Origin-side clock joins actually performed at completion retirement.
    joins_performed: int = 0
    #: Retirements whose join was elided because a later completion of the
    #: same queue pair (whose batched clock dominates) had already merged.
    joins_elided: int = 0

    def merge(self, other: "ClockTransportStats") -> "ClockTransportStats":
        """Accumulate *other* into this record (whole-machine totals)."""
        self.round_trips += other.round_trips
        self.piggybacked_messages += other.piggybacked_messages
        self.piggybacked_bytes += other.piggybacked_bytes
        self.joins_performed += other.joins_performed
        self.joins_elided += other.joins_elided
        return self

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary for reports and the benchmark JSON."""
        return {
            "round_trips": self.round_trips,
            "piggybacked_messages": self.piggybacked_messages,
            "piggybacked_bytes": self.piggybacked_bytes,
            "joins_performed": self.joins_performed,
            "joins_elided": self.joins_elided,
        }


class ClockTransport:
    """One rank's clock-movement policy, consulted by NIC and verbs layers.

    The mode is read from the owning NIC's config on every decision — that
    is what lets :meth:`~repro.runtime.runtime.DSMRuntime.set_clock_transport`
    switch an already-built runtime (the campaign runner's configure hook).
    Always switch through that method (or ``RuntimeConfig.clock_transport``
    at construction): it also keeps the detector's per-check control
    accounting in step, which a bare ``NICConfig.clock_transport``
    assignment would not.
    """

    def __init__(self, nic: "NIC") -> None:
        self._nic = nic
        self.stats = ClockTransportStats()

    # -- mode ---------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The active transport mode (``"roundtrip"`` or ``"piggyback"``)."""
        return validate_clock_transport(self._nic.config.clock_transport)

    @property
    def piggyback(self) -> bool:
        """True when clocks ride on the data messages."""
        return self.mode == "piggyback"

    def _active(self) -> bool:
        detector = self._nic.detector
        return detector is not None and detector.config.enabled

    def clock_bytes(self) -> int:
        """Wire size of one vector clock for this world."""
        return self._nic._clock_bytes()

    # -- wire traffic --------------------------------------------------------------

    def data_overhead_bytes(self) -> int:
        """Clock bytes added to one data message under the active policy.

        Piggyback mode always rides the clock on the data message; roundtrip
        mode does so only in the legacy ``charge_detection_messages=False``
        accounting (clocks assumed piggybacked, free).
        """
        if not self._active():
            return 0
        if self.piggyback or not self._nic.config.charge_detection_messages:
            return self.clock_bytes()
        return 0

    def request_overhead_bytes(self) -> int:
        """Clock bytes added to a get/atomic *request* message.

        Piggyback only: the target-side check consumes the origin's clock,
        so under piggybacking it must physically travel on the request (the
        reply then carries the datum's history back — two riders per
        get/atomic, mirroring Algorithm 5's fetch + update pair).  The
        legacy ``charge_detection_messages=False`` accounting keeps its
        historical single-rider figure.
        """
        return self.clock_bytes() if self._active() and self.piggyback else 0

    def stamp(self, clock) -> Optional[tuple]:
        """The frozen clock to stamp into a data message, if one rides on it.

        Accepts a :class:`~repro.core.clocks.VectorClock` or an
        already-frozen tuple; returns ``None`` unless detection is active
        and the piggyback transport is selected.
        """
        if clock is None or not self._active() or not self.piggyback:
            return None
        self.stats.piggybacked_messages += 1
        self.stats.piggybacked_bytes += self.clock_bytes()
        if hasattr(clock, "frozen"):
            return clock.frozen()
        return tuple(int(entry) for entry in clock)

    def round_trip(self, target_rank: int, tag: str) -> Generator:
        """Charge Algorithm 5's CLOCK_FETCH/CLOCK_UPDATE pair, when owed.

        A generator driven by the simulation kernel; returns the number of
        control messages charged (0 in piggyback mode, where the clock
        already rode on the data message).
        """
        if (
            not self._active()
            or self.piggyback
            or not self._nic.config.charge_detection_messages
            or target_rank == self._nic.rank
        ):
            return 0
        fetch, _ = self._nic.fabric.send(
            MessageKind.CLOCK_FETCH, self._nic.rank, target_rank,
            payload_bytes=0, operation_tag=tag,
        )
        yield fetch
        reply, _ = self._nic.fabric.send(
            MessageKind.CLOCK_UPDATE, target_rank, self._nic.rank,
            payload_bytes=self.clock_bytes(), operation_tag=tag,
        )
        yield reply
        self.stats.round_trips += 1
        return 2

    # -- retirement joins ------------------------------------------------------------

    def note_join(self, performed: bool) -> None:
        """Book one completion retirement: a join done, or elided by batching."""
        if performed:
            self.stats.joins_performed += 1
        else:
            self.stats.joins_elided += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClockTransport P{self._nic.rank} mode={self.mode}>"
