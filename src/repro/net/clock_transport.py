"""The clock-transport layer: how causal clocks travel with verbs traffic.

The paper's Algorithm 5 moves clocks with an explicit CLOCK_FETCH /
CLOCK_UPDATE round trip per instrumented remote access; Section V-B alludes
to an optimized implementation in which the clocks ride on the data messages
themselves.  This module makes that choice a first-class, per-run policy
shared by *every* verbs path — one-sided puts/gets/atomics and two-sided
SEND/RECV alike — instead of a per-call-site accident:

``"roundtrip"`` (the paper's literal Algorithm 5, the default)
    Every instrumented remote access charges one CLOCK_FETCH + CLOCK_UPDATE
    pair on the fabric (when the NIC is configured to charge detection
    messages at all), and the detector books
    ``control_messages_per_check`` control messages per check.

``"piggyback"`` (the optimized implementation)
    No clock message ever crosses the fabric on its own.  Data messages grow
    by one vector clock (``world_size * BYTES_PER_ENTRY`` bytes, stamped
    into :attr:`~repro.net.message.Message.carried_clock` so the payload is
    inspectable), and the per-queue-pair drain *batches* the origin-side
    clock joins: each completion carries the join of every datum clock the
    drain has serviced so far on that queue pair, so a burst of posts
    retired together costs one clock merge per drain — not one per access.
    Batching is sound because requests on one queue pair complete in order
    (the RC guarantee): retiring a later completion proves every earlier
    operation on that queue pair has taken effect.

The two modes are *verdict-identical by construction*: they share the same
post-time snapshots, the same carried-clock detector checks and the same
retirement joins, and differ only in what traffic the fabric sees and how
many joins the origin performs.  The benchmarks
(``benchmarks/bench_clock_transport.py``) pin down the strictly-fewer-
messages claim; the exploration campaign pins down verdict identity across
schedules.

Orthogonal to *how* clocks travel is *what they cost on the wire* — the
``clock_wire`` knob.  A full vector clock is ``world_size × 8`` bytes, which
makes the piggyback transport linear in world size per data message.  The
wire-format layer (:class:`ClockWireEncoder` / :class:`ClockWireDecoder`)
compresses each directed channel's clock stream:

``"full"`` (the default)
    Every rider is the whole vector, ``world_size × BYTES_PER_ENTRY`` bytes —
    byte-identical to the pre-compression accounting.

``"delta"``
    Each rider encodes only the components that changed since the last clock
    sent on this ``(source, destination)`` channel, as ``(rank, increment)``
    pairs — the receiver reconstructs by applying the increments to its
    last-acknowledged view.  Every ``resync_period`` messages (and whenever
    the sparse encoding would not actually be smaller) a tagged *full*
    frame resynchronizes the channel.

``"truncated"``
    Like delta, but each changed component travels as its absolute value
    (``(rank, value)`` pairs) — simpler to apply, slightly larger entries,
    same resync protocol.

All three formats decode to the *exact* clock — the transport round-trips
every frame through the decoder and verifies it against the frozen snapshot
before stamping, so compressed runs are verdict-identical to ``"full"`` by
construction (property-tested in ``tests/net/test_clock_wire.py``).  Both
ends of a channel's codec state advance in lockstep at send time, which is
sound here because the per-queue-pair RC transport delivers in order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.core.detector import DualClockRaceDetector
from repro.net.message import MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.clocks import VectorClock
    from repro.net.nic import NIC
    from repro.obs.metrics import MetricsRegistry

#: Legal values of the ``clock_transport`` knob.
CLOCK_TRANSPORT_MODES = ("roundtrip", "piggyback")

#: Legal values of the ``clock_wire`` knob.
CLOCK_WIRE_FORMATS = ("full", "delta", "truncated")

#: Bytes per full vector-clock entry on the wire — the detector's storage
#: figure is the single source of truth, so wire and storage accounting can
#: never drift apart.
BYTES_PER_ENTRY = DualClockRaceDetector.BYTES_PER_ENTRY
#: One-byte frame tag discriminating sparse frames from resync frames.  The
#: plain ``"full"`` format is untagged (the legacy wire layout), so choosing
#: ``clock_wire="full"`` is byte-identical to the pre-compression accounting.
WIRE_TAG_BYTES = 1
#: One-byte changed-entry count in a sparse frame (worlds up to 255 ranks).
WIRE_COUNT_BYTES = 1
#: Bytes naming the rank of one sparse entry.
WIRE_RANK_BYTES = 2
#: Bytes for one delta increment (small by construction: the change since
#: the previous message on the same channel).
WIRE_DELTA_BYTES = 4


def validate_clock_transport(mode: str) -> str:
    """Return *mode* if legal, raise ``ValueError`` otherwise."""
    if mode not in CLOCK_TRANSPORT_MODES:
        raise ValueError(
            f"clock_transport must be one of {CLOCK_TRANSPORT_MODES}, got {mode!r}"
        )
    return mode


def validate_clock_wire(wire_format: str) -> str:
    """Return *wire_format* if legal, raise ``ValueError`` otherwise."""
    if wire_format not in CLOCK_WIRE_FORMATS:
        raise ValueError(
            f"clock_wire must be one of {CLOCK_WIRE_FORMATS}, got {wire_format!r}"
        )
    return wire_format


#: Adaptive resync cadence bounds and starting point (messages per channel).
ADAPTIVE_RESYNC_MIN = 8
ADAPTIVE_RESYNC_MAX = 512
ADAPTIVE_RESYNC_START = 64
#: Realized sparse/full byte-ratio thresholds: below the low mark the
#: channel is stable (stretch the cadence — resyncs are the dominant cost);
#: above the high mark sparse frames are nearly full-sized anyway (tighten
#: the cadence — a resync costs little extra and keeps the delta state
#: fresh).
ADAPTIVE_RATIO_LOW = 0.25
ADAPTIVE_RATIO_HIGH = 0.75


def validate_clock_wire_resync(value):
    """Validate a resync cadence: a positive message count, or ``"adaptive"``."""
    if value == "adaptive":
        return value
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(
            f"clock_wire_resync must be a positive integer or 'adaptive', "
            f"got {value!r}"
        )
    return value


@dataclass(frozen=True)
class ClockWireFrame:
    """One encoded clock as it would travel on a directed channel.

    ``entries`` is the absolute clock for full/resync frames and a tuple of
    ``(rank, increment)`` (delta) or ``(rank, value)`` (truncated) pairs for
    sparse frames.  ``wire_bytes`` is the modelled wire size, already
    including tag and count headers.
    """

    wire_format: str
    full: bool
    entries: Tuple
    wire_bytes: int


class ClockWireEncoder:
    """Sender half of one directed channel's clock compression.

    Tracks the last clock sent on the channel; :meth:`encode` emits either a
    sparse frame covering the components that changed since then, or a full
    resync frame — on the first message, every ``resync_period`` messages,
    and whenever the sparse encoding would not beat the full one.

    With ``adaptive=True`` the cadence tunes itself per channel from the
    realized sparse/full byte ratio of each resync window: a channel whose
    sparse frames are tiny (ratio ≤ :data:`ADAPTIVE_RATIO_LOW`) doubles its
    period — the periodic full frames are its dominant clock cost — and a
    channel whose sparse frames are nearly full-sized anyway (ratio ≥
    :data:`ADAPTIVE_RATIO_HIGH`) halves it, within
    [:data:`ADAPTIVE_RESYNC_MIN`, :data:`ADAPTIVE_RESYNC_MAX`].  A due
    adaptive resync additionally consults *resync_decider* — the schedule
    controller's hook — which may defer it by a few more sparse messages, a
    logged, replayable decision (always sound: sparse frames decode to the
    exact clock regardless of when the resync lands).
    """

    def __init__(
        self,
        world_size: int,
        wire_format: str,
        resync_period: int = 64,
        entry_bytes: int = BYTES_PER_ENTRY,
        adaptive: bool = False,
        resync_decider=None,
    ) -> None:
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        if resync_period < 1:
            raise ValueError(f"resync_period must be >= 1, got {resync_period}")
        self.world_size = world_size
        self.wire_format = validate_clock_wire(wire_format)
        self.resync_period = resync_period
        self.entry_bytes = entry_bytes
        self.adaptive = adaptive
        self._resync_decider = resync_decider
        self._last_sent: Optional[List[int]] = None
        self._since_resync = 0
        #: Realized sparse bytes and frame count of the current resync window.
        self._window_sparse_bytes = 0
        self._window_frames = 0
        #: Adaptation history, for tests and benchmarks.
        self.period_raises = 0
        self.period_lowers = 0
        self.resyncs_deferred = 0

    def _full_frame(self, clock: Tuple[int, ...], tagged: bool) -> ClockWireFrame:
        return ClockWireFrame(
            wire_format=self.wire_format,
            full=True,
            entries=tuple(clock),
            wire_bytes=(WIRE_TAG_BYTES if tagged else 0)
            + self.world_size * self.entry_bytes,
        )

    def encode(self, clock) -> ClockWireFrame:
        """Encode one clock (any int sequence of length ``world_size``)."""
        entries = tuple(int(value) for value in clock)
        if len(entries) != self.world_size:
            raise ValueError(
                f"clock has {len(entries)} entries, channel covers "
                f"{self.world_size} ranks"
            )
        if self.wire_format == "full":
            # The legacy untagged layout: nothing to resync, nothing saved.
            self._last_sent = list(entries)
            return self._full_frame(entries, tagged=False)
        period_reached = (
            self._last_sent is not None
            and self._since_resync >= self.resync_period
        )
        if period_reached and self.adaptive and self._resync_decider is not None:
            # A due adaptive resync is a controlled choice point: the
            # controller may defer it by a few more sparse messages.
            defer = self._resync_decider(self._since_resync, self.resync_period)
            if defer > 0:
                self.resyncs_deferred += 1
                self._since_resync = max(0, self.resync_period - int(defer))
                period_reached = False
        resync_due = self._last_sent is None or period_reached
        if not resync_due:
            changed = [
                (rank, value - self._last_sent[rank])
                if self.wire_format == "delta"
                else (rank, value)
                for rank, value in enumerate(entries)
                if value != self._last_sent[rank]
            ]
            entry_cost = WIRE_RANK_BYTES + (
                WIRE_DELTA_BYTES if self.wire_format == "delta" else self.entry_bytes
            )
            sparse_bytes = (
                WIRE_TAG_BYTES + WIRE_COUNT_BYTES + len(changed) * entry_cost
            )
            full_bytes = WIRE_TAG_BYTES + self.world_size * self.entry_bytes
            if sparse_bytes < full_bytes:
                self._last_sent = list(entries)
                self._since_resync += 1
                self._window_sparse_bytes += sparse_bytes
                self._window_frames += 1
                return ClockWireFrame(
                    wire_format=self.wire_format,
                    full=False,
                    entries=tuple(changed),
                    wire_bytes=sparse_bytes,
                )
        # Resync: first message, period reached, or sparse would not pay.
        if self.adaptive:
            self._adapt_period()
        self._last_sent = list(entries)
        self._since_resync = 0
        return self._full_frame(entries, tagged=True)

    def _adapt_period(self) -> None:
        """Re-tune the cadence from the closing window's realized byte ratio."""
        if not self._window_frames:
            return
        full_bytes = WIRE_TAG_BYTES + self.world_size * self.entry_bytes
        ratio = self._window_sparse_bytes / (self._window_frames * full_bytes)
        self._window_sparse_bytes = 0
        self._window_frames = 0
        if ratio <= ADAPTIVE_RATIO_LOW:
            raised = min(self.resync_period * 2, ADAPTIVE_RESYNC_MAX)
            if raised != self.resync_period:
                self.resync_period = raised
                self.period_raises += 1
        elif ratio >= ADAPTIVE_RATIO_HIGH:
            lowered = max(self.resync_period // 2, ADAPTIVE_RESYNC_MIN)
            if lowered != self.resync_period:
                self.resync_period = lowered
                self.period_lowers += 1


class ClockWireDecoder:
    """Receiver half of one directed channel's clock compression.

    Reconstructs the exact clock from the frame stream: full frames replace
    the channel view, sparse frames patch it.  A sparse frame before any
    full frame is a protocol violation (the encoder always opens with a
    resync) and raises.
    """

    def __init__(self, world_size: int, wire_format: str) -> None:
        self.world_size = world_size
        self.wire_format = validate_clock_wire(wire_format)
        self._view: Optional[List[int]] = None

    def decode(self, frame: ClockWireFrame) -> Tuple[int, ...]:
        """Apply one frame; returns the reconstructed absolute clock."""
        if frame.wire_format != self.wire_format:
            raise ValueError(
                f"frame format {frame.wire_format!r} on a "
                f"{self.wire_format!r} channel"
            )
        if frame.full:
            self._view = list(frame.entries)
        elif self._view is None:
            raise ValueError(
                "sparse clock frame received before any full resync frame"
            )
        else:
            for rank, value in frame.entries:
                if self.wire_format == "delta":
                    self._view[rank] += value
                else:
                    self._view[rank] = value
        return tuple(self._view)


#: The clock-transport accounting fields, in reporting order.  Field
#: semantics (docstrings live on :class:`ClockTransportStats`):
#: ``round_trips`` — CLOCK_FETCH/CLOCK_UPDATE pairs charged on the fabric;
#: ``piggybacked_messages``/``piggybacked_bytes`` — data messages carrying a
#: clock rider and the rider bytes; ``joins_performed``/``joins_elided`` —
#: origin-side retirement joins done vs skipped thanks to batching;
#: ``wire_frames_full``/``wire_frames_sparse`` — resync vs compressed clock
#: frames; ``wire_bytes_saved`` — bytes the wire format saved vs full
#: clocks; ``completion_events``/``completions_coalesced`` — CQEs delivered
#: and completions that shared one; ``completion_clock_bytes`` — clock bytes
#: riding on completion events.
#: The ``ud_*`` family accounts the unreliable transport:
#: ``ud_datagrams`` — sequenced datagrams sent (retransmissions included);
#: ``ud_dropped`` — datagrams the fabric lost; ``ud_retransmits`` —
#: re-sends after a drop timer; ``ud_duplicates`` — spurious second
#: arrivals absorbed idempotently; ``ud_resyncs`` — receiver-driven resync
#: round trips completed; ``ud_resync_requests`` — UD_RESYNC_REQUEST
#: messages issued (re-requests after a lost request/reply included);
#: ``ud_stale_frames`` — sparse frames that arrived behind the receiver's
#: view (a reorder across a resync boundary).
CLOCK_TRANSPORT_FIELDS = (
    "round_trips",
    "piggybacked_messages",
    "piggybacked_bytes",
    "joins_performed",
    "joins_elided",
    "wire_frames_full",
    "wire_frames_sparse",
    "wire_bytes_saved",
    "completion_events",
    "completions_coalesced",
    "completion_clock_bytes",
    "ud_datagrams",
    "ud_dropped",
    "ud_retransmits",
    "ud_duplicates",
    "ud_resyncs",
    "ud_resync_requests",
    "ud_stale_frames",
)


def _transport_field(name: str) -> property:
    """A field of :class:`ClockTransportStats` backed by a registry counter.

    Both halves matter: call sites *increment* fields in place
    (``stats.round_trips += 1``), and ``merge`` read-modify-writes them — so
    each field is a getter/setter pair over the counter's value.
    """

    def getter(self: "ClockTransportStats") -> int:
        return self._counters[name].value

    def setter(self: "ClockTransportStats", value: int) -> None:
        self._counters[name].value = value

    return property(getter, setter, doc=f"Registry-backed ``{name}`` count.")


class ClockTransportStats:
    """Per-rank accounting of how clocks moved during one run.

    A *view* over the metrics registry: every field is a
    ``clock_transport.<field>`` counter (labelled ``rank=<rank>`` when owned
    by a NIC's transport), so ``RunResult.metrics`` and this object can never
    disagree.  Constructed bare — e.g. for whole-machine totals built with
    :meth:`merge` — it owns a private registry.
    """

    __slots__ = ("_counters",)

    def __init__(
        self,
        registry: Optional["MetricsRegistry"] = None,
        rank: Optional[int] = None,
    ) -> None:
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        labels = {} if rank is None else {"rank": rank}
        self._counters = {
            name: registry.counter(f"clock_transport.{name}", **labels)
            for name in CLOCK_TRANSPORT_FIELDS
        }

    round_trips = _transport_field("round_trips")
    piggybacked_messages = _transport_field("piggybacked_messages")
    piggybacked_bytes = _transport_field("piggybacked_bytes")
    joins_performed = _transport_field("joins_performed")
    joins_elided = _transport_field("joins_elided")
    wire_frames_full = _transport_field("wire_frames_full")
    wire_frames_sparse = _transport_field("wire_frames_sparse")
    wire_bytes_saved = _transport_field("wire_bytes_saved")
    completion_events = _transport_field("completion_events")
    completions_coalesced = _transport_field("completions_coalesced")
    completion_clock_bytes = _transport_field("completion_clock_bytes")
    ud_datagrams = _transport_field("ud_datagrams")
    ud_dropped = _transport_field("ud_dropped")
    ud_retransmits = _transport_field("ud_retransmits")
    ud_duplicates = _transport_field("ud_duplicates")
    ud_resyncs = _transport_field("ud_resyncs")
    ud_resync_requests = _transport_field("ud_resync_requests")
    ud_stale_frames = _transport_field("ud_stale_frames")

    def merge(self, other: "ClockTransportStats") -> "ClockTransportStats":
        """Accumulate *other* into this record (whole-machine totals)."""
        for name in CLOCK_TRANSPORT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary for reports and the benchmark JSON."""
        return {name: getattr(self, name) for name in CLOCK_TRANSPORT_FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClockTransportStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"ClockTransportStats({nonzero})"


class ClockTransport:
    """One rank's clock-movement policy, consulted by NIC and verbs layers.

    The mode is read from the owning NIC's config on every decision — that
    is what lets :meth:`~repro.runtime.runtime.DSMRuntime.set_clock_transport`
    switch an already-built runtime (the campaign runner's configure hook).
    Always switch through that method (or ``RuntimeConfig.clock_transport``
    at construction): it also keeps the detector's per-check control
    accounting in step, which a bare ``NICConfig.clock_transport``
    assignment would not.
    """

    def __init__(self, nic: "NIC") -> None:
        from repro.obs.observability import Observability

        self._nic = nic
        self.stats = ClockTransportStats(
            registry=Observability.of(nic._sim).metrics, rank=nic.rank
        )
        #: Per-destination codec state for clocks *this rank sends*: both
        #: halves advance in lockstep at send time (sound under the RC
        #: in-order delivery of each queue pair's channel).
        self._encoders: Dict[int, ClockWireEncoder] = {}
        self._decoders: Dict[int, ClockWireDecoder] = {}

    # -- mode ---------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The active transport mode (``"roundtrip"`` or ``"piggyback"``)."""
        return validate_clock_transport(self._nic.config.clock_transport)

    @property
    def piggyback(self) -> bool:
        """True when clocks ride on the data messages."""
        return self.mode == "piggyback"

    @property
    def wire_format(self) -> str:
        """The active clock wire format (``full``/``delta``/``truncated``)."""
        return validate_clock_wire(self._nic.config.clock_wire)

    def _active(self) -> bool:
        detector = self._nic.detector
        return detector is not None and detector.config.enabled

    def clock_bytes(self) -> int:
        """Wire size of one *full* vector clock for this world."""
        return self._nic._clock_bytes()

    # -- wire format (per-destination codecs) ----------------------------------------

    @property
    def adaptive_resync(self) -> bool:
        """True when the resync cadence self-tunes per channel."""
        return self._nic.config.clock_wire_resync == "adaptive"

    def _resync_decider(self, destination: int):
        """The controller hook deciding whether a due resync is deferred."""

        def decide(since_resync: int, period: int) -> int:
            controller = getattr(self._nic._sim, "controller", None)
            if controller is not None and hasattr(controller, "on_clock_resync"):
                return controller.on_clock_resync(
                    self._nic.rank, destination, since_resync, period
                )
            return 0

        return decide

    def _codec(self, destination: int) -> Tuple[ClockWireEncoder, ClockWireDecoder]:
        encoder = self._encoders.get(destination)
        adaptive = self.adaptive_resync
        if (
            encoder is None
            or encoder.wire_format != self.wire_format
            or encoder.adaptive != adaptive
        ):
            encoder = ClockWireEncoder(
                self._nic.detector.world_size,
                self.wire_format,
                resync_period=(
                    ADAPTIVE_RESYNC_START
                    if adaptive
                    else self._nic.config.clock_wire_resync
                ),
                adaptive=adaptive,
                resync_decider=(
                    self._resync_decider(destination) if adaptive else None
                ),
            )
            self._encoders[destination] = encoder
            self._decoders[destination] = ClockWireDecoder(
                encoder.world_size, self.wire_format
            )
        return encoder, self._decoders[destination]

    def wire_resync_state(self) -> Dict[int, Dict[str, int]]:
        """Per-destination resync cadence state (tests and benchmarks)."""
        return {
            destination: {
                "resync_period": encoder.resync_period,
                "period_raises": encoder.period_raises,
                "period_lowers": encoder.period_lowers,
                "resyncs_deferred": encoder.resyncs_deferred,
            }
            for destination, encoder in sorted(self._encoders.items())
        }

    def encode_frame(self, clock_entries, destination: int) -> ClockWireFrame:
        """Run one clock through *destination*'s channel codec; returns the frame.

        The frame is immediately decoded and verified against the input —
        the "verdict-identical by construction" guarantee: whatever the wire
        format, the clock the receiver reconstructs is the exact snapshot
        the detector checks with.
        """
        encoder, decoder = self._codec(destination)
        frame = encoder.encode(clock_entries)
        decoded = decoder.decode(frame)
        if decoded != tuple(int(v) for v in clock_entries):
            raise RuntimeError(
                f"clock wire codec corrupted a clock on channel "
                f"P{self._nic.rank}->P{destination}: {clock_entries} "
                f"decoded as {decoded}"
            )
        if frame.full:
            self.stats.wire_frames_full += 1
        else:
            self.stats.wire_frames_sparse += 1
        self.stats.wire_bytes_saved += max(0, self.clock_bytes() - frame.wire_bytes)
        return frame

    def encode_clock(self, clock_entries, destination: int) -> int:
        """Like :meth:`encode_frame`, returning only the wire byte count."""
        return self.encode_frame(clock_entries, destination).wire_bytes

    # -- wire traffic --------------------------------------------------------------

    def data_overhead_bytes(self) -> int:
        """Clock bytes added to one data message under the *legacy* accounting.

        Piggyback riders are sized per message by :meth:`ride` (the wire
        format decides); this figure covers only the roundtrip transport's
        ``charge_detection_messages=False`` shortcut, where clocks are
        assumed piggybacked on data messages for free at full size.
        """
        if not self._active():
            return 0
        if not self.piggyback and not self._nic.config.charge_detection_messages:
            return self.clock_bytes()
        return 0

    def ride(self, clock, destination: int, request: bool = False) -> Tuple[Optional[tuple], int]:
        """Stamp a clock rider onto one message bound for *destination*.

        Returns ``(frozen_clock_or_None, clock_wire_bytes)``: the frozen
        snapshot to put in :attr:`~repro.net.message.Message.carried_clock`
        (``None`` when no clock rides this message) and the clock's share of
        ``payload_bytes``.  Under the piggyback transport the rider is
        encoded through the channel's wire-format codec — ``full`` costs the
        whole vector, ``delta``/``truncated`` cost only the components that
        changed since the channel's last clock (plus periodic resyncs).
        Under roundtrip, *request* messages add nothing and data messages
        add the legacy ``charge_detection_messages=False`` allowance.
        """
        frozen, wire_bytes, _ = self.ride_frame(clock, destination, request=request)
        return frozen, wire_bytes

    def ride_frame(
        self, clock, destination: int, request: bool = False
    ) -> Tuple[Optional[tuple], int, Optional[str]]:
        """Like :meth:`ride`, also reporting the frame's wire shape.

        The third element is ``"full"`` (self-contained frame), ``"sparse"``
        (sequence-dependent patch) or ``None`` (no frame rode).  The UD
        transport stamps it into :attr:`Message.ud_frame` so the receiver
        can tell whether a gapped or stale datagram needs a resync before
        its clock could have been reconstructed from the wire.
        """
        if not self._active():
            return None, 0, None
        if self.piggyback:
            if clock is None:
                return None, 0, None
            frozen = (
                clock.frozen()
                if hasattr(clock, "frozen")
                else tuple(int(entry) for entry in clock)
            )
            frame = self.encode_frame(frozen, destination)
            self.stats.piggybacked_messages += 1
            self.stats.piggybacked_bytes += frame.wire_bytes
            return frozen, frame.wire_bytes, ("full" if frame.full else "sparse")
        return None, (0 if request else self.data_overhead_bytes()), None

    def round_trip(self, target_rank: int, tag: str) -> Generator:
        """Charge Algorithm 5's CLOCK_FETCH/CLOCK_UPDATE pair, when owed.

        A generator driven by the simulation kernel; returns ``(messages,
        update_clock_bytes)`` — the number of control messages charged (0 in
        piggyback mode, where the clock already rode on the data message)
        and the wire size of the clock the CLOCK_UPDATE carried (``None``
        when no round trip was charged).  Under a compressed wire format the
        update payload travels through the *target's* channel codec — the
        update is the target's message — so Algorithm 5's dedicated clock
        traffic also shrinks.
        """
        if (
            not self._active()
            or self.piggyback
            or not self._nic.config.charge_detection_messages
            or target_rank == self._nic.rank
        ):
            return 0, None
        sync_started = self._nic._sim.now
        fetch, _ = self._nic.fabric.send(
            MessageKind.CLOCK_FETCH, self._nic.rank, target_rank,
            payload_bytes=0, operation_tag=tag,
        )
        yield fetch
        if self.wire_format == "full":
            update_bytes = self.clock_bytes()
        else:
            target_transport = self._nic.peer(target_rank).clock_transport
            update_bytes = target_transport.encode_clock(
                self._nic.detector.current_clock(target_rank).frozen(),
                self._nic.rank,
            )
        reply, _ = self._nic.fabric.send(
            MessageKind.CLOCK_UPDATE, target_rank, self._nic.rank,
            payload_bytes=update_bytes, operation_tag=tag,
        )
        yield reply
        self.stats.round_trips += 1
        self._nic._obs.spans.complete(
            self._nic.engine_track, "clock_sync", sync_started,
            self._nic._sim.now, target=f"P{target_rank}",
            update_bytes=update_bytes,
        )
        return 2, update_bytes

    # -- retirement joins and completion events ------------------------------------------

    def note_join(self, performed: bool) -> None:
        """Book one completion retirement: a join done, or elided by batching."""
        if performed:
            self.stats.joins_performed += 1
        else:
            self.stats.joins_elided += 1

    def note_completion_event(self, completions: int, carries_clock: bool) -> None:
        """Book one CQE delivery covering *completions* work completions.

        Uncoalesced delivery books one event per completion; CQ moderation
        books one event per drain burst, so the clock the event carries — the
        batched retirement join, charged here at full vector size — is paid
        once per burst instead of once per completion.
        """
        self.stats.completion_events += 1
        self.stats.completions_coalesced += max(0, completions - 1)
        if carries_clock:
            self.stats.completion_clock_bytes += self.clock_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClockTransport P{self._nic.rank} mode={self.mode}>"
