"""Typed network messages.

Each remote operation decomposes into one or more messages, exactly as the
paper describes (Section III-B): a ``put`` sends one PUT_DATA message; a
``get`` sends a GET_REQUEST and receives a GET_REPLY.  Lock management and
clock maintenance generate additional *control* messages, which are accounted
separately so that the overhead benchmarks can report "extra messages due to
detection" without conflating them with the data traffic the application would
generate anyway.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class MessageKind(enum.Enum):
    """The role a message plays in a remote operation."""

    PUT_DATA = "put_data"          # the single message of a put (paper, Fig. 2)
    GET_REQUEST = "get_request"    # first message of a get
    GET_REPLY = "get_reply"        # second message of a get (carries the data)
    ATOMIC_REQUEST = "atomic_request"  # one-sided atomic: opcode + operands
    ATOMIC_REPLY = "atomic_reply"      # one-sided atomic: the prior value
    SEND_REQUEST = "send_request"  # two-sided SEND: the gathered payload, matched
    #                                against a posted receive at the target
    LOCK_REQUEST = "lock_request"  # NIC lock acquisition
    LOCK_GRANT = "lock_grant"
    UNLOCK = "unlock"
    CLOCK_FETCH = "clock_fetch"    # detection: read a remote datum clock (Alg. 5)
    CLOCK_UPDATE = "clock_update"  # detection: write back a merged clock (Alg. 5)
    UD_RESYNC_REQUEST = "ud_resync_request"  # UD: receiver asks for a full frame
    #                                          after a sequence gap / stale frame
    UD_RESYNC_FULL = "ud_resync_full"        # UD: sender answers with the tagged
    #                                          full clock frame for that sequence
    NOTIFY = "notify"              # runtime-level notification (barrier, join)

    @property
    def is_data(self) -> bool:
        """True for the messages that move application data (Fig. 2 count)."""
        return self in (
            MessageKind.PUT_DATA,
            MessageKind.GET_REQUEST,
            MessageKind.GET_REPLY,
            MessageKind.ATOMIC_REQUEST,
            MessageKind.ATOMIC_REPLY,
            MessageKind.SEND_REQUEST,
        )

    @property
    def is_detection(self) -> bool:
        """True for messages that exist only because detection is enabled."""
        return self in (
            MessageKind.CLOCK_FETCH,
            MessageKind.CLOCK_UPDATE,
            MessageKind.UD_RESYNC_REQUEST,
            MessageKind.UD_RESYNC_FULL,
        )

    @property
    def is_lock(self) -> bool:
        """True for lock-management traffic."""
        return self in (MessageKind.LOCK_REQUEST, MessageKind.LOCK_GRANT, MessageKind.UNLOCK)


#: Default payload size, in bytes, of one memory cell's value.
DEFAULT_CELL_BYTES = 8
#: Size of a message header (addresses, opcodes) in bytes.
HEADER_BYTES = 32


@dataclass(frozen=True)
class Message:
    """One message on the interconnect.

    Attributes
    ----------
    message_id:
        Unique id assigned by the fabric.
    kind:
        Role of the message (see :class:`MessageKind`).
    source / destination:
        Origin and target ranks.
    payload:
        Arbitrary payload (a value, a clock, a lock token...).
    payload_bytes:
        Modelled size of the payload, used by bandwidth-aware latency models
        and the byte counters.
    send_time / deliver_time:
        Simulated times at which the message left the source NIC and reached
        the destination NIC.
    operation_tag:
        Identifier of the high-level operation (put/get) this message belongs
        to, for trace correlation.
    carried_clock:
        The vector clock piggybacked on this message, as a frozen tuple —
        set only under the ``"piggyback"`` clock transport, where the causal
        clock rides on the data/atomic message itself instead of a dedicated
        CLOCK_FETCH/CLOCK_UPDATE round trip.  ``payload_bytes`` already
        includes its wire size when present.
    clock_wire_bytes:
        The clock rider's exact share of ``payload_bytes``, as sized by the
        active ``clock_wire`` format (full vector, or a delta/truncated
        sparse frame against the channel's last-acknowledged view).  Zero
        when no clock rides this message.
    ud_seq:
        Under the ``"ud"`` transport, the per-(source, destination) sequence
        number of this datagram (1-based).  ``None`` on RC messages and on
        out-of-band UD traffic (resync requests/replies), which is also how
        the schedule controller recognises that a delivery makes no FIFO
        promise.
    ud_frame:
        ``"full"`` or ``"sparse"`` — whether the datagram's clock rider is a
        self-contained full frame or a sequence-dependent sparse frame
        (``None`` when no frame rides).  Receivers use it to decide whether
        a gapped or stale datagram needs a resync before its clock can be
        trusted.
    """

    message_id: int
    kind: MessageKind
    source: int
    destination: int
    payload: Any = None
    payload_bytes: int = DEFAULT_CELL_BYTES
    send_time: float = 0.0
    deliver_time: float = 0.0
    operation_tag: Optional[str] = None
    carried_clock: Optional[tuple] = None
    clock_wire_bytes: int = 0
    ud_seq: Optional[int] = None
    ud_frame: Optional[str] = None

    @property
    def total_bytes(self) -> int:
        """Header plus payload size."""
        return HEADER_BYTES + max(0, self.payload_bytes)

    @property
    def latency(self) -> float:
        """Flight time of the message."""
        return self.deliver_time - self.send_time

    def __str__(self) -> str:
        return (
            f"{self.kind.value} #{self.message_id} P{self.source}->P{self.destination} "
            f"({self.total_bytes}B, t={self.send_time:g}->{self.deliver_time:g})"
        )
