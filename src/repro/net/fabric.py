"""The interconnect fabric: routing, channels and global accounting.

The fabric owns one :class:`~repro.net.channel.Channel` per ordered pair of
ranks (created lazily), stamps message ids, and keeps the global counters the
overhead experiments read: data messages vs lock messages vs detection
messages, and bytes for each category.  It is deliberately passive — NICs call
:meth:`Fabric.send` and yield the returned event; the fabric never invokes
application code.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.net.channel import Channel
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.topology import Topology
from repro.net.ud_transport import UdChannel
from repro.obs.metrics import MetricsRegistry
from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.util.ids import IdAllocator
from repro.util.validation import require_rank

#: The traffic categories FabricStats splits counts by.
_CATEGORIES = ("data", "lock", "detection", "other")


class FabricStats:
    """Message/byte counters split by traffic category.

    A *view* over the metrics registry: the numbers live in
    ``fabric.messages{category=...}`` / ``fabric.bytes{category=...}``
    counters, and the historical attribute surface (``data_messages``,
    ``detection_bytes``, ...) reads straight through to them — one source of
    truth whichever spelling a caller uses.  Constructed without a registry
    (tests, ad-hoc accounting) it owns a private one.
    """

    __slots__ = ("_messages", "_bytes", "_by_kind")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._messages = {
            category: registry.counter("fabric.messages", category=category)
            for category in _CATEGORIES
        }
        self._bytes = {
            category: registry.counter("fabric.bytes", category=category)
            for category in _CATEGORIES
        }
        self._by_kind = {
            kind: registry.counter("fabric.messages_by_kind", kind=kind.value)
            for kind in MessageKind
        }

    # -- the historical attribute surface ------------------------------------------

    @property
    def data_messages(self) -> int:
        return self._messages["data"].value

    @property
    def lock_messages(self) -> int:
        return self._messages["lock"].value

    @property
    def detection_messages(self) -> int:
        return self._messages["detection"].value

    @property
    def other_messages(self) -> int:
        return self._messages["other"].value

    @property
    def data_bytes(self) -> int:
        return self._bytes["data"].value

    @property
    def lock_bytes(self) -> int:
        return self._bytes["lock"].value

    @property
    def detection_bytes(self) -> int:
        return self._bytes["detection"].value

    @property
    def other_bytes(self) -> int:
        return self._bytes["other"].value

    @property
    def total_messages(self) -> int:
        """All messages that crossed the fabric."""
        return sum(counter.value for counter in self._messages.values())

    @property
    def total_bytes(self) -> int:
        """All bytes that crossed the fabric."""
        return sum(counter.value for counter in self._bytes.values())

    def record(self, message: Message) -> None:
        """Account one message into the appropriate category."""
        if message.kind.is_data:
            category = "data"
        elif message.kind.is_lock:
            category = "lock"
        elif message.kind.is_detection:
            category = "detection"
        else:
            category = "other"
        self._messages[category].inc()
        self._bytes[category].inc(message.total_bytes)
        self._by_kind[message.kind].inc()

    def message_count_for_kind(self, kind: MessageKind) -> int:
        """Messages sent with exactly *kind* (finer than the categories)."""
        return self._by_kind[kind].value

    def reset(self) -> None:
        """Zero every counter in place (instrument identities survive)."""
        for counter in self._messages.values():
            counter.value = 0
        for counter in self._bytes.values():
            counter.value = 0
        for counter in self._by_kind.values():
            counter.value = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary used by the reporting helpers."""
        return {
            "data_messages": self.data_messages,
            "lock_messages": self.lock_messages,
            "detection_messages": self.detection_messages,
            "other_messages": self.other_messages,
            "total_messages": self.total_messages,
            "data_bytes": self.data_bytes,
            "lock_bytes": self.lock_bytes,
            "detection_bytes": self.detection_bytes,
            "other_bytes": self.other_bytes,
            "total_bytes": self.total_bytes,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FabricStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricStats(messages={self.total_messages}, "
            f"bytes={self.total_bytes})"
        )


class Fabric:
    """Routes messages between ranks over a topology with a latency model."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency_model: Optional[LatencyModel] = None,
        bandwidth_bytes_per_time: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._latency_model = latency_model or ConstantLatency(base=1.0)
        self._bandwidth = bandwidth_bytes_per_time
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._ud_channels: Dict[Tuple[int, int], UdChannel] = {}
        self._ids = IdAllocator("msg")
        self.stats = FabricStats(registry=Observability.of(sim).metrics)

    # -- wiring ----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The physical topology in use."""
        return self._topology

    @property
    def world_size(self) -> int:
        """Number of ranks on the fabric."""
        return self._topology.world_size

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model applied to every message."""
        return self._latency_model

    def channel(self, source: int, destination: int) -> Channel:
        """Return (creating lazily) the ordered channel for the pair."""
        require_rank(source, self.world_size, "source")
        require_rank(destination, self.world_size, "destination")
        key = (source, destination)
        if key not in self._channels:
            self._channels[key] = Channel(
                self._sim,
                source,
                destination,
                self._latency_model,
                hops=self._topology.hops(source, destination),
                bandwidth_bytes_per_time=self._bandwidth,
            )
        return self._channels[key]

    def ud_channel(self, source: int, destination: int) -> UdChannel:
        """Return (creating lazily) the unreliable channel for the pair.

        UD and RC channels for the same pair are distinct objects — real
        fabrics multiplex service levels over the same link, but keeping the
        FIFO clamp state separate means switching a message class to UD
        never perturbs the ordering promise the remaining RC traffic keeps.
        """
        require_rank(source, self.world_size, "source")
        require_rank(destination, self.world_size, "destination")
        key = (source, destination)
        if key not in self._ud_channels:
            self._ud_channels[key] = UdChannel(
                self._sim,
                source,
                destination,
                self._latency_model,
                hops=self._topology.hops(source, destination),
                bandwidth_bytes_per_time=self._bandwidth,
            )
        return self._ud_channels[key]

    # -- sending -----------------------------------------------------------------

    def send(
        self,
        kind: MessageKind,
        source: int,
        destination: int,
        payload: Any = None,
        payload_bytes: int = 8,
        operation_tag: Optional[str] = None,
        carried_clock: Optional[tuple] = None,
        clock_wire_bytes: int = 0,
    ) -> Tuple[Event, Message]:
        """Send one message; returns ``(delivery_event, stamped_message)``.

        Self-messages (``source == destination``) are delivered after zero
        simulated time but still pass through the accounting — a local access
        to one's own public memory does not cross the wire, so callers should
        avoid sending them; the NIC short-circuits that case.  *carried_clock*
        is the piggybacked vector clock, stamped by the clock-transport layer
        in ``"piggyback"`` mode; *clock_wire_bytes* is its exact share of
        *payload_bytes* under the active ``clock_wire`` format.
        """
        message = Message(
            message_id=self._ids.next_int(),
            kind=kind,
            source=source,
            destination=destination,
            payload=payload,
            payload_bytes=payload_bytes,
            operation_tag=operation_tag,
            carried_clock=carried_clock,
            clock_wire_bytes=clock_wire_bytes,
        )
        if source == destination:
            event = self._sim.timeout(0.0, value=message, name=f"local:{kind.value}")
            stamped = message
        else:
            event, stamped = self.channel(source, destination).transmit(message)
        self.stats.record(stamped)
        return event, stamped

    def send_datagram(
        self,
        kind: MessageKind,
        source: int,
        destination: int,
        payload: Any = None,
        payload_bytes: int = 8,
        operation_tag: Optional[str] = None,
        carried_clock: Optional[tuple] = None,
        clock_wire_bytes: int = 0,
        ud_seq: Optional[int] = None,
        ud_frame: Optional[str] = None,
        retransmit_timeout: float = 8.0,
    ) -> Tuple[Event, Message, str, Optional[Event]]:
        """Send one UD datagram; returns ``(event, stamped, fate, dup_event)``.

        The datagram's fate is a logged/replayable ``drop`` decision
        resolved by the installed schedule controller (no controller means
        every datagram delivers):

        * ``"deliver"`` — *event* is the delivery event (fired with the
          stamped message), exactly like :meth:`send`;
        * ``"drop"`` — the bytes left the sender and are accounted, but no
          delivery exists; *event* is the sender's retransmission timer,
          firing after *retransmit_timeout*;
        * ``"duplicate"`` — delivered, **and** *dup_event* fires a second
          arrival of the same stamped datagram one flight later.

        Self-datagrams never drop: loopback does not cross the fabric.
        """
        message = Message(
            message_id=self._ids.next_int(),
            kind=kind,
            source=source,
            destination=destination,
            payload=payload,
            payload_bytes=payload_bytes,
            operation_tag=operation_tag,
            carried_clock=carried_clock,
            clock_wire_bytes=clock_wire_bytes,
            ud_seq=ud_seq,
            ud_frame=ud_frame,
        )
        if source == destination:
            event = self._sim.timeout(0.0, value=message, name=f"local:{kind.value}")
            self.stats.record(message)
            return event, message, "deliver", None
        controller = self._sim.controller
        fate_code = 0
        if controller is not None and hasattr(controller, "on_datagram_fate"):
            fate_code = controller.on_datagram_fate(message, source, destination)
        channel = self.ud_channel(source, destination)
        if fate_code == 1:
            event, stamped = channel.drop(message, retransmit_timeout)
            self.stats.record(stamped)
            return event, stamped, "drop", None
        event, stamped = channel.transmit(message)
        self.stats.record(stamped)
        if fate_code == 2:
            return event, stamped, "duplicate", channel.duplicate(stamped)
        return event, stamped, "deliver", None

    # -- accounting ----------------------------------------------------------------

    def message_count(self, kind: Optional[MessageKind] = None) -> int:
        """Total messages sent, optionally restricted to one kind."""
        if kind is None:
            return self.stats.total_messages
        return self.stats.message_count_for_kind(kind)

    def channels(self) -> Dict[Tuple[int, int], Channel]:
        """All channels created so far."""
        return dict(self._channels)

    def ud_channels(self) -> Dict[Tuple[int, int], UdChannel]:
        """All unreliable channels created so far."""
        return dict(self._ud_channels)

    def reset_stats(self) -> None:
        """Zero the counters (channels and ids are preserved)."""
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fabric {self._topology.name} latency={self._latency_model.describe()} "
            f"messages={self.stats.total_messages}>"
        )
