"""The interconnect fabric: routing, channels and global accounting.

The fabric owns one :class:`~repro.net.channel.Channel` per ordered pair of
ranks (created lazily), stamps message ids, and keeps the global counters the
overhead experiments read: data messages vs lock messages vs detection
messages, and bytes for each category.  It is deliberately passive — NICs call
:meth:`Fabric.send` and yield the returned event; the fabric never invokes
application code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.net.channel import Channel
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.util.ids import IdAllocator
from repro.util.validation import require_rank


@dataclass
class FabricStats:
    """Message/byte counters split by traffic category."""

    data_messages: int = 0
    lock_messages: int = 0
    detection_messages: int = 0
    other_messages: int = 0
    data_bytes: int = 0
    lock_bytes: int = 0
    detection_bytes: int = 0
    other_bytes: int = 0

    @property
    def total_messages(self) -> int:
        """All messages that crossed the fabric."""
        return (
            self.data_messages
            + self.lock_messages
            + self.detection_messages
            + self.other_messages
        )

    @property
    def total_bytes(self) -> int:
        """All bytes that crossed the fabric."""
        return self.data_bytes + self.lock_bytes + self.detection_bytes + self.other_bytes

    def record(self, message: Message) -> None:
        """Account one message into the appropriate category."""
        if message.kind.is_data:
            self.data_messages += 1
            self.data_bytes += message.total_bytes
        elif message.kind.is_lock:
            self.lock_messages += 1
            self.lock_bytes += message.total_bytes
        elif message.kind.is_detection:
            self.detection_messages += 1
            self.detection_bytes += message.total_bytes
        else:
            self.other_messages += 1
            self.other_bytes += message.total_bytes

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary used by the reporting helpers."""
        return {
            "data_messages": self.data_messages,
            "lock_messages": self.lock_messages,
            "detection_messages": self.detection_messages,
            "other_messages": self.other_messages,
            "total_messages": self.total_messages,
            "data_bytes": self.data_bytes,
            "lock_bytes": self.lock_bytes,
            "detection_bytes": self.detection_bytes,
            "other_bytes": self.other_bytes,
            "total_bytes": self.total_bytes,
        }


class Fabric:
    """Routes messages between ranks over a topology with a latency model."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency_model: Optional[LatencyModel] = None,
        bandwidth_bytes_per_time: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._latency_model = latency_model or ConstantLatency(base=1.0)
        self._bandwidth = bandwidth_bytes_per_time
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._ids = IdAllocator("msg")
        self.stats = FabricStats()
        self._per_kind_count: Dict[MessageKind, int] = {kind: 0 for kind in MessageKind}

    # -- wiring ----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The physical topology in use."""
        return self._topology

    @property
    def world_size(self) -> int:
        """Number of ranks on the fabric."""
        return self._topology.world_size

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model applied to every message."""
        return self._latency_model

    def channel(self, source: int, destination: int) -> Channel:
        """Return (creating lazily) the ordered channel for the pair."""
        require_rank(source, self.world_size, "source")
        require_rank(destination, self.world_size, "destination")
        key = (source, destination)
        if key not in self._channels:
            self._channels[key] = Channel(
                self._sim,
                source,
                destination,
                self._latency_model,
                hops=self._topology.hops(source, destination),
                bandwidth_bytes_per_time=self._bandwidth,
            )
        return self._channels[key]

    # -- sending -----------------------------------------------------------------

    def send(
        self,
        kind: MessageKind,
        source: int,
        destination: int,
        payload: Any = None,
        payload_bytes: int = 8,
        operation_tag: Optional[str] = None,
        carried_clock: Optional[tuple] = None,
        clock_wire_bytes: int = 0,
    ) -> Tuple[Event, Message]:
        """Send one message; returns ``(delivery_event, stamped_message)``.

        Self-messages (``source == destination``) are delivered after zero
        simulated time but still pass through the accounting — a local access
        to one's own public memory does not cross the wire, so callers should
        avoid sending them; the NIC short-circuits that case.  *carried_clock*
        is the piggybacked vector clock, stamped by the clock-transport layer
        in ``"piggyback"`` mode; *clock_wire_bytes* is its exact share of
        *payload_bytes* under the active ``clock_wire`` format.
        """
        message = Message(
            message_id=self._ids.next_int(),
            kind=kind,
            source=source,
            destination=destination,
            payload=payload,
            payload_bytes=payload_bytes,
            operation_tag=operation_tag,
            carried_clock=carried_clock,
            clock_wire_bytes=clock_wire_bytes,
        )
        if source == destination:
            event = self._sim.timeout(0.0, value=message, name=f"local:{kind.value}")
            stamped = message
        else:
            event, stamped = self.channel(source, destination).transmit(message)
        self.stats.record(stamped)
        self._per_kind_count[kind] += 1
        return event, stamped

    # -- accounting ----------------------------------------------------------------

    def message_count(self, kind: Optional[MessageKind] = None) -> int:
        """Total messages sent, optionally restricted to one kind."""
        if kind is None:
            return self.stats.total_messages
        return self._per_kind_count[kind]

    def channels(self) -> Dict[Tuple[int, int], Channel]:
        """All channels created so far."""
        return dict(self._channels)

    def reset_stats(self) -> None:
        """Zero the counters (channels and ids are preserved)."""
        self.stats = FabricStats()
        self._per_kind_count = {kind: 0 for kind in MessageKind}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fabric {self._topology.name} latency={self._latency_model.describe()} "
            f"messages={self.stats.total_messages}>"
        )
