"""Latency models for the simulated interconnect.

The detection algorithm is insensitive to absolute latencies, but the *shape*
of an execution (which access reaches a datum first) is determined by message
timing, so the latency model is what generates the different legal
interleavings the ground-truth oracle explores.  Three models are provided:

* :class:`ConstantLatency` — fixed per-hop latency plus a byte cost; gives
  fully deterministic executions (used by the figure-scenario benchmarks so
  the clock values printed match run after run);
* :class:`UniformLatency` — per-message jitter drawn from a seeded stream;
  different seeds yield different interleavings (used by the oracle and the
  workload benchmarks);
* :class:`LogGPLatency` — a LogGP-flavoured model (``L + o_s + o_r + k·G``)
  matching how RDMA fabrics are usually characterized in the HPC literature.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.net.message import Message
from repro.sim.rng import RandomStreams
from repro.util.validation import require_non_negative


class LatencyModel(abc.ABC):
    """Maps a message (and hop count) to a flight time."""

    @abc.abstractmethod
    def latency(self, message: Message, hops: int = 1) -> float:
        """Return the flight time for *message* across *hops* links."""

    def describe(self) -> str:
        """One-line description used in benchmark output."""
        return self.__class__.__name__


class ConstantLatency(LatencyModel):
    """Fixed latency per hop plus an optional per-byte cost."""

    def __init__(self, base: float = 1.0, per_byte: float = 0.0) -> None:
        require_non_negative(base, "base")
        require_non_negative(per_byte, "per_byte")
        self.base = base
        self.per_byte = per_byte

    def latency(self, message: Message, hops: int = 1) -> float:
        require_non_negative(hops, "hops")
        return self.base * max(1, hops) + self.per_byte * message.total_bytes

    def describe(self) -> str:
        return f"constant(base={self.base}, per_byte={self.per_byte})"


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message, per hop.

    The draw comes from a named stream of the simulator's
    :class:`~repro.sim.rng.RandomStreams`, so the same seed reproduces the
    same interleaving and different seeds perturb it.
    """

    def __init__(
        self,
        streams: RandomStreams,
        low: float = 0.5,
        high: float = 1.5,
        stream_name: str = "net.latency",
    ) -> None:
        if high < low:
            raise ValueError(f"latency bounds reversed: [{low}, {high}]")
        require_non_negative(low, "low")
        self._streams = streams
        self.low = low
        self.high = high
        self._stream_name = stream_name

    def latency(self, message: Message, hops: int = 1) -> float:
        require_non_negative(hops, "hops")
        total = 0.0
        for _ in range(max(1, hops)):
            total += self._streams.uniform(self._stream_name, self.low, self.high)
        return total

    def describe(self) -> str:
        return f"uniform([{self.low}, {self.high}])"


class LogGPLatency(LatencyModel):
    """A LogGP-style model: ``L·hops + o_send + o_recv + bytes·G``.

    Parameters use the conventional meanings: ``L`` wire latency per hop,
    ``o`` CPU/NIC overhead at each end, ``G`` gap per byte (inverse
    bandwidth).  Defaults are loosely calibrated to an InfiniBand-class
    fabric expressed in microseconds.
    """

    def __init__(
        self,
        L: float = 1.0,
        o_send: float = 0.3,
        o_recv: float = 0.3,
        G: float = 0.001,
        jitter: Optional[RandomStreams] = None,
        jitter_fraction: float = 0.0,
        stream_name: str = "net.loggp.jitter",
    ) -> None:
        require_non_negative(L, "L")
        require_non_negative(o_send, "o_send")
        require_non_negative(o_recv, "o_recv")
        require_non_negative(G, "G")
        require_non_negative(jitter_fraction, "jitter_fraction")
        self.L = L
        self.o_send = o_send
        self.o_recv = o_recv
        self.G = G
        self._jitter = jitter
        self._jitter_fraction = jitter_fraction
        self._stream_name = stream_name

    def latency(self, message: Message, hops: int = 1) -> float:
        require_non_negative(hops, "hops")
        base = (
            self.L * max(1, hops)
            + self.o_send
            + self.o_recv
            + self.G * message.total_bytes
        )
        if self._jitter is not None and self._jitter_fraction > 0:
            jitter = self._jitter.uniform(
                self._stream_name, 0.0, self._jitter_fraction * base
            )
            return base + jitter
        return base

    def describe(self) -> str:
        return (
            f"LogGP(L={self.L}, o_s={self.o_send}, o_r={self.o_recv}, G={self.G}, "
            f"jitter={self._jitter_fraction})"
        )
