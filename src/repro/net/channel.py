"""FIFO point-to-point channels.

RDMA fabrics deliver messages between a given pair of endpoints in order
(per queue pair); the simulation preserves that property: even when the
latency model draws a shorter flight time for a later message, its delivery is
clamped to be no earlier than the previous message on the same ordered pair.
This mirrors the paper's model of "communication channels that interconnect"
the processors (Section III-C) and keeps per-channel causality intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.util.validation import require_non_negative


@dataclass
class ChannelStats:
    """Per-channel accounting."""

    messages: int = 0
    bytes: int = 0
    total_latency: float = 0.0
    reordering_clamps: int = 0

    @property
    def mean_latency(self) -> float:
        """Average observed flight time."""
        return self.total_latency / self.messages if self.messages else 0.0


class Channel:
    """An ordered, reliable channel from one rank to another."""

    def __init__(
        self,
        sim: Simulator,
        source: int,
        destination: int,
        latency_model: LatencyModel,
        hops: int = 1,
        bandwidth_bytes_per_time: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self.source = source
        self.destination = destination
        self._latency_model = latency_model
        self._hops = max(1, hops) if source != destination else 0
        self._bandwidth = bandwidth_bytes_per_time
        if bandwidth_bytes_per_time is not None:
            require_non_negative(bandwidth_bytes_per_time, "bandwidth_bytes_per_time")
            if bandwidth_bytes_per_time == 0:
                raise ValueError("bandwidth must be positive or None")
        self._last_delivery = 0.0
        self._next_free = 0.0  # link serialization when bandwidth is modelled
        self.stats = ChannelStats()

    @property
    def hops(self) -> int:
        """Hop count used to scale latency."""
        return self._hops

    def transmit(self, message: Message) -> Tuple[Event, Message]:
        """Send *message*; returns ``(delivery_event, stamped_message)``.

        The event fires at the computed delivery time with the stamped message
        (send/deliver times filled in) as its value.
        """
        now = self._sim.now
        flight = self._latency_model.latency(message, hops=self._hops)
        require_non_negative(flight, "latency")
        controller = self._sim.controller
        if controller is not None:
            # The schedule controller owns delivery timing: it sees the
            # model's draw and may stretch it (a logged, replayable decision).
            # The FIFO clamp below still applies, so per-channel ordering is
            # preserved in every controlled schedule.
            flight = controller.on_message_latency(
                message, self.source, self.destination, flight
            )
            require_non_negative(flight, "controlled latency")
        start = now
        if self._bandwidth is not None:
            # The link serializes messages: a message cannot start transmission
            # before the previous one's bytes have left the wire.
            start = max(now, self._next_free)
            transmission = message.total_bytes / self._bandwidth
            self._next_free = start + transmission
            flight += (start - now) + transmission
        deliver_at = now + flight
        if deliver_at < self._last_delivery:
            # Preserve FIFO order on the pair.
            deliver_at = self._last_delivery
            self.stats.reordering_clamps += 1
        self._last_delivery = deliver_at
        stamped = Message(
            message_id=message.message_id,
            kind=message.kind,
            source=message.source,
            destination=message.destination,
            payload=message.payload,
            payload_bytes=message.payload_bytes,
            send_time=now,
            deliver_time=deliver_at,
            operation_tag=message.operation_tag,
            carried_clock=message.carried_clock,
        )
        self.stats.messages += 1
        self.stats.bytes += stamped.total_bytes
        self.stats.total_latency += deliver_at - now
        event = self._sim.timeout(deliver_at - now, value=stamped, name=f"deliver:{stamped.kind.value}")
        return event, stamped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Channel P{self.source}->P{self.destination} hops={self._hops} "
            f"messages={self.stats.messages}>"
        )
