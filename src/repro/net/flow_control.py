"""Credit-based flow control: receivers grant credits, senders stall locally.

The RNR retry protocol (the default, ``flow_control="rnr"``) is
*reactive*: a SEND that finds no posted receive is answered with a NAK, the
sender backs off and retransmits, and a saturated receiver turns every
sender into a retry storm — each retry is a full extra message on the
fabric.  Credit-based flow control (``flow_control="credit"``) is
*proactive*, the scheme real RC implementations layer on top of RNR as
end-to-end flow control: every posted receive buffer is one **credit**, a
sender **claims** a credit locally before transmitting, and a sender that
finds no credit **stalls at home** — zero bytes on the wire — until the
receiver's next post grants one.

The accounting invariant that makes the two modes verdict-identical:

* ``available = queue.depth - claims`` never goes negative;
* a claim is taken *before* the SEND's first transmission and **settled**
  (released) when the send matches the buffer the claim reserved, so every
  in-flight SEND has a buffer reserved for it and the match can never hit
  the RNR condition;
* matching stays strictly FIFO — credits carry no addressing, they are
  pure admission control, so the receive a send consumes is exactly the
  one the RNR protocol would have matched.

Consequently credit mode transmits every payload exactly once (RNR mode
transmits ``1 + retries`` times) and the schedule-space effects are
confined to *when* a stalled sender resumes — which is why the grant
wake-up routes through
:meth:`~repro.explore.controller.ScheduleController.on_credit_grant` as a
logged, replayable, fuzzable decision point.

One :class:`CreditGate` guards one receive queue.  A per-QP queue has one
claiming sender; a shared receive queue's gate is shared by every attached
peer, making the credit pool aggregate exactly like the SRQ buffer pool it
mirrors.  All gate instruments are created lazily with the gate itself, so
runs in RNR mode (the default) carry zero extra footprint.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.obs.observability import Observability

#: The admission-control protocols a runtime can select.
FLOW_CONTROL_MODES = ("rnr", "credit")


def validate_flow_control(mode: str) -> str:
    """Validate and return a flow-control mode name."""
    if mode not in FLOW_CONTROL_MODES:
        raise ValueError(
            f"flow_control must be one of {FLOW_CONTROL_MODES}, got {mode!r}"
        )
    return mode


class CreditGate:
    """Admission control over one receive queue's posted-buffer pool.

    Senders call :meth:`try_claim` before transmitting; a successful claim
    reserves one posted buffer until :meth:`settle` releases it at match
    time.  Senders that fail to claim park an event via
    :meth:`enqueue_waiter` and are woken one-per-post by the queue's post
    listener, with the wake-up timing owned by the schedule controller.
    """

    def __init__(self, queue, sim) -> None:
        self._queue = queue
        self._sim = sim
        self.rank = queue.rank
        self._claims = 0
        self._waiters: Deque[Tuple[object, int]] = deque()
        metrics = Observability.of(sim).metrics
        self._stall_counter = metrics.counter(
            "flow_control.credit_stalls", rank=self.rank
        )
        self._grant_counter = metrics.counter(
            "flow_control.credit_grants", rank=self.rank
        )
        #: Senders that found no credit and parked (lifetime total).
        self.stalls = 0
        #: Grants handed to parked senders (lifetime total).
        self.grants = 0

    # -- sender side --------------------------------------------------------------

    @property
    def available(self) -> int:
        """Credits a sender could claim right now (posted minus reserved)."""
        return self._queue.depth - self._claims

    def try_claim(self) -> bool:
        """Reserve one posted buffer; False when the pool is exhausted."""
        if self.available <= 0:
            return False
        self._claims += 1
        return True

    def settle(self) -> None:
        """Release one claim (the claimed buffer was consumed by its match)."""
        if self._claims <= 0:
            raise RuntimeError(
                f"credit gate for rank {self.rank}: settle without a claim"
            )
        self._claims -= 1

    def enqueue_waiter(self, event, sender: int) -> None:
        """Park a stalled sender's wake-up event until a post grants a credit."""
        self.stalls += 1
        self._stall_counter.inc()
        self._waiters.append((event, sender))

    @property
    def waiting(self) -> int:
        """Senders currently parked on this gate."""
        return len(self._waiters)

    # -- receiver side (wired as the queue's post listener) ------------------------

    def on_posted(self) -> None:
        """One buffer was posted: grant its credit to the oldest waiter.

        The wake-up delay is a controlled choice point — stretching a grant
        decides which of several stalled senders claims a contested buffer
        first.  A woken sender re-checks :meth:`try_claim`, so a grant
        "stolen" by a sender that never parked simply re-parks the waiter.
        """
        if not self._waiters:
            return
        event, sender = self._waiters.popleft()
        self.grants += 1
        self._grant_counter.inc()
        extra = 0.0
        controller = getattr(self._sim, "controller", None)
        if controller is not None and hasattr(controller, "on_credit_grant"):
            extra = controller.on_credit_grant(self.rank, sender)
        if extra > 0:
            self._sim.call_after(
                extra, event.succeed, name=f"credit-grant:P{self.rank}"
            )
        else:
            event.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CreditGate rank={self.rank} available={self.available} "
            f"claims={self._claims} waiting={self.waiting}>"
        )


def credit_gate_for(queue, sim) -> CreditGate:
    """The gate guarding *queue*, created (and wired to posts) on first use."""
    gate = getattr(queue, "_credit_gate", None)
    if gate is None:
        gate = CreditGate(queue, sim)
        queue._credit_gate = gate
        queue.set_post_listener(gate.on_posted)
    return gate
