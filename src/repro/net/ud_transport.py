"""The unreliable-datagram (UD) service level.

RC — everything this simulation modelled before — is the reliable connected
transport: per-pair FIFO delivery, no loss.  The lockstep ``clock_wire``
codecs lean on exactly that promise (a sparse frame is a patch against *the
previous frame on the channel*), and ROADMAP item 3 calls the assumption
out as the standing limit.  This module models the transport a planet-scale
deployment would actually run on: **unreliable datagrams** that the fabric
may drop, duplicate or reorder, with no FIFO clamp.

The moving parts:

* :class:`UdChannel` — a :class:`~repro.net.channel.Channel` that makes no
  ordering promise.  Delivery timing is a ``reorder`` decision
  (:meth:`ScheduleController.on_datagram_delay`) applied *without* the FIFO
  clamp; a delivery that genuinely overtakes an earlier one is counted, not
  corrected.  Drops and duplicates are ``drop`` decisions resolved by
  :meth:`Fabric.send_datagram` before the channel is even asked.

* :class:`UdEndpoint` — per-NIC datagram state.  The transmit side assigns
  each clock-carrying datagram a per-destination sequence number and files
  the exact clock it carried (the resync history); the receive side tracks,
  per source, the highest sequence its wire view has absorbed and decides
  each arriving frame's verdict: ``"exact"`` (stampable as-is), ``"gap"``
  (a sparse frame whose predecessor never arrived), ``"stale"`` (a sparse
  frame from before the current view — a reorder across a resync boundary)
  or ``"duplicate"`` (already absorbed; idempotent).

* :exc:`UdDeliveryExceeded` — a datagram (or its resync subprotocol) burnt
  the whole retransmission budget; surfaces as a failed work completion in
  the verbs layer, the UD twin of RNR-retry exhaustion.

Soundness contract: the detector always stamps the *in-process* carried
clock, and the UD machinery decides whether the receiver's wire view could
have reconstructed it — absorbing it directly when it could, running the
charged receiver-driven resync round trip (which fetches the exact
historical full frame for that sequence, never the sender's *current*
clock) when it could not.  A stale clock is therefore never stamped and no
false happens-before edge is ever introduced, whatever the fabric drops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Set, Tuple

from repro.net.channel import Channel, ChannelStats
from repro.net.message import Message
from repro.sim.events import Event
from repro.util.validation import require_non_negative

#: The service levels a runtime/NIC can be configured with.
TRANSPORT_MODES = ("rc", "ud")


def validate_transport(mode: str) -> str:
    """Return *mode* if it names a transport, else raise ``ValueError``."""
    if mode not in TRANSPORT_MODES:
        raise ValueError(
            f"transport must be one of {TRANSPORT_MODES}, got {mode!r}"
        )
    return mode


class UdDeliveryExceeded(RuntimeError):
    """A UD datagram exhausted its retransmission budget.

    The UD analogue of :class:`~repro.net.nic.RnrRetryExceeded`: the verbs
    layer reports it as a failed work completion
    (``CompletionStatus.UD_DELIVERY_EXCEEDED``) instead of letting it
    propagate out of the queue pair.
    """


@dataclass
class UdChannelStats(ChannelStats):
    """Per-UD-channel accounting on top of the base channel counters."""

    #: Datagrams the fabric dropped on this channel (each one armed the
    #: sender's retransmission timer).
    dropped: int = 0
    #: Datagrams delivered twice.
    duplicated: int = 0
    #: Deliveries that genuinely overtook an earlier send — the events the
    #: RC channel's FIFO clamp would have corrected (and counted as
    #: ``reordering_clamps``).
    reordered: int = 0


class UdChannel(Channel):
    """An unordered, unreliable channel from one rank to another."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stats = UdChannelStats()

    def transmit(self, message: Message) -> Tuple[Event, Message]:
        """Send *message* unreliably; returns ``(delivery_event, stamped)``.

        Differences from the RC channel: delivery timing is the ``reorder``
        decision kind (extra delay on the model's draw, owned by
        :meth:`ScheduleController.on_datagram_delay`), and there is **no
        FIFO clamp** — a datagram that would arrive before its predecessor
        simply does, which is what lets sparse clock frames arrive stale.
        """
        now = self._sim.now
        flight = self._latency_model.latency(message, hops=self._hops)
        require_non_negative(flight, "latency")
        controller = self._sim.controller
        if controller is not None and hasattr(controller, "on_datagram_delay"):
            flight += controller.on_datagram_delay(
                message, self.source, self.destination
            )
        start = now
        if self._bandwidth is not None:
            start = max(now, self._next_free)
            transmission = message.total_bytes / self._bandwidth
            self._next_free = start + transmission
            flight += (start - now) + transmission
        deliver_at = now + flight
        if deliver_at < self._last_delivery:
            self.stats.reordered += 1
        else:
            self._last_delivery = deliver_at
        stamped = replace(message, send_time=now, deliver_time=deliver_at)
        self.stats.messages += 1
        self.stats.bytes += stamped.total_bytes
        self.stats.total_latency += deliver_at - now
        event = self._sim.timeout(
            deliver_at - now, value=stamped, name=f"ud-deliver:{stamped.kind.value}"
        )
        return event, stamped

    def drop(
        self, message: Message, retransmit_timeout: float
    ) -> Tuple[Event, Message]:
        """Lose *message*; returns ``(retransmit_timer_event, stamped)``.

        The datagram's bytes left the sender (it is accounted like any
        transmission) but no delivery event exists; the returned event is
        the sender's retransmission timer.
        """
        require_non_negative(retransmit_timeout, "retransmit_timeout")
        now = self._sim.now
        stamped = replace(
            message, send_time=now, deliver_time=now + retransmit_timeout
        )
        self.stats.messages += 1
        self.stats.bytes += stamped.total_bytes
        self.stats.dropped += 1
        event = self._sim.timeout(
            retransmit_timeout,
            value=stamped,
            name=f"ud-drop:{stamped.kind.value}",
        )
        return event, stamped

    def duplicate(self, stamped: Message) -> Event:
        """Schedule a second arrival of an already-transmitted datagram.

        The copy reuses the original's flight time, so it lands one flight
        after the primary delivery — deterministically, with no extra
        latency-model draw, which keeps replays byte-identical.
        """
        self.stats.duplicated += 1
        flight = max(0.0, stamped.deliver_time - stamped.send_time)
        delay = (stamped.deliver_time - self._sim.now) + flight
        return self._sim.timeout(
            max(0.0, delay),
            value=stamped,
            name=f"ud-duplicate:{stamped.kind.value}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<UdChannel P{self.source}->P{self.destination} "
            f"messages={self.stats.messages} dropped={self.stats.dropped}>"
        )


class UdEndpoint:
    """Per-NIC UD datagram state: tx sequences + history, rx view.

    Transmit side (keyed by destination rank): a monotonically increasing
    1-based sequence number per destination, and the **resync history** —
    the exact frozen clock each sequence number carried.  A resync reply
    serves the *historical* clock for the requested sequence, never the
    sender's current one: answering with a newer clock would add
    happens-before edges the receiver never observed and silently mask
    races.

    Receive side (keyed by source rank): ``view_seq``, the sequence the
    receiver's reconstructed wire view corresponds to, plus the set of
    absorbed sequences (for idempotent duplicate handling).  A sparse frame
    is appliable exactly when it is the view's direct successor; a full
    frame is always appliable.
    """

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._next_seq: Dict[int, int] = {}
        self._history: Dict[int, Dict[int, Optional[tuple]]] = {}
        self._view_seq: Dict[int, int] = {}
        self._absorbed: Dict[int, Set[int]] = {}

    # -- transmit side -------------------------------------------------------------

    def assign_seq(self, destination: int, clock_entries: Optional[tuple]) -> int:
        """Sequence the next datagram to *destination*; file its clock."""
        seq = self._next_seq.get(destination, 0) + 1
        self._next_seq[destination] = seq
        self._history.setdefault(destination, {})[seq] = (
            None if clock_entries is None else tuple(clock_entries)
        )
        return seq

    def historical_clock(self, destination: int, seq: int) -> Optional[tuple]:
        """The exact clock datagram *seq* to *destination* carried."""
        return self._history.get(destination, {}).get(seq)

    # -- receive side --------------------------------------------------------------

    def view_seq(self, source: int) -> int:
        """The sequence this receiver's wire view of *source* sits at."""
        return self._view_seq.get(source, 0)

    def absorb(self, source: int, seq: int, frame: Optional[str]) -> str:
        """Admit one arriving datagram's clock frame into the wire view.

        Returns the verdict: ``"exact"`` (absorbed — a full frame, a
        frame-less datagram, or the in-order next sparse frame),
        ``"duplicate"`` (this sequence was already absorbed; idempotent
        no-op), ``"gap"`` (a sparse frame whose predecessor is missing) or
        ``"stale"`` (a sparse frame from before the current view).  The
        caller must run the resync subprotocol for ``"gap"``/``"stale"``
        and then call :meth:`mark_resynced`.
        """
        seen = self._absorbed.setdefault(source, set())
        if seq in seen:
            return "duplicate"
        view = self._view_seq.get(source, 0)
        if frame == "sparse" and seq != view + 1:
            return "stale" if seq <= view else "gap"
        seen.add(seq)
        self._view_seq[source] = max(view, seq)
        return "exact"

    def mark_resynced(self, source: int, seq: int) -> None:
        """Record that a resync round trip recovered sequence *seq*.

        The view only ever advances: recovering a stale sequence (reorder
        across a resync boundary) must not rewind the in-order view later
        sparse frames patch against.
        """
        self._absorbed.setdefault(source, set()).add(seq)
        self._view_seq[source] = max(self._view_seq.get(source, 0), seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sent = sum(self._next_seq.values())
        return f"<UdEndpoint P{self.rank} sent={sent}>"
