"""Network and NIC substrate.

The paper's model targets clusters interconnected by high-speed, low-latency
networks whose NICs offer one-sided operations, RDMA and OS bypass
(InfiniBand, Myrinet; Section I and III-B).  This package simulates that
hardware layer:

* :mod:`repro.net.message` — typed messages with payload sizes;
* :mod:`repro.net.latency` — latency models (constant, uniform, LogGP-like);
* :mod:`repro.net.topology` — physical topologies built on :mod:`networkx`,
  used to scale latency with hop count;
* :mod:`repro.net.channel` — FIFO point-to-point channels;
* :mod:`repro.net.fabric` — the interconnect: routes messages between ranks
  and accounts for every message and byte (the overhead benchmarks read these
  counters);
* :mod:`repro.net.nic` — the RDMA NIC: one-sided ``put`` (one message) and
  ``get`` (two messages), NIC-managed locks on public memory areas, and the
  hooks through which the race detector instruments every remote access.
"""

from repro.net.message import Message, MessageKind
from repro.net.latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    LogGPLatency,
)
from repro.net.topology import Topology
from repro.net.channel import Channel
from repro.net.fabric import Fabric, FabricStats
from repro.net.nic import NIC, NICConfig, RemoteOperationResult

__all__ = [
    "Message",
    "MessageKind",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogGPLatency",
    "Topology",
    "Channel",
    "Fabric",
    "FabricStats",
    "NIC",
    "NICConfig",
    "RemoteOperationResult",
]
