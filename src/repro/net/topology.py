"""Interconnect topologies.

The fabric scales message latency by the number of hops between the source
and destination rank.  Topologies are thin wrappers around undirected
:mod:`networkx` graphs whose nodes are ranks; shortest-path hop counts are
precomputed and cached because the fabric queries them for every message.

Supercomputer-style topologies relevant to the paper's motivation (Section I
mentions many-core nodes, NoC meshes and Top500 machines) are provided:
complete graph (crossbar / single switch), ring, star, 2-D mesh and torus,
and a hypercube.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.util.validation import require_positive, require_rank


class Topology:
    """A physical interconnect over ``world_size`` ranks."""

    def __init__(self, graph: nx.Graph, name: str = "custom") -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("topology graph must have at least one node")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise ValueError(
                "topology nodes must be consecutive ranks 0..n-1, "
                f"got {sorted(graph.nodes)}"
            )
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise ValueError("topology must be connected")
        self._graph = graph
        self._name = name
        self._hops: Dict[Tuple[int, int], int] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def complete(cls, world_size: int) -> "Topology":
        """Every pair of ranks is one hop apart (a single crossbar switch)."""
        require_positive(world_size, "world_size")
        return cls(nx.complete_graph(world_size), name=f"complete({world_size})")

    @classmethod
    def ring(cls, world_size: int) -> "Topology":
        """Ranks arranged in a cycle."""
        require_positive(world_size, "world_size")
        if world_size == 1:
            return cls(nx.complete_graph(1), name="ring(1)")
        if world_size == 2:
            return cls(nx.path_graph(2), name="ring(2)")
        return cls(nx.cycle_graph(world_size), name=f"ring({world_size})")

    @classmethod
    def star(cls, world_size: int, center: int = 0) -> "Topology":
        """All ranks attached to a central rank (e.g. a master node)."""
        require_positive(world_size, "world_size")
        require_rank(center, world_size, "center")
        graph = nx.Graph()
        graph.add_nodes_from(range(world_size))
        for rank in range(world_size):
            if rank != center:
                graph.add_edge(center, rank)
        return cls(graph, name=f"star({world_size}, center={center})")

    @classmethod
    def mesh2d(cls, rows: int, cols: int, torus: bool = False) -> "Topology":
        """A ``rows × cols`` 2-D mesh (or torus) — the NoC layout of Section I."""
        require_positive(rows, "rows")
        require_positive(cols, "cols")
        grid = nx.grid_2d_graph(rows, cols, periodic=torus)
        mapping = {(r, c): r * cols + c for r, c in grid.nodes}
        graph = nx.relabel_nodes(grid, mapping)
        kind = "torus" if torus else "mesh"
        return cls(graph, name=f"{kind}2d({rows}x{cols})")

    @classmethod
    def hypercube(cls, dimension: int) -> "Topology":
        """A ``2^dimension``-node hypercube."""
        require_positive(dimension, "dimension")
        graph = nx.hypercube_graph(dimension)
        mapping = {node: int("".join(map(str, node)), 2) for node in graph.nodes}
        graph = nx.relabel_nodes(graph, mapping)
        return cls(graph, name=f"hypercube({dimension})")

    # -- queries ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable topology name."""
        return self._name

    @property
    def world_size(self) -> int:
        """Number of ranks."""
        return self._graph.number_of_nodes()

    @property
    def graph(self) -> nx.Graph:
        """The underlying graph (a copy, to keep the topology immutable)."""
        return self._graph.copy()

    def hops(self, source: int, destination: int) -> int:
        """Shortest-path hop count between two ranks (0 for self-messages)."""
        require_rank(source, self.world_size, "source")
        require_rank(destination, self.world_size, "destination")
        if source == destination:
            return 0
        key = (source, destination)
        if key not in self._hops:
            length = nx.shortest_path_length(self._graph, source, destination)
            self._hops[key] = int(length)
            self._hops[(destination, source)] = int(length)
        return self._hops[key]

    def diameter(self) -> int:
        """Maximum hop count over all pairs."""
        if self.world_size == 1:
            return 0
        return int(nx.diameter(self._graph))

    def average_hops(self) -> float:
        """Mean hop count over all ordered pairs of distinct ranks."""
        if self.world_size == 1:
            return 0.0
        return float(nx.average_shortest_path_length(self._graph))

    def neighbors(self, rank: int) -> List[int]:
        """Directly connected ranks."""
        require_rank(rank, self.world_size, "rank")
        return sorted(self._graph.neighbors(rank))

    def degree(self, rank: int) -> int:
        """Number of direct links of *rank*."""
        require_rank(rank, self.world_size, "rank")
        return int(self._graph.degree[rank])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Topology {self._name} n={self.world_size}>"
