"""The RDMA network interface controller.

The NIC is where the paper's model and its detection algorithm meet the
hardware: one-sided operations are *initiated* by the origin process and
*serviced* entirely by the target's NIC, without any involvement of the target
process or its operating system (OS bypass, Section III-B).  Consequently all
of the following live in the NIC:

* the public-memory lock table (locks are "provided by the NIC", Section
  III-A) — a ``put`` on a datum is therefore delayed behind a ``get`` holding
  the lock, reproducing Figure 3;
* the message decomposition of Figure 2 — ``put`` sends one data message,
  ``get`` sends a request and receives a reply;
* the instrumentation hooks of Algorithms 1 and 2 — the race detector is
  invoked at the target memory, under the lock, when the operation takes
  effect, and the extra clock traffic of Algorithm 5 is routed through the
  :class:`~repro.net.clock_transport.ClockTransport` layer: explicit
  ``CLOCK_FETCH`` / ``CLOCK_UPDATE`` messages under the ``"roundtrip"``
  transport (so the overhead benchmarks can separate them from application
  traffic), or clocks piggybacked on the data messages themselves under
  ``"piggyback"`` (the optimized implementation of Section V-B).

Posted (verbs) operations hand every public method a *post-time clock
snapshot* (``clock_snapshot``): the NIC then performs the access on the
origin's behalf from the clock the message physically carried, instead of
ticking the origin's live clock at service time — the discipline that keeps
a posted-but-unwaited operation causally unordered with the origin's later
accesses, so the detector can see same-origin async races.

Every public method that performs communication is a *generator* meant to be
driven by the simulation kernel (``result = yield from nic.rdma_put(...)``),
so user programs remain ordinary sequential-looking code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.clocks import VectorClock
from repro.core.detector import AccessCheckResult, DualClockRaceDetector
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess
from repro.memory.locks import LockRequest, MemoryLockTable
from repro.memory.public import PublicMemory
from repro.net.clock_transport import WIRE_TAG_BYTES, ClockTransport
from repro.net.fabric import Fabric
from repro.net.message import MessageKind
from repro.net.ud_transport import UdDeliveryExceeded, UdEndpoint, validate_transport
from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.util.ids import IdAllocator
from repro.util.validation import require_rank, require_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.recorder import TraceRecorder

#: The per-NIC issue/service tallies, each a ``nic.<name>{rank=...}`` counter
#: in the metrics registry (the overhead and scalability experiments read
#: them through the attribute surface below).
NIC_COUNTER_FIELDS = (
    "puts_issued",
    "gets_issued",
    "atomics_issued",
    "sends_issued",
    "local_reads",
    "local_writes",
    "remote_ops_serviced",
    "rnr_retries",
)


def _nic_counter(name: str) -> property:
    """A NIC tally backed by a registry counter.

    Call sites increment in place (``nic.puts_issued += 1``, including
    cross-object ``target_nic.remote_ops_serviced += 1``), so each field is
    a getter/setter pair over the counter's value.
    """

    def getter(self: "NIC") -> int:
        return self._counters[name].value

    def setter(self: "NIC", value: int) -> None:
        self._counters[name].value = value

    return property(getter, setter, doc=f"Registry-backed ``{name}`` tally.")


@dataclass
class NICConfig:
    """Behavioural knobs of the simulated NIC.

    Attributes
    ----------
    lock_remote_accesses:
        Acquire the NIC lock on the target cell around every remote access
        (the paper's model; turning it off is only useful for demonstrating
        what *would* go wrong without the serialization of Figure 3).
    charge_lock_messages:
        Model lock acquisition/release as real messages with latency
        (request + grant + release); when false, locks are acquired with zero
        network cost (as if piggybacked on the data messages).
    charge_detection_messages:
        When detection is enabled under the ``"roundtrip"`` transport, add
        one CLOCK_FETCH/CLOCK_UPDATE round trip per instrumented remote
        access (Algorithm 5's clock traffic).  When false, clocks are
        assumed piggybacked on the data messages for free (the legacy
        accounting shortcut); the ``"piggyback"`` transport below models
        that piggybacking explicitly and ignores this knob.
    clock_transport:
        How causal clocks travel with the data (see
        :mod:`repro.net.clock_transport`): ``"roundtrip"`` charges
        Algorithm 5's explicit clock messages per access, ``"piggyback"``
        rides the clock on every data message and batches origin-side joins
        per queue-pair drain.  The two modes produce byte-identical
        detector verdicts; only the traffic differs.  Under the detector's
        epoch fast path the carried-clock checks these paths run also
        return a ``datum_epoch`` annotation on the post-check datum clock
        (``AccessCheckResult.datum_epoch``), which lets the queue pair's
        drain chain O(1) domination probes across a burst and amortize
        the service-clock join to one per burst instead of one per access.
    clock_wire:
        How a clock is *encoded* when it crosses the wire (see
        :mod:`repro.net.clock_transport`): ``"full"`` ships the whole
        vector (``world_size × 8`` bytes), ``"delta"`` /``"truncated"``
        ship only the components that changed since the channel's last
        clock (as increments or absolute values), with a full resync every
        ``clock_wire_resync`` messages.  All formats decode to the exact
        clock, so verdicts never depend on this knob; only bytes do.
    clock_wire_resync:
        Messages between full-clock resync frames on each directed channel
        under the sparse wire formats, or ``"adaptive"`` to let each
        channel tune its own cadence from the realized sparse/full byte
        ratio (see :data:`~repro.net.clock_transport.ADAPTIVE_RESYNC_START`).
    transport:
        The service level clock-carrying data messages ride on (see
        :mod:`repro.net.ud_transport`): ``"rc"`` (reliable connected — per
        pair FIFO, no loss, the default and the paper's implicit model) or
        ``"ud"`` (unreliable datagrams — each data message becomes a
        sequence-numbered datagram the fabric may drop, duplicate or
        reorder, with receiver-driven clock resync repairing sequence
        gaps).  Verdicts never depend on this knob — only traffic, latency
        and resync costs do.  Lock and roundtrip clock control traffic
        stays RC in either mode, as on real fabrics where connection
        management rides a reliable QP.
    ud_retransmit_timeout:
        Simulated time a UD sender waits for a datagram it cannot see
        delivered before retransmitting (also the receiver's re-request
        deadline for lost resync traffic).
    ud_max_retransmits:
        Retransmissions of one datagram (or resync re-requests of one
        sequence) before the operation fails with
        :class:`~repro.net.ud_transport.UdDeliveryExceeded`.
    cell_bytes:
        Modelled size of one memory cell's value on the wire.
    """

    lock_remote_accesses: bool = True
    charge_lock_messages: bool = True
    charge_detection_messages: bool = True
    clock_transport: str = "roundtrip"
    clock_wire: str = "full"
    clock_wire_resync: Union[int, str] = 64
    transport: str = "rc"
    ud_retransmit_timeout: float = 8.0
    ud_max_retransmits: int = 16
    cell_bytes: int = 8


class ReceiverNotReady(RuntimeError):
    """A SEND arrived at a target whose receive queue holds no posted buffer.

    This is the RNR (receiver-not-ready) condition of the verbs transport.
    The NIC does not see the receive queues themselves — the verbs layer hands
    it a *matching callable* that raises this (or a subclass, such as
    :class:`repro.verbs.receive_queue.RecvQueueEmpty`) when nothing is posted,
    and the NIC responds with the RC retry protocol: back off, retransmit,
    and eventually give up (:class:`RnrRetryExceeded`).
    """


class RnrRetryExceeded(RuntimeError):
    """A SEND exhausted its RNR retry budget without finding a posted receive.

    The verbs analogue is ``IBV_WC_RNR_RETRY_EXC_ERR``; the initiator learns
    through a failed work completion, never through an exception at the post
    site.
    """


class ReceiveLengthError(RuntimeError):
    """A SEND's payload is larger than the matched receive buffer.

    The verbs analogue is ``IBV_WC_LOC_LEN_ERR``: matching *consumes* the
    posted receive, no memory is written, and both sides learn through error
    completions.  ``recv_wr`` is the consumed receive work request.
    """

    def __init__(self, message: str, recv_wr: Any = None) -> None:
        super().__init__(message)
        self.recv_wr = recv_wr


@dataclass
class RemoteOperationResult:
    """What a completed one-sided operation returns to the caller.

    For atomics (``fetch_add`` / ``compare_and_swap``) ``value`` is the value
    the cell held *before* the operation — what the hardware returns to the
    initiator — and ``new_value`` is what the operation deposited.
    """

    operation: str
    origin: int
    target: GlobalAddress
    value: Any
    check: Optional[AccessCheckResult]
    start_time: float
    end_time: float
    data_messages: int
    control_messages: int
    new_value: Any = None

    @property
    def elapsed(self) -> float:
        """Simulated duration of the operation, including lock waits."""
        return self.end_time - self.start_time

    @property
    def raced(self) -> bool:
        """True when the detector flagged this operation."""
        return self.check is not None and self.check.raced


class NIC:
    """One rank's RDMA-capable network interface."""

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        fabric: Fabric,
        memory: PublicMemory,
        locks: MemoryLockTable,
        detector: Optional[DualClockRaceDetector] = None,
        config: Optional[NICConfig] = None,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        require_rank(rank, fabric.world_size, "rank")
        require_type(memory, PublicMemory, "memory")
        if memory.rank != rank:
            raise ValueError(f"NIC rank {rank} given memory owned by rank {memory.rank}")
        if locks.rank != rank:
            raise ValueError(f"NIC rank {rank} given lock table owned by rank {locks.rank}")
        self._sim = sim
        self.rank = rank
        self.fabric = fabric
        self.memory = memory
        self.locks = locks
        self.detector = detector
        self.config = config or NICConfig()
        validate_transport(self.config.transport)
        self.recorder = recorder
        #: Observability bundle shared by everything on this simulator; the
        #: issue/service tallies live in its metrics registry.
        self._obs = Observability.of(sim)
        self._counters = {
            name: self._obs.metrics.counter(f"nic.{name}", rank=rank)
            for name in NIC_COUNTER_FIELDS
        }
        #: The clock-transport policy (roundtrip vs piggyback) shared by every
        #: instrumented path through this NIC.
        self.clock_transport = ClockTransport(self)
        #: UD datagram state: per-destination tx sequences + resync history,
        #: per-source rx view (only consulted when ``config.transport == "ud"``).
        self.ud = UdEndpoint(rank)
        self._peers: Dict[int, "NIC"] = {rank: self}
        self._tags = IdAllocator(f"op-P{rank}")

    # Tallies consumed by the overhead and scalability experiments —
    # registry-backed views (see NIC_COUNTER_FIELDS).
    puts_issued = _nic_counter("puts_issued")
    gets_issued = _nic_counter("gets_issued")
    atomics_issued = _nic_counter("atomics_issued")
    sends_issued = _nic_counter("sends_issued")
    local_reads = _nic_counter("local_reads")
    local_writes = _nic_counter("local_writes")
    remote_ops_serviced = _nic_counter("remote_ops_serviced")
    rnr_retries = _nic_counter("rnr_retries")

    @property
    def engine_track(self) -> str:
        """Span-trace track name of this NIC's DMA engine."""
        return f"nic-P{self.rank}"

    # -- wiring ------------------------------------------------------------------

    def register_peer(self, nic: "NIC") -> None:
        """Make another rank's NIC reachable from this one."""
        self._peers[nic.rank] = nic

    def peer(self, rank: int) -> "NIC":
        """Return the NIC of *rank* (``KeyError`` if not registered)."""
        return self._peers[rank]

    # -- helpers -------------------------------------------------------------------

    def _clock_bytes(self) -> int:
        if self.detector is None:
            return 0
        return self.detector.world_size * DualClockRaceDetector.BYTES_PER_ENTRY

    def _record(
        self,
        kind: AccessKind,
        address: GlobalAddress,
        value: Any,
        symbol: Optional[str],
        operation: str,
        observed: Any = None,
    ) -> None:
        if self.recorder is not None:
            self.recorder.record_access(
                rank=self.rank,
                address=address,
                kind=kind,
                value=value,
                time=self._sim.now,
                symbol=symbol,
                operation=operation,
                observed=observed,
            )

    def _detection_active(self) -> bool:
        return self.detector is not None and self.detector.config.enabled

    # -- lock protocol ----------------------------------------------------------------

    def _acquire_lock(
        self, target_nic: "NIC", address: GlobalAddress, purpose: str, tag: str
    ) -> Generator:
        """Acquire the NIC lock on *address* at *target_nic*; returns the request.

        Remote acquisitions optionally cost a LOCK_REQUEST / LOCK_GRANT round
        trip; the wait for a contended lock happens at the target, which is
        what delays a put behind an in-flight get on the same datum (Fig. 3).
        """
        if not self.config.lock_remote_accesses:
            return None
        remote = target_nic.rank != self.rank
        if remote and self.config.charge_lock_messages:
            event, _ = self.fabric.send(
                MessageKind.LOCK_REQUEST, self.rank, target_nic.rank,
                payload_bytes=0, operation_tag=tag,
            )
            yield event
        request = target_nic.locks.acquire(address, requester=self.rank, purpose=purpose)
        yield request.event
        if remote and self.config.charge_lock_messages:
            event, _ = self.fabric.send(
                MessageKind.LOCK_GRANT, target_nic.rank, self.rank,
                payload_bytes=0, operation_tag=tag,
            )
            yield event
        return request

    def _release_lock(
        self, target_nic: "NIC", request: Optional[LockRequest], tag: str
    ) -> None:
        """Release a previously acquired lock (fire-and-forget for remote locks)."""
        if request is None:
            return
        remote = target_nic.rank != self.rank
        if remote and self.config.charge_lock_messages:
            event, _ = self.fabric.send(
                MessageKind.UNLOCK, self.rank, target_nic.rank,
                payload_bytes=0, operation_tag=tag,
            )
            event.callbacks.append(lambda _ev: target_nic.locks.release(request))
        else:
            target_nic.locks.release(request)

    def _detection_round_trip(self, target_rank: int, tag: str) -> Generator:
        """Charge Algorithm 5's clock traffic via the clock-transport layer.

        Returns ``(messages, update_clock_bytes)``; the second element feeds
        the detector's per-check byte accounting so a compressed wire format
        is reflected there too (``None`` when no round trip was charged).
        """
        outcome = yield from self.clock_transport.round_trip(target_rank, tag)
        return outcome

    def _wire_clock(self, clock_snapshot: Optional[VectorClock]) -> Optional[VectorClock]:
        """The clock a data message leaving this rank would carry.

        The post-time snapshot for posted operations; the origin's live
        clock for blocking ones (which tick at the target under the lock —
        the carried value is the best pre-send approximation and is used
        only for wire accounting, never for detection).  Returns ``None``
        outright unless the piggyback transport will actually stamp it, so
        the default roundtrip hot path allocates nothing.
        """
        if not self._detection_active() or not self.clock_transport.piggyback:
            return None
        if clock_snapshot is not None:
            return clock_snapshot
        return self.detector.current_clock(self.rank)

    def _record_wr_transfer(
        self, target_rank: int, clock_snapshot: Optional[VectorClock]
    ) -> None:
        """Trace the snapshot a posted one-sided operation was serviced with.

        Recorded immediately before the instrumented access (adjacent trace
        ids), so offline replay pairs each ``wr_transfer`` with the access
        that consumed it and re-runs the check with the exact carried clock.
        """
        if clock_snapshot is not None and self.recorder is not None:
            self.recorder.record_transfer(
                self.rank, target_rank, time=self._sim.now,
                kind="wr_transfer", clock=clock_snapshot.frozen(),
            )

    # -- clocked transmission (RC vs UD service levels) ----------------------------------

    def _transmit_clocked(
        self,
        kind: MessageKind,
        destination: int,
        *,
        payload: Any = None,
        base_payload_bytes: int = 0,
        tag: str,
        clock_provider: Callable[[], Any],
        request: bool = False,
    ) -> Generator:
        """Transmit one clock-carrying data message on the configured transport.

        The single choke point every remote data message (PUT_DATA,
        GET_REQUEST/REPLY, ATOMIC_REQUEST/REPLY, SEND_REQUEST) goes
        through.  Under RC this is one reliable FIFO transmission, exactly
        as before the transport knob existed.  Under UD each transmission
        becomes a sequence-numbered datagram whose fate is a logged
        ``drop`` decision: a dropped datagram arms the retransmission timer
        and is re-sent with a *fresh* rider and sequence number (so the
        lost sequence is a permanent gap that exactly one receiver resync
        repairs); a delivered datagram is absorbed into the receiver's wire
        view, with the receiver-driven resync subprotocol
        (:meth:`_ud_resync`) run inline when the frame arrived gapped or
        stale.  *clock_provider* is re-invoked per transmission, mirroring
        the RNR re-ride idiom — under the sparse wire formats a
        retransmission of an unchanged clock costs only an empty sparse
        frame.

        Returns ``(transmissions, carried, clock_wire_bytes)`` for the
        transmission that was finally delivered.
        """
        if self.config.transport != "ud":
            carried, clock_wire_bytes = self.clock_transport.ride(
                clock_provider(), destination, request=request
            )
            event, _ = self.fabric.send(
                kind, self.rank, destination,
                payload=payload,
                payload_bytes=base_payload_bytes + clock_wire_bytes,
                operation_tag=tag,
                carried_clock=carried, clock_wire_bytes=clock_wire_bytes,
            )
            yield event
            return 1, carried, clock_wire_bytes

        target_nic = self.peer(destination)
        stats = self.clock_transport.stats
        attempts = 0
        while True:
            carried, clock_wire_bytes, frame = self.clock_transport.ride_frame(
                clock_provider(), destination, request=request
            )
            seq = self.ud.assign_seq(destination, carried)
            stats.ud_datagrams += 1
            event, _, fate, dup_event = self.fabric.send_datagram(
                kind, self.rank, destination,
                payload=payload,
                payload_bytes=base_payload_bytes + clock_wire_bytes,
                operation_tag=tag,
                carried_clock=carried, clock_wire_bytes=clock_wire_bytes,
                ud_seq=seq, ud_frame=frame,
                retransmit_timeout=self.config.ud_retransmit_timeout,
            )
            attempts += 1
            yield event
            if fate == "drop":
                stats.ud_dropped += 1
                if attempts > self.config.ud_max_retransmits:
                    raise UdDeliveryExceeded(
                        f"{kind.value} P{self.rank}->P{destination}: datagram "
                        f"dropped {attempts} times (retransmission budget "
                        f"{self.config.ud_max_retransmits})"
                    )
                stats.ud_retransmits += 1
                continue
            if dup_event is not None:
                # The copy may land while the resync below is still in
                # flight, so the idempotent absorb must already be armed.
                dup_event.callbacks.append(
                    lambda _ev, s=seq, f=frame: self._absorb_duplicate(
                        target_nic, s, f
                    )
                )
            verdict = target_nic.ud.absorb(self.rank, seq, frame)
            if verdict in ("gap", "stale"):
                if verdict == "stale":
                    target_nic.clock_transport.stats.ud_stale_frames += 1
                yield from target_nic._ud_resync(self, seq, tag)
            return attempts, carried, clock_wire_bytes

    def _absorb_duplicate(
        self, target_nic: "NIC", seq: int, frame: Optional[str]
    ) -> None:
        """Second arrival of a duplicated datagram: an idempotent absorb."""
        target_nic.ud.absorb(self.rank, seq, frame)
        target_nic.clock_transport.stats.ud_duplicates += 1

    def _ud_resync(self, sender_nic: "NIC", seq: int, tag: str) -> Generator:
        """Receiver-driven clock resync: recover the full frame for *seq*.

        Runs on the receiving NIC after a sparse frame arrived gapped (its
        predecessor was dropped or is still in flight) or stale (a reorder
        across an earlier resync boundary): one UD_RESYNC_REQUEST naming
        the sequence, answered by the sender with a tagged full clock frame
        — the *historical* clock that sequence carried, served from the
        sender's tx history, never its current clock (a newer clock would
        add happens-before edges the receiver never observed and silently
        mask races).  Both legs are themselves droppable datagrams; a lost
        request or reply is re-requested after the retransmission deadline,
        within the same budget as data datagrams.  The blocked time renders
        as a ``resync_wait`` span on this NIC's engine track.
        """
        started = self._sim.now
        stats = self.clock_transport.stats
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.config.ud_max_retransmits:
                raise UdDeliveryExceeded(
                    f"resync P{self.rank}<-P{sender_nic.rank} seq={seq}: no "
                    f"full frame after {attempts - 1} requests (budget "
                    f"{self.config.ud_max_retransmits})"
                )
            stats.ud_resync_requests += 1
            event, _, fate, _ = self.fabric.send_datagram(
                MessageKind.UD_RESYNC_REQUEST, self.rank, sender_nic.rank,
                payload=seq, payload_bytes=8, operation_tag=tag,
                retransmit_timeout=self.config.ud_retransmit_timeout,
            )
            yield event
            if fate == "drop":
                # The request was lost: re-request after the deadline.
                continue
            # The request landed; the sender serves the frame from its tx
            # history (a wire tag plus the full vector on the wire).
            entries = sender_nic.ud.historical_clock(self.rank, seq)
            reply_bytes = (
                WIRE_TAG_BYTES + sender_nic._clock_bytes()
                if entries is not None
                else 0
            )
            event, _, fate, _ = self.fabric.send_datagram(
                MessageKind.UD_RESYNC_FULL, sender_nic.rank, self.rank,
                payload=entries, payload_bytes=reply_bytes, operation_tag=tag,
                carried_clock=entries, clock_wire_bytes=reply_bytes,
                retransmit_timeout=sender_nic.config.ud_retransmit_timeout,
            )
            yield event
            if fate != "drop":
                break
            # The reply was lost: the receiver cannot tell a lost request
            # from a lost reply, so it simply re-requests.
        self.ud.mark_resynced(sender_nic.rank, seq)
        stats.ud_resyncs += 1
        self._obs.spans.complete(
            self.engine_track, "resync_wait", started, self._sim.now,
            source=f"P{sender_nic.rank}", seq=seq,
        )

    # -- one-sided operations ------------------------------------------------------------

    def rdma_put(
        self,
        value: Any,
        target: GlobalAddress,
        symbol: Optional[str] = None,
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """One-sided write of *value* into *target* (Algorithm 1).

        Involves exactly one data message (Figure 2) plus, when configured,
        lock and clock control traffic.  *clock_snapshot* is the post-time
        clock of a posted (verbs) put: the write is then checked with the
        carried snapshot instead of the origin's live clock, the landing
        still counts as an owner event, and the origin synchronizes only
        when it retires the completion.  The check result's ``datum_epoch``
        (the owner-tick annotation the epoch fast path re-establishes on
        the datum clock) travels back with the completion, where the queue
        pair uses it to replace — rather than re-join — its running
        service clock across a drain burst.  Returns a
        :class:`RemoteOperationResult`.
        """
        require_type(target, GlobalAddress, "target")
        start = self._sim.now
        tag = self._tags.next_str()
        target_nic = self.peer(target.rank)
        self.puts_issued += 1
        data_messages = 0
        control_messages = 0

        lock_request = yield from self._acquire_lock(target_nic, target, "put", tag)
        round_trips, update_clock_bytes = yield from self._detection_round_trip(
            target.rank, tag
        )
        control_messages += round_trips

        if target.rank != self.rank:
            try:
                sent, _, _ = yield from self._transmit_clocked(
                    MessageKind.PUT_DATA, target.rank,
                    payload=value, base_payload_bytes=self.config.cell_bytes,
                    tag=tag,
                    clock_provider=lambda: self._wire_clock(clock_snapshot),
                )
            except UdDeliveryExceeded:
                # The operation aborts mid-flight: the target cell lock must
                # not stay held (quiescence), and no memory was touched.
                self._release_lock(target_nic, lock_request, tag)
                raise
            data_messages += sent
            target_nic.remote_ops_serviced += 1

        self._record_wr_transfer(target.rank, clock_snapshot)
        check: Optional[AccessCheckResult] = None
        if self._detection_active():
            cell = target_nic.memory.cell(target)
            check = self.detector.on_write(
                self.rank, target, cell, symbol=symbol, time=self._sim.now, operation="put",
                carried_clock=clock_snapshot, owner_event=True,
                wire_clock_bytes=update_clock_bytes,
            )
        target_nic.memory.write(target, value, writer=self.rank)
        self._record(AccessKind.WRITE, target, value, symbol, "put")

        self._release_lock(target_nic, lock_request, tag)
        self._obs.spans.complete(
            self.engine_track, "put", start, self._sim.now,
            target=f"P{target.rank}",
        )
        return RemoteOperationResult(
            operation="put",
            origin=self.rank,
            target=target,
            value=value,
            check=check,
            start_time=start,
            end_time=self._sim.now,
            data_messages=data_messages,
            control_messages=control_messages,
        )

    def rdma_get(
        self,
        target: GlobalAddress,
        symbol: Optional[str] = None,
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """One-sided read of *target* (Algorithm 2).

        Involves two data messages — the request and the reply carrying the
        data (Figure 2).  *clock_snapshot* is the post-time clock of a
        posted (verbs) get; the datum's causal history then flows back to
        the origin at completion retirement rather than at service.
        Returns a :class:`RemoteOperationResult` whose ``value`` is the
        value read.
        """
        require_type(target, GlobalAddress, "target")
        start = self._sim.now
        tag = self._tags.next_str()
        target_nic = self.peer(target.rank)
        self.gets_issued += 1
        data_messages = 0
        control_messages = 0

        lock_request = yield from self._acquire_lock(target_nic, target, "get", tag)
        round_trips, update_clock_bytes = yield from self._detection_round_trip(
            target.rank, tag
        )
        control_messages += round_trips

        if target.rank != self.rank:
            # Under piggybacking the target-side check consumes the origin's
            # clock, so it must physically travel on the request (the reply
            # then carries the datum's history back — two riders per get,
            # mirroring Algorithm 5's fetch + update pair).
            try:
                sent, _, _ = yield from self._transmit_clocked(
                    MessageKind.GET_REQUEST, target.rank,
                    tag=tag,
                    clock_provider=lambda: self._wire_clock(clock_snapshot),
                    request=True,
                )
            except UdDeliveryExceeded:
                self._release_lock(target_nic, lock_request, tag)
                raise
            data_messages += sent
            target_nic.remote_ops_serviced += 1

        self._record_wr_transfer(target.rank, clock_snapshot)
        check: Optional[AccessCheckResult] = None
        if self._detection_active():
            cell = target_nic.memory.cell(target)
            check = self.detector.on_read(
                self.rank, target, cell, symbol=symbol, time=self._sim.now, operation="get",
                carried_clock=clock_snapshot, wire_clock_bytes=update_clock_bytes,
            )
        value = target_nic.memory.read(target)
        self._record(AccessKind.READ, target, value, symbol, "get")

        if target.rank != self.rank:
            # The reply is the target's message: its rider goes through the
            # target's channel codec (and the target's UD sequence space)
            # towards this rank.
            try:
                sent, _, _ = yield from target_nic._transmit_clocked(
                    MessageKind.GET_REPLY, self.rank,
                    payload=value, base_payload_bytes=self.config.cell_bytes,
                    tag=tag,
                    clock_provider=lambda: (
                        check.datum_access_clock if check is not None else None
                    ),
                )
            except UdDeliveryExceeded:
                self._release_lock(target_nic, lock_request, tag)
                raise
            data_messages += sent

        self._release_lock(target_nic, lock_request, tag)
        self._obs.spans.complete(
            self.engine_track, "get", start, self._sim.now,
            target=f"P{target.rank}",
        )
        return RemoteOperationResult(
            operation="get",
            origin=self.rank,
            target=target,
            value=value,
            check=check,
            start_time=start,
            end_time=self._sim.now,
            data_messages=data_messages,
            control_messages=control_messages,
        )

    # -- one-sided atomics ---------------------------------------------------------------

    def fetch_add(
        self,
        target: GlobalAddress,
        amount: Any = 1,
        symbol: Optional[str] = None,
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """One-sided atomic fetch-and-add on *target*.

        Serviced entirely by the target NIC under the cell's lock: read the
        old value, deposit ``old + amount``, send the old value back.  An
        uninitialized cell (``None``) counts as zero.  Returns a
        :class:`RemoteOperationResult` whose ``value`` is the *old* value.
        """

        def apply(old: Any) -> Any:
            return (0 if old is None else old) + amount

        result = yield from self._atomic(
            "fetch_add", target, apply, operand=amount,
            operand_bytes=self.config.cell_bytes, symbol=symbol,
            clock_snapshot=clock_snapshot,
        )
        if result.value is None:
            # The returned old value follows the same uninitialized-is-zero
            # rule; the trace keeps the raw observed value for the
            # consistency checker.
            result.value = 0
        return result

    def compare_and_swap(
        self,
        target: GlobalAddress,
        expected: Any,
        desired: Any,
        symbol: Optional[str] = None,
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """One-sided atomic compare-and-swap on *target*.

        Deposits *desired* iff the cell currently holds *expected*; always
        returns the prior value (the swap succeeded iff ``result.value ==
        expected``).  The operand carries both the compare and the swap value,
        as on InfiniBand (two cells on the wire).
        """

        def apply(old: Any) -> Any:
            return desired if old == expected else old

        result = yield from self._atomic(
            "compare_and_swap", target, apply, operand=(expected, desired),
            operand_bytes=2 * self.config.cell_bytes, symbol=symbol,
            clock_snapshot=clock_snapshot,
        )
        return result

    def _atomic(
        self,
        operation: str,
        target: GlobalAddress,
        apply: Callable[[Any], Any],
        operand: Any,
        operand_bytes: int,
        symbol: Optional[str],
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """Common read-modify-write machinery for the one-sided atomics.

        Message decomposition mirrors a ``get``: one ATOMIC_REQUEST carrying
        the operands, one ATOMIC_REPLY carrying the prior value.  A local
        atomic (the caller owns the cell) crosses no wire but still takes the
        NIC lock and the detector check, as for every public-memory access.
        *clock_snapshot* is the post-time clock of a posted atomic (see
        :meth:`rdma_put`); the reply's causal history then merges at
        completion retirement.
        """
        require_type(target, GlobalAddress, "target")
        start = self._sim.now
        tag = self._tags.next_str()
        target_nic = self.peer(target.rank)
        self.atomics_issued += 1
        remote = target.rank != self.rank
        data_messages = 0
        control_messages = 0

        lock_request = yield from self._acquire_lock(target_nic, target, operation, tag)
        round_trips, update_clock_bytes = yield from self._detection_round_trip(
            target.rank, tag
        )
        control_messages += round_trips

        if remote:
            try:
                sent, _, _ = yield from self._transmit_clocked(
                    MessageKind.ATOMIC_REQUEST, target.rank,
                    payload=operand, base_payload_bytes=operand_bytes,
                    tag=tag,
                    clock_provider=lambda: self._wire_clock(clock_snapshot),
                    request=True,
                )
            except UdDeliveryExceeded:
                self._release_lock(target_nic, lock_request, tag)
                raise
            data_messages += sent
            target_nic.remote_ops_serviced += 1

        self._record_wr_transfer(target.rank, clock_snapshot)
        check: Optional[AccessCheckResult] = None
        if self._detection_active():
            cell = target_nic.memory.cell(target)
            check = self.detector.on_rmw(
                self.rank, target, cell, symbol=symbol, time=self._sim.now,
                operation=operation, carried_clock=clock_snapshot,
                wire_clock_bytes=update_clock_bytes,
            )
        old_value = target_nic.memory.read(target)
        new_value = apply(old_value)
        target_nic.memory.write(target, new_value, writer=self.rank)
        self._record(
            AccessKind.RMW, target, new_value, symbol, operation, observed=old_value
        )

        if remote:
            try:
                sent, _, _ = yield from target_nic._transmit_clocked(
                    MessageKind.ATOMIC_REPLY, self.rank,
                    payload=old_value, base_payload_bytes=self.config.cell_bytes,
                    tag=tag,
                    clock_provider=lambda: (
                        check.datum_access_clock if check is not None else None
                    ),
                )
            except UdDeliveryExceeded:
                self._release_lock(target_nic, lock_request, tag)
                raise
            data_messages += sent

        self._release_lock(target_nic, lock_request, tag)
        self._obs.spans.complete(
            self.engine_track, operation, start, self._sim.now,
            target=f"P{target.rank}",
        )
        return RemoteOperationResult(
            operation=operation,
            origin=self.rank,
            target=target,
            value=old_value,
            check=check,
            start_time=start,
            end_time=self._sim.now,
            data_messages=data_messages,
            control_messages=control_messages,
            new_value=new_value,
        )

    # -- two-sided send (matched against posted receives) --------------------------------

    def _acquire_credit(self, gate: Any, destination: int, tag: str) -> Generator:
        """Claim one receive credit, stalling locally until a post grants one.

        The no-contention path claims without yielding (and without a
        span); a stalled sender parks on the gate and renders the blocked
        time as a ``credit_stall`` span on the engine track — the
        credit-mode counterpart of ``rnr_backoff``, except it costs no
        messages.  A woken sender re-checks the claim: a grant can be
        "stolen" by a sender that never parked, in which case we re-park.
        """
        if gate.try_claim():
            return True
        stall_started = self._sim.now
        while True:
            wake = self._sim.event(name=f"credit-wait:{tag}")
            gate.enqueue_waiter(wake, self.rank)
            yield wake
            if gate.try_claim():
                break
        self._obs.spans.complete(
            self.engine_track, "credit_stall", stall_started, self._sim.now,
            destination=f"P{destination}",
        )
        return True

    def send_payload(
        self,
        destination: int,
        values: Sequence[Any],
        match_receive: Callable[[], Any],
        *,
        symbol: Optional[str] = None,
        clock_snapshot: Any = None,
        rnr_backoff: float = 1.0,
        rnr_retry_limit: Optional[int] = None,
        flow_control: str = "rnr",
        credit_gate: Any = None,
    ) -> Generator:
        """Two-sided SEND of *values* to *destination* (``IBV_WR_SEND``).

        Unlike the one-sided operations, a SEND names no remote address and
        carries no rkey: where the payload lands is decided entirely by the
        *receiver*, which must have posted a receive buffer (scatter list of
        its own addresses).  The NIC's part of the protocol:

        * one SEND_REQUEST message carries the whole gathered payload
          (``len(values) * cell_bytes`` on the wire — the multi-cell payload
          the bandwidth-aware latency models care about);
        * on arrival, *match_receive* is called to consume the head of the
          target's receive queue (FIFO, no tag matching — verbs semantics).
          If it raises :class:`ReceiverNotReady`, the RC RNR protocol runs:
          back off ``rnr_backoff``, retransmit (charged as a fresh message),
          and after ``rnr_retry_limit`` retries give up with
          :class:`RnrRetryExceeded` (``None`` retries forever, like the
          InfiniBand ``rnr_retry=7`` encoding).  Under credit-based flow
          control (``flow_control="credit"`` with a *credit_gate*) the NIC
          instead claims one receive credit *before* the first
          transmission, stalling locally — zero bytes on the wire, a
          ``credit_stall`` span on the engine track — until the receiver's
          next post grants one, so the match never hits the RNR condition
          and every payload is transmitted exactly once;
        * a payload longer than the matched buffer consumes the receive but
          touches no memory — :class:`ReceiveLengthError` (``IBV_WC_LOC_LEN_ERR``);
        * the delivery carries the happens-before of message passing: the
          scatter writes use the merge of *clock_snapshot* (the sender's
          post-time clock, carried by the message) and the matched buffer's
          post-time clock, and one batched clock round trip is charged per
          message (not per cell: the scattered cells share a target, so
          their clocks travel together).  The receiving *process* merges
          that clock only when it retires the completion
          (:meth:`~repro.core.detector.DualClockRaceDetector.on_recv_complete`);
        * each payload cell is scattered into the posted addresses under the
          per-cell NIC lock with the ordinary write instrumentation, so the
          detector sees a buffer reused while a SEND is in flight exactly as
          it sees any conflicting write — in every schedule, because neither
          side's live clock contaminates the carried snapshot.

        Returns ``(result, recv_wr, carried_clock)`` where *recv_wr* is the
        consumed receive work request (an object with ``wr_id`` and
        ``addresses``) and *carried_clock* is the merged clock the matched
        completion must hand to the receiver at retirement.
        """
        start = self._sim.now
        tag = self._tags.next_str()
        target_nic = self.peer(destination)
        self.sends_issued += 1
        remote = destination != self.rank
        data_messages = 0
        control_messages = 0

        claimed = False
        if flow_control == "credit" and credit_gate is not None:
            # Proactive admission control: reserve the receive buffer this
            # SEND will consume before spending any fabric bytes on it.
            claimed = yield from self._acquire_credit(credit_gate, destination, tag)

        retries = 0
        while True:
            if remote:
                # Each transmission (including RNR retransmits) stamps its
                # own rider: under the sparse wire formats a retransmission
                # of an unchanged clock costs only an empty sparse frame.
                sent, _, _ = yield from self._transmit_clocked(
                    MessageKind.SEND_REQUEST, destination,
                    payload=tuple(values),
                    base_payload_bytes=len(values) * self.config.cell_bytes,
                    tag=tag, clock_provider=lambda: clock_snapshot,
                )
                data_messages += sent
            try:
                recv_wr = match_receive()
            except ReceiverNotReady as error:
                if rnr_retry_limit is not None and retries >= rnr_retry_limit:
                    raise RnrRetryExceeded(
                        f"send P{self.rank}->P{destination}: receiver not ready "
                        f"after {retries} retries ({error})"
                    ) from error
                retries += 1
                self.rnr_retries += 1
                self._obs.spans.instant(
                    self.engine_track, "rnr_retry", self._sim.now,
                    destination=f"P{destination}", retry=retries,
                )
                backoff = rnr_backoff
                controller = self._sim.controller
                if controller is not None and hasattr(controller, "on_rnr_backoff"):
                    # The schedule controller owns RNR retry timing: the
                    # systematic searcher can branch on how long a storm of
                    # retransmissions backs off (a logged, replayable
                    # decision), exactly as it owns delivery latencies.
                    backoff = controller.on_rnr_backoff(
                        self.rank, destination, retries, rnr_backoff
                    )
                backoff_started = self._sim.now
                yield self._sim.timeout(backoff, name=f"rnr-backoff:{tag}")
                self._obs.spans.complete(
                    self.engine_track, "rnr_backoff", backoff_started,
                    self._sim.now, destination=f"P{destination}", retry=retries,
                )
                continue
            break
        if claimed:
            # The match consumed the exact buffer the claim reserved; the
            # claim and the buffer leave the pool together.
            credit_gate.settle()
        if remote:
            target_nic.remote_ops_serviced += 1

        if len(values) > len(recv_wr.addresses):
            raise ReceiveLengthError(
                f"send P{self.rank}->P{destination}: payload of {len(values)} "
                f"cells overruns receive buffer of {len(recv_wr.addresses)} "
                f"(recv wr#{recv_wr.wr_id})",
                recv_wr=recv_wr,
            )

        round_trips, update_clock_bytes = yield from self._detection_round_trip(
            destination, tag
        )
        control_messages += round_trips
        # The delivery event is causally after BOTH posts: the SEND's
        # (snapshot carried by the message) and the matched RECV's (snapshot
        # taken when the buffer was posted — the permission point).  Their
        # merge is the clock the scatter writes carry, and the clock the
        # receiving process merges when it later retires the completion
        # (detector.on_recv_complete) — the landing itself synchronizes
        # nobody.
        effective_clock = clock_snapshot
        recv_clock = getattr(recv_wr, "clock_snapshot", None)
        if recv_clock is not None:
            effective_clock = (
                recv_clock.copy()
                if effective_clock is None
                else effective_clock.merged(recv_clock)
            )
        if self.recorder is not None:
            self.recorder.record_transfer(
                self.rank, destination, time=self._sim.now, kind="transfer",
                clock=(
                    effective_clock.frozen()
                    if effective_clock is not None
                    else None
                ),
            )

        check: Optional[AccessCheckResult] = None
        for value, address in zip(values, recv_wr.addresses):
            lock_request = yield from self._acquire_lock(
                target_nic, address, "send", tag
            )
            if self._detection_active():
                cell = target_nic.memory.cell(address)
                cell_check = self.detector.on_write(
                    self.rank, address, cell,
                    symbol=symbol or recv_wr.symbol,
                    time=self._sim.now, operation="send",
                    carried_clock=effective_clock,
                    wire_clock_bytes=update_clock_bytes,
                )
                # The result's single check slot keeps the first flagged
                # scatter access (or the first cell's when none raced), so
                # ``result.raced`` means "any cell of this send raced".
                if check is None or (cell_check.raced and not check.raced):
                    check = cell_check
            target_nic.memory.write(address, value, writer=self.rank)
            self._record(
                AccessKind.WRITE, address, value,
                symbol or recv_wr.symbol, "send",
            )
            self._release_lock(target_nic, lock_request, tag)

        landing = (
            recv_wr.addresses[0]
            if recv_wr.addresses
            else GlobalAddress(destination, 0)
        )
        self._obs.spans.complete(
            self.engine_track, "send", start, self._sim.now,
            target=f"P{destination}", cells=len(values), retries=retries,
        )
        result = RemoteOperationResult(
            operation="send",
            origin=self.rank,
            target=landing,
            value=tuple(values),
            check=check,
            start_time=start,
            end_time=self._sim.now,
            data_messages=data_messages,
            control_messages=control_messages,
        )
        return result, recv_wr, effective_clock

    # -- local public-memory accesses ----------------------------------------------------

    def local_write(
        self,
        address: GlobalAddress,
        value: Any,
        symbol: Optional[str] = None,
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """Write to this rank's own public memory.

        The paper makes "no distinction between accesses to public memory from
        a remote process and from the process that actually maps this address
        space" (Section III-A), so local public accesses go through the same
        lock and the same detection check — just without any network traffic.
        A posted local write carries its post-time *clock_snapshot* exactly
        like a remote one.
        """
        if address.rank != self.rank:
            raise ValueError(
                f"local_write on rank {self.rank} given remote address {address}; use rdma_put"
            )
        self.local_writes += 1
        tag = self._tags.next_str()
        lock_request = yield from self._acquire_lock(self, address, "local_write", tag)
        self._record_wr_transfer(address.rank, clock_snapshot)
        check: Optional[AccessCheckResult] = None
        if self._detection_active():
            check = self.detector.on_write(
                self.rank, address, self.memory.cell(address),
                symbol=symbol, time=self._sim.now, operation="local_write",
                carried_clock=clock_snapshot, owner_event=True,
            )
        self.memory.write(address, value, writer=self.rank)
        self._record(AccessKind.WRITE, address, value, symbol, "local_write")
        self._release_lock(self, lock_request, tag)
        return RemoteOperationResult(
            operation="local_write",
            origin=self.rank,
            target=address,
            value=value,
            check=check,
            start_time=self._sim.now,
            end_time=self._sim.now,
            data_messages=0,
            control_messages=0,
        )

    def local_read(
        self,
        address: GlobalAddress,
        symbol: Optional[str] = None,
        clock_snapshot: Optional[VectorClock] = None,
    ) -> Generator:
        """Read from this rank's own public memory (lock + detection, no messages)."""
        if address.rank != self.rank:
            raise ValueError(
                f"local_read on rank {self.rank} given remote address {address}; use rdma_get"
            )
        self.local_reads += 1
        tag = self._tags.next_str()
        lock_request = yield from self._acquire_lock(self, address, "local_read", tag)
        self._record_wr_transfer(address.rank, clock_snapshot)
        check: Optional[AccessCheckResult] = None
        if self._detection_active():
            check = self.detector.on_read(
                self.rank, address, self.memory.cell(address),
                symbol=symbol, time=self._sim.now, operation="local_read",
                carried_clock=clock_snapshot,
            )
        value = self.memory.read(address)
        self._record(AccessKind.READ, address, value, symbol, "local_read")
        self._release_lock(self, lock_request, tag)
        return RemoteOperationResult(
            operation="local_read",
            origin=self.rank,
            target=address,
            value=value,
            check=check,
            start_time=self._sim.now,
            end_time=self._sim.now,
            data_messages=0,
            control_messages=0,
        )

    # -- notifications (runtime support) ----------------------------------------------------

    def send_notification(self, destination: int, payload: Any = None) -> Generator:
        """Send a runtime-level NOTIFY message (used by barriers and joins).

        Returns the delivered message.  Notifications establish happens-before
        edges; the runtime transfers clocks through the detector when it uses
        them for synchronization.
        """
        event, message = self.fabric.send(
            MessageKind.NOTIFY, self.rank, destination, payload=payload, payload_bytes=8,
        )
        yield event
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NIC P{self.rank} puts={self.puts_issued} gets={self.gets_issued}>"
