"""The replayable decision log.

Every nondeterministic choice point the schedule controller owns — a message
delivery timing, a same-time scheduling tie — produces one :class:`Decision`.
A run's log is therefore a complete recipe for the schedule: replaying the
log through a fresh runtime (same program, same seed) reproduces the run
byte for byte, and *truncating* it replays a prefix with every later choice
point falling back to its uncontrolled default.  That prefix property is
what the racing-schedule minimizer delta-debugs over.

Nine decision kinds exist:

``latency``
    The controller stretched (or left alone) one message's flight time.
    ``choice`` is the extra delay added on top of the latency model's draw;
    ``0.0`` is the default (the model's timing, untouched).
``tie``
    Several events were ready at the same simulated time and the controller
    picked which runs first.  ``choice`` is the index into the eligible
    entries (insertion order); ``0`` is the default (the engine's tie rule).
``rnr``
    A two-sided SEND found the receiver not ready and backed off before
    retransmitting; the controller stretched (or left alone) the RNR retry
    timer.  ``choice`` is the extra delay on top of the configured backoff;
    ``0.0`` is the default.  Owning this timer lets the searchers branch on
    retry-storm interleavings — which retransmission lands before which
    repost — that delivery latencies alone cannot reach.
``credit``
    Under credit-based flow control a stalled sender was granted a credit by
    a receive post; the controller stretched (or left alone) the grant's
    wake-up.  ``choice`` is the extra delay before the sender resumes;
    ``0.0`` is the default (wake at the post).  Grant timing decides which
    of several stalled senders claims a contested buffer first.
``cq_timer``
    A CQ moderation timer was armed (the ``(cq_count, cq_usec)`` protocol);
    the controller stretched (or left alone) its expiry.  ``choice`` is the
    extra delay on top of the configured ``cq_usec``; ``0.0`` is the
    default.  Timer expiry boundaries are exactly where lost-wakeup bugs
    live, so the searchers branch on them.
``resync``
    An adaptive clock-wire channel reached its full-frame resync cadence;
    the controller deferred (or did not defer) the resync.  ``choice`` is
    the number of additional sparse messages before the resync re-arms;
    ``0`` is the default (resync now).  Every frame still decodes to the
    exact clock, so this is pure byte-accounting nondeterminism.
``barrier``
    A barrier opened and the controller picked which waiting rank's release
    fires next (one decision per pick while more than one waiter remains).
    ``choice`` is the index into the remaining waiters (arrival order);
    ``0`` is the default (arrival order fan-out).
``drop``
    Under the UD transport the fabric resolved one datagram's fate.
    ``choice`` is ``0`` (deliver, the default), ``1`` (drop — the sender's
    retransmission timer fires and the datagram is re-sent with a fresh
    sequence number) or ``2`` (deliver *and* deliver a duplicate copy
    later).  Drops are where sequence gaps — and therefore receiver-driven
    clock resyncs — come from.
``reorder``
    Under the UD transport the controller stretched (or left alone) one
    datagram's flight time — the UD twin of ``latency``, except the channel
    applies **no FIFO clamp**, so a stretched datagram genuinely arrives
    after later-sent ones.  ``choice`` is the extra delay; ``0.0`` is the
    default.

A log serializes to plain JSON (the artifact the minimizer emits), and a
sparse log — entries replaced by ``None`` — replays those choice points at
their defaults while keeping every later entry aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

#: The controlled choice-point kinds.
DECISION_KINDS = (
    "latency",
    "tie",
    "rnr",
    "credit",
    "cq_timer",
    "resync",
    "barrier",
    "drop",
    "reorder",
)


@dataclass(frozen=True)
class Decision:
    """One resolved choice point.

    Attributes
    ----------
    kind:
        ``"latency"``, ``"tie"`` or ``"rnr"``.
    key:
        Stable identity of the choice point within its run (e.g.
        ``"latency:0->2#17"``).  Replays assert the key matches, catching a
        log applied to the wrong program or seed.
    choice:
        The controller's decision: extra delivery delay (float, ``latency``)
        or eligible-entry index (int, ``tie``).  ``0`` always means "the
        uncontrolled default".
    alternatives:
        How many alternatives the searcher considers at this point (1 when
        the point is not branchable); systematic search metadata only, and
        deliberately excluded from equality — a replayed log compares equal
        to its source even though the replay strategy does not re-derive
        branching metadata.
    """

    kind: str
    key: str
    choice: Union[int, float]
    alternatives: int = field(default=1, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in DECISION_KINDS:
            raise ValueError(f"unknown decision kind {self.kind!r}")

    @property
    def is_default(self) -> bool:
        """True when this decision matches the uncontrolled behaviour."""
        return not self.choice

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {"kind": self.kind, "key": self.key, "choice": self.choice}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Decision":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            key=str(data["key"]),
            choice=data["choice"],
        )


class DecisionLog:
    """An ordered sequence of decisions; ``None`` entries mean "default".

    The ``None`` convention keeps alignment intact under minimization:
    *replacing* a decision by its default leaves every subsequent choice
    point at the same position, whereas removing it would shift the whole
    tail and replay a different schedule entirely.
    """

    def __init__(self, entries: Optional[List[Optional[Decision]]] = None) -> None:
        self._entries: List[Optional[Decision]] = list(entries or [])

    # -- building -----------------------------------------------------------------

    def append(self, decision: Optional[Decision]) -> None:
        """Record one resolved choice point (or an explicit default)."""
        self._entries.append(decision)

    # -- views --------------------------------------------------------------------

    @property
    def entries(self) -> List[Optional[Decision]]:
        """The raw entries, in choice-point order."""
        return list(self._entries)

    def non_default(self) -> List[Decision]:
        """The decisions that actually perturbed the schedule."""
        return [d for d in self._entries if d is not None and not d.is_default]

    def prefix(self, length: int) -> "DecisionLog":
        """The first *length* entries (later choice points replay as default)."""
        if length < 0:
            raise ValueError(f"prefix length must be non-negative, got {length}")
        return DecisionLog(self._entries[:length])

    def with_default_at(self, index: int) -> "DecisionLog":
        """A copy with entry *index* replaced by the default marker."""
        entries = list(self._entries)
        entries[index] = None
        return DecisionLog(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Optional[Decision]]:
        return iter(list(self._entries))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionLog):
            return NotImplemented
        return self._entries == other._entries

    # -- serialization ---------------------------------------------------------------

    def to_jsonable(self) -> List[Optional[Dict[str, object]]]:
        """A JSON-safe list (the artifact format)."""
        return [d.to_dict() if d is not None else None for d in self._entries]

    @classmethod
    def from_jsonable(cls, data: List[Optional[Dict[str, object]]]) -> "DecisionLog":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            [Decision.from_dict(d) if d is not None else None for d in data]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecisionLog {len(self._entries)} entries, "
            f"{len(self.non_default())} non-default>"
        )
