"""The schedule controller: every nondeterministic choice point, owned.

A :class:`ScheduleController` is installed on a
:class:`~repro.sim.engine.Simulator` before the run starts
(:meth:`~repro.sim.engine.Simulator.install_controller`).  From then on it
sits at the two places where a run's interleaving is decided:

* **message delivery timing** — :meth:`on_message_latency` is called by
  :class:`~repro.net.channel.Channel` for every transmitted message with the
  latency model's draw; the controller may stretch it (delivery reordering
  across channels; per-channel FIFO is preserved by the channel's clamp);
* **same-time scheduling** — :meth:`pick_next` is called by the engine's
  :meth:`~repro.sim.engine.Simulator.step` and chooses which of several
  events ready at the same simulated time runs first (process scheduling);
* **RNR retry timing** — :meth:`on_rnr_backoff` is called by
  :meth:`~repro.net.nic.NIC.send_payload` before every RNR retransmission
  with the configured backoff; the controller may stretch it, which decides
  how a storm of retransmissions interleaves with the receiver's reposts.

The adaptive control plane adds four more owned choice points: **credit
grant timing** (:meth:`on_credit_grant`, credit-based flow control's wake-up
of a stalled sender), **CQ moderation timer expiry** (:meth:`on_cq_timer`,
the ``(cq_count, cq_usec)`` protocol's armed timer), **adaptive clock-wire
resync deferral** (:meth:`on_clock_resync`) and **barrier fan-out order**
(:meth:`on_barrier_release`, the last previously-uncontrolled ordering).

The UD transport adds the final two: **datagram fate**
(:meth:`on_datagram_fate` — deliver, drop, or deliver-plus-duplicate; the
``drop`` decision kind) and **datagram delay** (:meth:`on_datagram_delay` —
extra flight time applied by :class:`~repro.net.ud_transport.UdChannel`
*without* a FIFO clamp; the ``reorder`` decision kind).

Every resolution is appended to a :class:`~repro.explore.decisions.DecisionLog`,
and what the resolution *is* comes from a pluggable
:class:`ScheduleStrategy` — passthrough (baseline schedule), fuzzing
(:class:`~repro.explore.fuzzer.ScheduleFuzzer`), systematic prefix search
(:class:`~repro.explore.systematic.SystematicStrategy`) or replay of a
recorded log (:class:`ReplayStrategy`).  Because the simulation is a pure
function of (seed, decisions), recording and replaying the log reproduces a
schedule exactly — the property the minimizer and the campaign determinism
guarantees rest on.

One safety rule lives here rather than in any strategy: two deliveries on
the same ordered channel are never reordered by the tie hook.  The channel
layer guarantees FIFO per (source, destination) pair and the detectors rely
on it; the controller therefore only offers the strategy the *earliest*
pending delivery of each channel as a candidate.  UD datagrams
(``message.ud_seq is not None``) are exempt — an unreliable channel makes
no ordering promise, so same-time datagram deliveries are freely
reorderable ties.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.explore.decisions import Decision, DecisionLog
from repro.net.message import Message, MessageKind
from repro.sim.events import Timeout


class ReplayDivergence(RuntimeError):
    """A replayed decision log does not match the run it is applied to."""


def is_reorderable(message: Message) -> bool:
    """Whether delaying *message* can change which access wins a conflict.

    Data messages carry the accesses themselves; **lock** messages decide
    the order in which the target NIC serializes conflicting accesses (a
    LOCK_REQUEST that arrives later acquires later — that *is* the
    interleaving choice for most races).  Detection and other control
    traffic rides inside an operation that already holds the cell lock, so
    delaying it only shifts absolute times, never the conflict order.
    """
    return message.kind.is_data or message.kind.is_lock


class ScheduleStrategy:
    """Decides choice points; the base class always picks the default.

    ``choose_latency`` returns ``(extra_delay, alternatives)`` — the delay
    added on top of the latency model's draw, and how many alternatives a
    systematic searcher would consider at this point.  ``choose_tie``
    returns ``(index, alternatives)`` into the eligible ready entries.
    """

    def choose_latency(
        self, key: str, message: Message, model_flight: float
    ) -> Tuple[float, int]:
        """Extra delivery delay for *message* (default: none)."""
        return 0.0, 1

    def choose_tie(self, key: str, eligible: int) -> Tuple[int, int]:
        """Index of the same-time event to run first (default: first)."""
        return 0, eligible

    def choose_rnr(
        self, key: str, attempt: int, base_backoff: float
    ) -> Tuple[float, int]:
        """Extra delay added to one RNR retry backoff (default: none)."""
        return 0.0, 1

    def choose_credit(
        self, key: str, receiver: int, sender: int
    ) -> Tuple[float, int]:
        """Extra delay before a credit grant wakes a stalled sender."""
        return 0.0, 1

    def choose_cq_timer(self, key: str, base_usec: float) -> Tuple[float, int]:
        """Extra delay added to one armed CQ moderation timer."""
        return 0.0, 1

    def choose_resync(
        self, key: str, since_resync: int, period: int
    ) -> Tuple[int, int]:
        """Messages to defer a due adaptive clock-wire resync by."""
        return 0, 1

    def choose_barrier(self, key: str, remaining: int) -> Tuple[int, int]:
        """Index of the barrier waiter released next (default: arrival order)."""
        return 0, remaining

    def choose_datagram_fate(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[int, int]:
        """Fate of one UD datagram: 0 deliver, 1 drop, 2 duplicate."""
        return 0, 1

    def choose_datagram_delay(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[float, int]:
        """Extra unclamped flight time for one UD datagram (default: none)."""
        return 0.0, 1

    def describe(self) -> str:
        """One-line description used in exploration reports."""
        return self.__class__.__name__


class PassthroughStrategy(ScheduleStrategy):
    """The uncontrolled schedule, but with every choice point logged.

    Running a program under a passthrough controller produces the same
    execution as running it bare — plus the decision log that makes the
    schedule replayable and gives the systematic searcher its branch points.
    """

    def describe(self) -> str:
        return "passthrough"


class ReplayStrategy(ScheduleStrategy):
    """Replays a recorded (possibly truncated or sparsified) decision log.

    Choice points are consumed in order.  A ``None`` entry — and every
    choice point past the end of the log — resolves to the default, which is
    exactly what the channel/engine would have done uncontrolled.  In strict
    mode (the default) a kind/key mismatch raises :class:`ReplayDivergence`:
    the log belongs to a different program, seed or code version.
    """

    def __init__(self, log: DecisionLog, strict: bool = True) -> None:
        self._entries = log.entries
        self._position = 0
        self.strict = strict

    @property
    def consumed(self) -> int:
        """Choice points consumed so far."""
        return self._position

    def _next(self, kind: str, key: str) -> Optional[Decision]:
        if self._position >= len(self._entries):
            return None
        entry = self._entries[self._position]
        self._position += 1
        if entry is None:
            return None
        if entry.kind != kind or entry.key != key:
            if self.strict:
                raise ReplayDivergence(
                    f"decision log diverged at position {self._position - 1}: "
                    f"log has {entry.kind}:{entry.key}, run reached {kind}:{key}"
                )
            return None
        return entry

    def choose_latency(
        self, key: str, message: Message, model_flight: float
    ) -> Tuple[float, int]:
        entry = self._next("latency", key)
        return (float(entry.choice), 1) if entry is not None else (0.0, 1)

    def choose_tie(self, key: str, eligible: int) -> Tuple[int, int]:
        entry = self._next("tie", key)
        if entry is None:
            return 0, eligible
        index = int(entry.choice)
        if index >= eligible:
            if self.strict:
                raise ReplayDivergence(
                    f"decision log diverged at {key}: recorded tie index "
                    f"{index} but only {eligible} events are eligible"
                )
            return 0, eligible
        return index, eligible

    def choose_rnr(
        self, key: str, attempt: int, base_backoff: float
    ) -> Tuple[float, int]:
        entry = self._next("rnr", key)
        return (float(entry.choice), 1) if entry is not None else (0.0, 1)

    def choose_credit(
        self, key: str, receiver: int, sender: int
    ) -> Tuple[float, int]:
        entry = self._next("credit", key)
        return (float(entry.choice), 1) if entry is not None else (0.0, 1)

    def choose_cq_timer(self, key: str, base_usec: float) -> Tuple[float, int]:
        entry = self._next("cq_timer", key)
        return (float(entry.choice), 1) if entry is not None else (0.0, 1)

    def choose_resync(
        self, key: str, since_resync: int, period: int
    ) -> Tuple[int, int]:
        entry = self._next("resync", key)
        return (int(entry.choice), 1) if entry is not None else (0, 1)

    def choose_barrier(self, key: str, remaining: int) -> Tuple[int, int]:
        entry = self._next("barrier", key)
        if entry is None:
            return 0, remaining
        index = int(entry.choice)
        if index >= remaining:
            if self.strict:
                raise ReplayDivergence(
                    f"decision log diverged at {key}: recorded barrier index "
                    f"{index} but only {remaining} waiters remain"
                )
            return 0, remaining
        return index, remaining

    def choose_datagram_fate(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[int, int]:
        entry = self._next("drop", key)
        return (int(entry.choice), 1) if entry is not None else (0, 1)

    def choose_datagram_delay(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[float, int]:
        entry = self._next("reorder", key)
        return (float(entry.choice), 1) if entry is not None else (0.0, 1)

    def describe(self) -> str:
        return f"replay({len(self._entries)} decisions)"


class ScheduleController:
    """Owns a run's choice points; records every resolution.

    Parameters
    ----------
    strategy:
        The :class:`ScheduleStrategy` resolving each choice point.
    max_ties:
        Cap on how many same-time calendar entries are offered to the tie
        hook at once (the rest simply run on a later step).  Bounds the
        branching factor without losing any event.
    """

    def __init__(self, strategy: ScheduleStrategy, max_ties: int = 8) -> None:
        if max_ties < 1:
            raise ValueError(f"max_ties must be at least 1, got {max_ties}")
        self.strategy = strategy
        self.max_ties = max_ties
        self.log = DecisionLog()
        self._latency_index = 0
        self._tie_index = 0
        self._rnr_index = 0
        self._credit_index = 0
        self._cq_timer_index = 0
        self._resync_index = 0
        self._barrier_index = 0
        self._drop_index = 0
        self._reorder_index = 0
        self._sim = None

    def bind(self, sim: Any) -> None:
        """Called by :meth:`Simulator.install_controller`."""
        self._sim = sim

    # -- delivery timing (called by Channel.transmit) ---------------------------------

    def on_message_latency(
        self, message: Message, source: int, destination: int, model_flight: float
    ) -> float:
        """Resolve one message's flight time; returns the controlled value."""
        key = f"latency:{source}->{destination}#{self._latency_index}"
        self._latency_index += 1
        extra, alternatives = self.strategy.choose_latency(key, message, model_flight)
        if extra < 0:
            raise ValueError(f"strategy produced a negative delay at {key}: {extra}")
        self.log.append(
            Decision("latency", key, float(extra), alternatives=alternatives)
        )
        return model_flight + extra

    # -- RNR retry timing (called by NIC.send_payload) ----------------------------------

    def on_rnr_backoff(
        self, origin: int, destination: int, attempt: int, base_backoff: float
    ) -> float:
        """Resolve one RNR retry backoff; returns the controlled delay.

        *attempt* is the 1-based retransmission count of the failing SEND.
        The strategy may stretch the configured backoff (never shrink —
        additive delays already reach every retransmission/repost order the
        timing model can express).
        """
        key = f"rnr:{origin}->{destination}#{self._rnr_index}"
        self._rnr_index += 1
        extra, alternatives = self.strategy.choose_rnr(key, attempt, base_backoff)
        if extra < 0:
            raise ValueError(f"strategy produced a negative RNR delay at {key}: {extra}")
        self.log.append(Decision("rnr", key, float(extra), alternatives=alternatives))
        return base_backoff + extra

    # -- credit grant timing (called by CreditGate.on_posted) ---------------------------

    def on_credit_grant(self, receiver: int, sender: int) -> float:
        """Resolve one credit grant's wake-up delay; returns the extra delay.

        Called when a receive post grants a credit to a sender stalled under
        credit-based flow control.  Stretching the grant decides which of
        several stalled senders claims a contested buffer first — the
        credit-mode analogue of stretching an RNR backoff.
        """
        key = f"credit:{receiver}->{sender}#{self._credit_index}"
        self._credit_index += 1
        extra, alternatives = self.strategy.choose_credit(key, receiver, sender)
        if extra < 0:
            raise ValueError(
                f"strategy produced a negative credit delay at {key}: {extra}"
            )
        self.log.append(
            Decision("credit", key, float(extra), alternatives=alternatives)
        )
        return extra

    # -- CQ moderation timer expiry (called by CqModerationTimer.arm) -------------------

    def on_cq_timer(self, rank: int, base_usec: float) -> float:
        """Resolve one armed CQ moderation timer; returns the controlled delay.

        The strategy may stretch the configured ``cq_usec`` (never shrink) —
        timer-expiry boundaries against arriving completions are exactly
        where lost-wakeup bugs live, so they are explorable choice points.
        """
        key = f"cq_timer:P{rank}#{self._cq_timer_index}"
        self._cq_timer_index += 1
        extra, alternatives = self.strategy.choose_cq_timer(key, base_usec)
        if extra < 0:
            raise ValueError(
                f"strategy produced a negative CQ timer delay at {key}: {extra}"
            )
        self.log.append(
            Decision("cq_timer", key, float(extra), alternatives=alternatives)
        )
        return base_usec + extra

    # -- adaptive clock-wire resync (called by ClockWireEncoder) ------------------------

    def on_clock_resync(
        self, source: int, destination: int, since_resync: int, period: int
    ) -> int:
        """Resolve one due adaptive resync; returns the deferral in messages.

        ``0`` resyncs now (the default); ``k`` sends ``k`` more sparse
        frames before the cadence re-arms.  Sparse frames always decode to
        the exact clock, so deferral perturbs only byte accounting — it is
        logged so adaptive runs stay replayable byte for byte.
        """
        key = f"resync:{source}->{destination}#{self._resync_index}"
        self._resync_index += 1
        defer, alternatives = self.strategy.choose_resync(key, since_resync, period)
        if defer < 0:
            raise ValueError(
                f"strategy produced a negative resync deferral at {key}: {defer}"
            )
        self.log.append(
            Decision("resync", key, int(defer), alternatives=alternatives)
        )
        return defer

    # -- barrier fan-out order (called by Barrier._open) --------------------------------

    def on_barrier_release(self, generation: int, remaining: int) -> int:
        """Pick which of *remaining* barrier waiters is released next.

        Called once per pick while more than one waiter remains, so a full
        fan-out of *n* ranks produces ``n - 1`` decisions.  Index ``0`` (the
        default) releases in arrival order — the uncontrolled behaviour.
        """
        key = f"barrier:g{generation}#{self._barrier_index}"
        self._barrier_index += 1
        index, alternatives = self.strategy.choose_barrier(key, remaining)
        if not (0 <= index < remaining):
            raise ValueError(
                f"strategy picked barrier index {index} of {remaining} at {key}"
            )
        self.log.append(
            Decision("barrier", key, int(index), alternatives=alternatives)
        )
        return index

    # -- UD datagram fate (called by Fabric.send_datagram) ------------------------------

    def on_datagram_fate(
        self, message: Message, source: int, destination: int
    ) -> int:
        """Resolve one UD datagram's fate: 0 deliver, 1 drop, 2 duplicate.

        A drop arms the sender's retransmission timer (the datagram is
        re-sent with a fresh sequence number and a freshly encoded clock
        frame — the RNR re-ride idiom); a duplicate schedules a second,
        later arrival of the same stamped datagram, which the receiver must
        absorb idempotently.
        """
        key = f"drop:{source}->{destination}#{self._drop_index}"
        self._drop_index += 1
        fate, alternatives = self.strategy.choose_datagram_fate(
            key, message, source, destination
        )
        if fate not in (0, 1, 2):
            raise ValueError(f"strategy picked datagram fate {fate} at {key}")
        self.log.append(Decision("drop", key, int(fate), alternatives=alternatives))
        return fate

    # -- UD datagram delay (called by UdChannel.transmit) -------------------------------

    def on_datagram_delay(
        self, message: Message, source: int, destination: int
    ) -> float:
        """Resolve one UD datagram's extra flight time (no FIFO clamp).

        Unlike ``on_message_latency``, the UD channel applies the result
        without clamping to the channel's previous delivery time — a
        stretched datagram genuinely overtakes nothing and is overtaken by
        everything, which is how sparse clock frames arrive stale and
        exercise the resync path.
        """
        key = f"reorder:{source}->{destination}#{self._reorder_index}"
        self._reorder_index += 1
        extra, alternatives = self.strategy.choose_datagram_delay(
            key, message, source, destination
        )
        if extra < 0:
            raise ValueError(
                f"strategy produced a negative datagram delay at {key}: {extra}"
            )
        self.log.append(
            Decision("reorder", key, float(extra), alternatives=alternatives)
        )
        return extra

    # -- same-time scheduling (called by Simulator.step) --------------------------------

    @staticmethod
    def _delivery_channel(event: Any) -> Optional[Tuple[int, int]]:
        """The (source, destination) pair of a delivery timeout, else ``None``.

        UD datagrams report no channel: the unreliable service level makes
        no FIFO promise, so their same-time deliveries stay eligible ties.
        """
        if isinstance(event, Timeout) and isinstance(event._value, Message):
            message = event._value
            if message.ud_seq is not None or message.kind in (
                MessageKind.UD_RESYNC_REQUEST,
                MessageKind.UD_RESYNC_FULL,
            ):
                return None
            return (message.source, message.destination)
        return None

    def pick_next(self, queue: List[Tuple[float, int, Any]]):
        """Pop and return the calendar entry to process next.

        Gathers the ready set (entries tied at the earliest time, up to
        ``max_ties``), restricts it to *eligible* entries — everything
        except later-posted deliveries on a channel that already has an
        earlier delivery in the set, so per-channel FIFO survives any
        choice — and lets the strategy pick among those.
        """
        top_time = queue[0][0]
        ready: List[Tuple[float, int, Any]] = []
        while queue and queue[0][0] == top_time and len(ready) < self.max_ties:
            ready.append(heapq.heappop(queue))
        if len(ready) == 1:
            return ready[0]

        seen_channels = set()
        eligible_positions: List[int] = []
        for position, (_, _, event) in enumerate(ready):
            channel = self._delivery_channel(event)
            if channel is not None:
                if channel in seen_channels:
                    continue  # a later delivery on an already-represented channel
                seen_channels.add(channel)
            eligible_positions.append(position)

        if len(eligible_positions) > 1:
            key = f"tie#{self._tie_index}"
            self._tie_index += 1
            index, _ = self.strategy.choose_tie(key, len(eligible_positions))
            if not (0 <= index < len(eligible_positions)):
                raise ValueError(
                    f"strategy picked tie index {index} of "
                    f"{len(eligible_positions)} at {key}"
                )
            self.log.append(
                Decision("tie", key, int(index), alternatives=len(eligible_positions))
            )
            chosen_position = eligible_positions[index]
        else:
            chosen_position = eligible_positions[0]

        chosen = ready[chosen_position]
        for position, entry in enumerate(ready):
            if position != chosen_position:
                heapq.heappush(queue, entry)
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScheduleController {self.strategy.describe()} "
            f"decisions={len(self.log)}>"
        )
