"""Bounded systematic schedule search (DPOR-lite).

Where the fuzzer samples the schedule space, the systematic searcher
*enumerates* a bounded slice of it: the delivery-order branchings around the
accesses that can actually conflict.  The moving parts:

* :class:`SystematicStrategy` — a controller strategy that treats the first
  ``max_branch_points`` *reorderable* delivery choice points of a run (data
  messages and lock requests — see
  :func:`~repro.explore.controller.is_reorderable`) as branchable, each with
  ``branch_factor`` delay slots, slot *k* delaying delivery by
  ``k * quantum``, and forces a given partial assignment of slots.  Everything else runs at the default, so a node of the search tree
  is just ``{choice-point key: slot}``;
* :func:`schedule_fingerprint` — the Mazurkiewicz-style equivalence class
  of a completed run: the per-cell order of conflicting accesses.  Two
  schedules with the same fingerprint order every racing pair identically,
  so running both teaches the detectors nothing new;
* the :class:`~repro.explore.runner.Explorer` drives the search: it expands
  children only for *novel* fingerprints — the sleep-set-style dedup that
  keeps equivalent subtrees from being re-explored — breadth-first, so the
  schedules nearest the baseline are tried first and a small budget already
  covers every single-perturbation delivery reordering.

Why delay slots rather than an explicit delivery permutation: the engine is
a timed discrete-event simulator, so "deliver B before A" *is* "stretch A's
flight past B's".  Slot enumeration reaches every cross-channel arrival
order the timing model can express while keeping each branch point's
alternatives finite and replayable.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.explore.controller import ScheduleStrategy, is_reorderable
from repro.memory.consistency import MemoryAccess
from repro.net.message import Message


def schedule_fingerprint(accesses: Sequence[MemoryAccess]) -> str:
    """The schedule's conflict-order equivalence class, as a stable digest.

    For every cell touched by at least one *conflicting pair* (two accesses
    from different ranks, not both reads — the paper's potential races,
    Section III-C), take the cell's access sequence in observation order
    projected to ``(rank, kind)``.  Cells with no possible conflict are
    dropped: reordering commuting accesses does not change any detector's
    verdict, so schedules differing only there are equivalent.
    """
    by_address: Dict[object, List[MemoryAccess]] = {}
    for access in sorted(accesses, key=lambda a: (a.time, a.access_id)):
        by_address.setdefault(access.address, []).append(access)
    parts: List[str] = []
    for address in sorted(by_address, key=repr):
        cell_accesses = by_address[address]
        has_conflict = any(
            a.conflicts_with(b)
            for i, a in enumerate(cell_accesses)
            for b in cell_accesses[i + 1 :]
        )
        if not has_conflict:
            continue
        order = ",".join(f"{a.rank}:{a.kind.value}" for a in cell_accesses)
        parts.append(f"{address!r}:{order}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


class SystematicStrategy(ScheduleStrategy):
    """Forces a partial slot assignment; records the branch points it meets.

    Parameters
    ----------
    forced:
        Mapping from latency choice-point key to delay slot (``1`` to
        ``branch_factor - 1``); every other choice point runs at default.
    branch_factor:
        Delay slots per branch point, slot 0 being the default timing.
    quantum:
        Delay per slot, on the order of the fabric's one-hop latency.
    max_branch_points:
        How many reorderable deliveries of one run are branchable; bounds
        the search tree's width (the "around conflicting accesses" budget —
        data messages carry the accesses, lock requests decide the order in
        which the target serializes conflicting ones).
    """

    def __init__(
        self,
        forced: Dict[str, int],
        branch_factor: int = 3,
        quantum: float = 1.0,
        max_branch_points: int = 8,
    ) -> None:
        if branch_factor < 2:
            raise ValueError(f"branch_factor must be at least 2, got {branch_factor}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if max_branch_points < 1:
            raise ValueError(
                f"max_branch_points must be at least 1, got {max_branch_points}"
            )
        for key, slot in forced.items():
            if not (1 <= slot < branch_factor):
                raise ValueError(
                    f"forced slot for {key} must be in [1, {branch_factor - 1}], "
                    f"got {slot}"
                )
        self.forced = dict(forced)
        self.branch_factor = branch_factor
        self.quantum = quantum
        self.max_branch_points = max_branch_points
        #: Branchable choice-point keys met during the run, in order.
        self.branch_points: List[str] = []

    def choose_latency(
        self, key: str, message: Message, model_flight: float
    ) -> Tuple[float, int]:
        if not is_reorderable(message):
            return 0.0, 1
        return self._branch(key)

    def choose_rnr(
        self, key: str, attempt: int, base_backoff: float
    ) -> Tuple[float, int]:
        # RNR backoffs are branch points exactly like reorderable
        # deliveries: slot k stretches the retry timer by k quanta, which
        # enumerates how a retransmission storm interleaves with the
        # receiver's reposts.
        return self._branch(key)

    def choose_credit(
        self, key: str, receiver: int, sender: int
    ) -> Tuple[float, int]:
        # Credit grants branch like RNR backoffs: slot k delays the grant's
        # wake-up by k quanta, enumerating which stalled sender claims a
        # contested receive buffer first.
        return self._branch(key)

    def choose_cq_timer(self, key: str, base_usec: float) -> Tuple[float, int]:
        # Moderation timers branch on their expiry boundary: slot k
        # stretches the timer by k quanta, racing the flush against
        # arriving completions.
        return self._branch(key)

    def choose_resync(
        self, key: str, since_resync: int, period: int
    ) -> Tuple[int, int]:
        # Resync deferrals are integer-valued: slot k defers the due
        # full-frame resync by k more sparse messages.
        return self._branch_slot(key)

    def choose_barrier(self, key: str, remaining: int) -> Tuple[int, int]:
        # Barrier fan-out branches on which waiter is released next; the
        # slot is the waiter index, clamped to the remaining set.
        return self._branch_slot(key, limit=remaining)

    def choose_datagram_fate(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[int, int]:
        # Datagram fate branches over {deliver, drop, duplicate}: slot 1
        # drops (sequence gap → receiver-driven resync), slot 2 duplicates.
        return self._branch_slot(key, limit=3)

    def choose_datagram_delay(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[float, int]:
        # Datagram delays branch like reorderable deliveries, but the UD
        # channel applies the slot's delay without a FIFO clamp.
        return self._branch(key)

    def _branch(self, key: str) -> Tuple[float, int]:
        slot, alternatives = self._branch_slot(key)
        return slot * self.quantum, alternatives

    def _branch_slot(self, key: str, limit: int = None) -> Tuple[int, int]:
        branchable = len(self.branch_points) < self.max_branch_points
        if branchable:
            self.branch_points.append(key)
        slot = self.forced.get(key, 0)
        alternatives = self.branch_factor if branchable else 1
        if limit is not None:
            slot = min(slot, limit - 1)
            alternatives = min(alternatives, limit)
        return slot, alternatives

    def describe(self) -> str:
        return (
            f"systematic({len(self.forced)} forced, "
            f"bf={self.branch_factor}, depth={self.max_branch_points})"
        )
