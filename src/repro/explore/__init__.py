"""Schedule-space exploration: search over interleavings, not just one run.

The paper's central claim is that vector/matrix-clock detection flags a race
in *every* legal schedule, not just the one that happened to execute.  This
package turns the single-interleaving harness into a schedule-*space*
harness:

* :mod:`repro.explore.decisions` — the replayable decision log every
  nondeterministic choice point is recorded into;
* :mod:`repro.explore.controller` — the schedule controller hooked into the
  simulation engine and the network layer, plus the strategy interface
  (passthrough, replay);
* :mod:`repro.explore.fuzzer` — seed-controlled schedule fuzzing with
  configurable delivery-reorder aggressiveness;
* :mod:`repro.explore.systematic` — a bounded systematic searcher that
  enumerates delivery-order branchings around conflicting accesses
  (DPOR-lite) with sleep-set-style fingerprint dedup;
* :mod:`repro.explore.runner` — one-schedule execution, per-schedule
  detector verdicts, and the :class:`~repro.explore.runner.Explorer` driving
  either strategy under a schedule budget;
* :mod:`repro.explore.minimize` — delta-debugging of a racing decision log
  to the shortest prefix still producing the race, with a replayable
  trace-layer artifact;
* :mod:`repro.explore.campaign` — sharded exploration campaigns across
  worker processes, aggregating cross-schedule precision/recall per detector
  into JSON/markdown reports.
"""

from repro.explore.controller import (
    PassthroughStrategy,
    ReplayDivergence,
    ReplayStrategy,
    ScheduleController,
    ScheduleStrategy,
)
from repro.explore.decisions import Decision, DecisionLog
from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.minimize import (
    MinimizedSchedule,
    minimize_racing_schedule,
    replay_artifact,
)
from repro.explore.runner import (
    ExplorationResult,
    Explorer,
    ScheduleOutcome,
    run_schedule,
)
from repro.explore.systematic import SystematicStrategy, schedule_fingerprint
from repro.explore.campaign import CampaignConfig, CampaignReport, run_campaign

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "Decision",
    "DecisionLog",
    "ExplorationResult",
    "Explorer",
    "MinimizedSchedule",
    "PassthroughStrategy",
    "ReplayDivergence",
    "ReplayStrategy",
    "ScheduleController",
    "ScheduleFuzzer",
    "ScheduleOutcome",
    "ScheduleStrategy",
    "SystematicStrategy",
    "minimize_racing_schedule",
    "replay_artifact",
    "run_campaign",
    "run_schedule",
    "schedule_fingerprint",
]
