"""Sharded exploration campaigns with aggregated accuracy reports.

A *campaign* explores the schedule space of every pattern in a labelled
corpus, scores each detector's per-schedule verdicts against the corpus
labels, and aggregates the result into one JSON/markdown report.  Patterns
are independent, so the campaign shards at pattern granularity across worker
processes (:mod:`multiprocessing`); workers resolve their pattern by
``(corpus name, pattern name)`` — corpus builders hold closures that do not
pickle — and ship back plain-dict payloads, so the aggregate is identical
whether the campaign ran inline (``workers=0``) or sharded.

Determinism contract (asserted by the tests): a campaign re-run with the
same seed, budget and knobs reproduces byte-identical reports, schedules
included, regardless of worker count.

Run a campaign from the command line::

    python -m repro.explore.campaign --corpus default \\
        --patterns fig5a-concurrent-puts fig5c-arrival-race \\
        --strategy systematic --budget 6

``--expect-consistent`` makes the process exit non-zero unless the
matrix-clock detector flagged every labelled racy symbol in **100%** of the
explored schedules — the paper's every-schedule guarantee, enforced in CI.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import DetectorScore, score_against_labels
from repro.explore.runner import MATRIX_CLOCK, Explorer
from repro.net.clock_transport import (
    CLOCK_TRANSPORT_MODES,
    CLOCK_WIRE_FORMATS,
    validate_clock_transport,
    validate_clock_wire,
    validate_clock_wire_resync,
)
from repro.net.flow_control import FLOW_CONTROL_MODES
from repro.net.ud_transport import TRANSPORT_MODES, validate_transport
from repro.verbs.completion_queue import validate_cq_moderation_timer


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign run depends on (picklable, hashable).

    ``treat_rmw_pairs_as_ordered`` — when not ``None``, override the online
    detector's RMW-pair knob on every built runtime (the atomic-aware
    accuracy sweep runs one campaign per setting).

    ``clock_transport`` — when not ``None``, select how clocks travel with
    verbs traffic on every built runtime (``"roundtrip"`` or
    ``"piggyback"``); the clock-transport acceptance runs one campaign per
    mode and asserts byte-identical verdicts with strictly fewer messages
    under piggybacking.

    ``clock_wire`` — when not ``None``, select how clocks are encoded on
    the wire (``"full"``, ``"delta"`` or ``"truncated"``); every format
    decodes to the exact clock, so ``--expect-consistent`` must hold for
    every combination (the CI knob-matrix gate).

    ``cq_moderation`` — when not ``None``, force completion coalescing on
    (``True``) or off (``False``) on every built runtime; coalescing only
    changes completion-event accounting and CQ visibility timing, never a
    verdict.

    ``detector_epochs`` — when not ``None``, force the detector's epoch
    fast path ``"on"`` or ``"off"`` on every built runtime; the fast path
    is an exact shortcut, so ``--expect-consistent`` must hold for every
    combination (the CI knob-matrix gate runs the full transports × wires
    × moderation × flow-control × epoch-mode cross product).

    ``flow_control`` — when not ``None``, select the two-sided admission
    protocol on every built runtime (``"rnr"`` or ``"credit"``); both
    protocols admit sends in the same FIFO order, so
    ``--expect-consistent`` must hold for every combination.

    ``cq_moderation_timer`` — when not ``None``, install
    ``(cq_count, cq_usec)`` timer moderation on every built runtime (the
    string ``"COUNT,USEC"``, e.g. ``"4,2.0"``, or ``"off"`` to force the
    timer off); pure delivery-timing policy, never a verdict.

    ``clock_wire_resync`` — when not ``None``, set the sparse-wire resync
    cadence on every built runtime (a decimal message count or
    ``"adaptive"``); every frame decodes to the exact clock, so verdicts
    never depend on the cadence.

    ``transport`` — when not ``None``, select the data-message service
    level on every built runtime (``"rc"`` or ``"ud"``); the detector
    always stamps the in-process carried clock and a gapped/stale UD frame
    forces a receiver resync before the verdict, so
    ``--expect-consistent`` must hold for every combination — including
    ``"ud"`` with nonzero ``drop_probability``/``duplicate_probability``,
    where the fuzzer drops, duplicates and reorders the clock-carrying
    datagrams themselves.
    """

    strategy: str = "fuzz"
    budget: int = 6
    seed: int = 0
    workers: int = 0
    # fuzz knobs
    reorder_probability: float = 0.35
    reorder_aggressiveness: float = 2.0
    quantum: float = 1.0
    tie_shuffle_probability: float = 0.15
    # UD datagram-fate fuzz knobs (only bite under transport="ud")
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    # systematic knobs
    branch_factor: int = 2
    max_branch_points: int = 8
    # detector knob sweeps
    treat_rmw_pairs_as_ordered: Optional[bool] = None
    # clock-transport sweep
    clock_transport: Optional[str] = None
    # clock wire-format sweep
    clock_wire: Optional[str] = None
    # completion-coalescing sweep
    cq_moderation: Optional[bool] = None
    # detector epoch-fast-path sweep
    detector_epochs: Optional[str] = None
    # two-sided admission-protocol sweep ("rnr" / "credit")
    flow_control: Optional[str] = None
    # (cq_count, cq_usec) timer-moderation sweep ("COUNT,USEC" / "off")
    cq_moderation_timer: Optional[str] = None
    # sparse-wire resync-cadence sweep (decimal count / "adaptive")
    clock_wire_resync: Optional[str] = None
    # data-message service-level sweep ("rc" / "ud")
    transport: Optional[str] = None
    #: Record each schedule's critical-path summary (span tracing on for
    #: every explored run; pure post-processing, verdict-identical) and rank
    #: schedules by path composition in the markdown report.
    critical_path: bool = False

    def __post_init__(self) -> None:
        if self.strategy not in ("fuzz", "systematic"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.budget < 1:
            raise ValueError(f"budget must be at least 1, got {self.budget}")
        if self.workers < 0:
            raise ValueError(f"workers must be non-negative, got {self.workers}")
        if self.clock_transport is not None:
            validate_clock_transport(self.clock_transport)
        if self.clock_wire is not None:
            validate_clock_wire(self.clock_wire)
        if self.detector_epochs is not None and self.detector_epochs not in (
            "on",
            "off",
        ):
            raise ValueError(
                f"detector_epochs must be 'on' or 'off', got {self.detector_epochs!r}"
            )
        if self.flow_control is not None and self.flow_control not in (
            FLOW_CONTROL_MODES
        ):
            raise ValueError(
                f"flow_control must be one of {FLOW_CONTROL_MODES}, "
                f"got {self.flow_control!r}"
            )
        parse_cq_moderation_timer(self.cq_moderation_timer)
        parse_clock_wire_resync(self.clock_wire_resync)
        if self.transport is not None:
            validate_transport(self.transport)
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drop_probability + self.duplicate_probability > 1.0:
            raise ValueError(
                "drop_probability + duplicate_probability must not exceed 1"
            )


def parse_cq_moderation_timer(text: Optional[str]):
    """Parse the CLI's ``"COUNT,USEC"`` form into a validated pair.

    ``None`` means "leave the pattern's own configuration alone" and
    ``"off"`` forces the timer off — both map through unchanged for
    :meth:`~repro.runtime.runtime.DSMRuntime.set_cq_moderation_timer`'s
    ``None`` convention to handle.  The campaign config keeps the string
    (picklable, hashable) and parses at configure time.
    """
    if text is None:
        return None
    if text == "off":
        return "off"
    parts = text.split(",")
    if len(parts) != 2:
        raise ValueError(
            f"cq_moderation_timer must be 'COUNT,USEC' or 'off', got {text!r}"
        )
    try:
        pair = (int(parts[0]), float(parts[1]))
    except ValueError:
        raise ValueError(
            f"cq_moderation_timer must be 'COUNT,USEC' or 'off', got {text!r}"
        ) from None
    return validate_cq_moderation_timer(pair)


def parse_clock_wire_resync(text: Optional[str]):
    """Parse the CLI's resync cadence: a decimal count or ``"adaptive"``."""
    if text is None:
        return None
    if text == "adaptive":
        return text
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"clock_wire_resync must be a decimal count or 'adaptive', "
            f"got {text!r}"
        ) from None
    return validate_clock_wire_resync(value)


def _resolve_corpus(corpus: str):
    """Look up a corpus builder by name (late import: corpora are heavy)."""
    from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

    corpora = {"default": pattern_corpus, "rmw": rmw_pattern_corpus}
    if corpus not in corpora:
        raise ValueError(f"unknown corpus {corpus!r} (have {sorted(corpora)})")
    return corpora[corpus]()


def _resolve_pattern(corpus: str, name: str):
    for pattern in _resolve_corpus(corpus):
        if pattern.name == name:
            return pattern
    raise ValueError(f"corpus {corpus!r} has no pattern named {name!r}")


def _knob_configure(
    treat_rmw_pairs_as_ordered: Optional[bool],
    clock_transport: Optional[str] = None,
    clock_wire: Optional[str] = None,
    cq_moderation: Optional[bool] = None,
    detector_epochs: Optional[str] = None,
    flow_control: Optional[str] = None,
    cq_moderation_timer: Optional[str] = None,
    clock_wire_resync: Optional[str] = None,
    transport: Optional[str] = None,
):
    if (
        treat_rmw_pairs_as_ordered is None
        and clock_transport is None
        and clock_wire is None
        and cq_moderation is None
        and detector_epochs is None
        and flow_control is None
        and cq_moderation_timer is None
        and clock_wire_resync is None
        and transport is None
    ):
        return None

    def configure(runtime) -> None:
        if treat_rmw_pairs_as_ordered is not None:
            runtime.detector.config.treat_rmw_pairs_as_ordered = bool(
                treat_rmw_pairs_as_ordered
            )
        if clock_transport is not None:
            runtime.set_clock_transport(clock_transport)
        if clock_wire is not None:
            runtime.set_clock_wire(clock_wire)
        if cq_moderation is not None:
            runtime.set_cq_moderation(cq_moderation)
        if detector_epochs is not None:
            runtime.set_detector_epochs(detector_epochs)
        if flow_control is not None:
            runtime.set_flow_control(flow_control)
        if cq_moderation_timer is not None:
            parsed = parse_cq_moderation_timer(cq_moderation_timer)
            runtime.set_cq_moderation_timer(None if parsed == "off" else parsed)
        if clock_wire_resync is not None:
            runtime.set_clock_wire_resync(
                parse_clock_wire_resync(clock_wire_resync)
            )
        if transport is not None:
            runtime.set_transport(transport)

    return configure


def _explore_pattern_task(task: Dict[str, object]) -> Dict[str, object]:
    """One shard: explore one pattern's schedule space (runs in a worker)."""
    config = CampaignConfig(**task["config"])  # type: ignore[arg-type]
    pattern = _resolve_pattern(str(task["corpus"]), str(task["pattern"]))
    explorer = Explorer(
        pattern.build,
        seed=config.seed,
        configure=_knob_configure(
            config.treat_rmw_pairs_as_ordered,
            config.clock_transport,
            config.clock_wire,
            config.cq_moderation,
            config.detector_epochs,
            config.flow_control,
            config.cq_moderation_timer,
            config.clock_wire_resync,
            config.transport,
        ),
        critical_path=config.critical_path,
    )
    if config.strategy == "systematic":
        result = explorer.explore_systematic(
            config.budget,
            branch_factor=config.branch_factor,
            quantum=config.quantum,
            max_branch_points=config.max_branch_points,
        )
    else:
        result = explorer.explore_fuzzed(
            config.budget,
            reorder_probability=config.reorder_probability,
            reorder_aggressiveness=config.reorder_aggressiveness,
            quantum=config.quantum,
            tie_shuffle_probability=config.tie_shuffle_probability,
            drop_probability=config.drop_probability,
            duplicate_probability=config.duplicate_probability,
        )
    payload = result.as_dict()
    payload["pattern"] = pattern.name
    payload["labelled_racy"] = pattern.racy
    payload["labelled_racy_symbols"] = sorted(pattern.racy_symbols)
    return payload


@dataclass
class CampaignReport:
    """The aggregated outcome of one campaign."""

    config: CampaignConfig
    corpus: str
    per_pattern: List[Dict[str, object]] = field(default_factory=list)

    # -- accuracy ------------------------------------------------------------------

    def detector_names(self) -> List[str]:
        names = set()
        for payload in self.per_pattern:
            names.update(payload["flagged_in_any"])
        return sorted(names, key=lambda n: (n != MATRIX_CLOCK, n))

    def detector_scores(self) -> Dict[str, DetectorScore]:
        """Symbol/program precision-recall per detector, against the labels.

        A detector "flags" a symbol for a pattern when it flagged it in at
        least one explored schedule — the recall-friendly reading; how
        *consistently* it flags is reported separately
        (:meth:`matrix_clock_consistency`).
        """
        labels = {
            str(p["pattern"]): set(p["labelled_racy_symbols"])
            for p in self.per_pattern
        }
        symbols = {str(p["pattern"]): set(p["symbols"]) for p in self.per_pattern}
        scores: Dict[str, DetectorScore] = {}
        for detector in self.detector_names():
            flagged = {
                str(p["pattern"]): set(p["flagged_in_any"].get(detector, []))
                for p in self.per_pattern
            }
            scores[detector] = score_against_labels(detector, flagged, labels, symbols)
        return scores

    def matrix_clock_consistency(self) -> Dict[str, Dict[str, float]]:
        """Per pattern, the matrix-clock flag fraction of each labelled symbol.

        The paper's claim is that these fractions are **1.0**: a real race
        is flagged in every schedule, not just the lucky one.
        """
        out: Dict[str, Dict[str, float]] = {}
        for payload in self.per_pattern:
            fractions = payload["flag_fractions"].get(MATRIX_CLOCK, {})
            out[str(payload["pattern"])] = {
                symbol: float(fractions.get(symbol, 0.0))
                for symbol in payload["labelled_racy_symbols"]
            }
        return out

    def fully_consistent(self) -> bool:
        """True when every labelled racy symbol was flagged in every schedule."""
        return all(
            fraction == 1.0
            for per_symbol in self.matrix_clock_consistency().values()
            for fraction in per_symbol.values()
        )

    # -- serialization ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        scores = {
            name: {
                "program_accuracy": score.program_level.accuracy,
                "symbol_precision": score.symbol_level.precision,
                "symbol_recall": score.symbol_level.recall,
                "symbol_f1": score.symbol_level.f1,
            }
            for name, score in self.detector_scores().items()
        }
        return {
            "format": "repro-exploration-campaign",
            "version": 1,
            "corpus": self.corpus,
            "config": asdict(self.config),
            "patterns": self.per_pattern,
            "detector_scores": scores,
            "matrix_clock_consistency": self.matrix_clock_consistency(),
            "fully_consistent": self.fully_consistent(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The JSON report."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_markdown(self) -> str:
        """The human-readable report."""
        lines = [
            f"# Exploration campaign — corpus `{self.corpus}`",
            "",
            f"strategy `{self.config.strategy}`, budget {self.config.budget} "
            f"schedules/pattern, seed {self.config.seed}, "
            f"{len(self.per_pattern)} patterns",
            "",
            "## Detector accuracy across explored schedules",
            "",
            "| detector | program accuracy | symbol precision | symbol recall | symbol F1 |",
            "|---|---|---|---|---|",
        ]
        for name, score in self.detector_scores().items():
            lines.append(
                f"| {name} | {score.program_level.accuracy:.2f} "
                f"| {score.symbol_level.precision:.2f} "
                f"| {score.symbol_level.recall:.2f} "
                f"| {score.symbol_level.f1:.2f} |"
            )
        lines += [
            "",
            "## Per-pattern exploration",
            "",
            "| pattern | schedules | dedup | distinct orders | racy symbols "
            "(label) | matrix-clock flag fraction |",
            "|---|---|---|---|---|---|",
        ]
        consistency = self.matrix_clock_consistency()
        for payload in self.per_pattern:
            name = str(payload["pattern"])
            per_symbol = consistency.get(name, {})
            fraction = (
                ", ".join(
                    f"{symbol}: {value:.0%}" for symbol, value in sorted(per_symbol.items())
                )
                or "—"
            )
            lines.append(
                f"| {name} | {payload['schedules_run']} "
                f"| {payload['deduplicated']} "
                f"| {payload['distinct_fingerprints']} "
                f"| {', '.join(payload['labelled_racy_symbols']) or '—'} "
                f"| {fraction} |"
            )
        lines += [
            "",
            "## Per-pattern traffic (from the per-schedule metric snapshots)",
            "",
            "| pattern | messages | detection messages | detection bytes "
            "| metric instruments |",
            "|---|---|---|---|---|",
        ]
        for payload in self.per_pattern:
            outcomes = payload.get("outcomes", [])
            instruments = max(
                (len(o.get("metrics", {})) for o in outcomes), default=0
            )
            lines.append(
                f"| {payload['pattern']} "
                f"| {sum(o['total_messages'] for o in outcomes)} "
                f"| {sum(o['detection_messages'] for o in outcomes)} "
                f"| {sum(o['detection_bytes'] for o in outcomes)} "
                f"| {instruments} |"
            )
        composition = self._path_composition_rows()
        if composition:
            lines += [
                "",
                "## Schedules ranked by critical-path composition",
                "",
                "longest explored schedule per pattern, slowest first; the "
                "category split says *why* that interleaving was slow",
                "",
                "| pattern | schedule | path sim time | dominant | composition |",
                "|---|---|---|---|---|",
            ]
            lines += composition
        lines += [
            "",
            f"matrix-clock every-schedule guarantee: "
            f"{'HOLDS' if self.fully_consistent() else 'VIOLATED'}",
            "",
        ]
        return "\n".join(lines)

    def _path_composition_rows(self) -> List[str]:
        """Markdown rows ranking patterns by their slowest schedule's path.

        Empty when the campaign ran without ``critical_path`` (no summaries
        were recorded).
        """
        ranked = []
        for payload in self.per_pattern:
            best = None
            for outcome in payload.get("outcomes", []):
                summary = outcome.get("critical_path") or {}
                total = summary.get("path_sim_time")
                if total is None:
                    continue
                if best is None or total > best[1]:
                    best = (outcome.get("schedule_id", 0), total, summary)
            if best is not None:
                ranked.append((str(payload["pattern"]),) + best)
        ranked.sort(key=lambda row: (-row[2], row[0]))
        rows = []
        for pattern, schedule_id, total, summary in ranked:
            categories = summary.get("categories", {})
            split = ", ".join(
                f"{category} {value / total:.0%}"
                for category, value in sorted(
                    categories.items(), key=lambda item: (-item[1], item[0])
                )
                if value > 0
            ) or "—"
            rows.append(
                f"| {pattern} | {schedule_id} | {total:.2f} "
                f"| {summary.get('dominant', '—')} | {split} |"
            )
        return rows


def run_campaign(
    config: CampaignConfig,
    patterns: Optional[Sequence[Union[str, object]]] = None,
    corpus: str = "default",
) -> CampaignReport:
    """Explore every selected pattern and aggregate the report.

    *patterns* selects by name (strings) or by
    :class:`~repro.workloads.racy_patterns.LabelledPattern` objects whose
    names exist in *corpus*; ``None`` selects the whole corpus.  With
    ``config.workers > 0`` the patterns are sharded across that many worker
    processes; the report is identical either way.
    """
    if patterns is None:
        names = [p.name for p in _resolve_corpus(corpus)]
    else:
        names = [p if isinstance(p, str) else p.name for p in patterns]
    tasks = [
        {"config": asdict(config), "corpus": corpus, "pattern": name}
        for name in names
    ]
    if config.workers > 0 and len(tasks) > 1:
        # Tasks are plain dicts resolved by (corpus, name) inside the worker,
        # so any start method works; prefer fork for speed where it exists
        # (Linux), fall back to spawn elsewhere (Windows, macOS default).
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context("spawn")
        with context.Pool(min(config.workers, len(tasks))) as pool:
            payloads = pool.map(_explore_pattern_task, tasks)
    else:
        payloads = [_explore_pattern_task(task) for task in tasks]
    payloads.sort(key=lambda p: str(p["pattern"]))
    return CampaignReport(config=config, corpus=corpus, per_pattern=payloads)


def minimize_campaign_artifacts(
    config: CampaignConfig,
    out_dir: str,
    patterns: Optional[Sequence[Union[str, object]]] = None,
    corpus: str = "default",
) -> List[str]:
    """Delta-debug one racing schedule per racy pattern into an artifact.

    For every labelled-racy selected pattern, re-explore a small fuzzed
    budget under the campaign's knobs, take the first schedule on which
    matrix-clock flagged a labelled symbol, shrink its decision log with
    :func:`~repro.explore.minimize.minimize_racing_schedule`, and write the
    self-contained replayable artifact to
    ``<out_dir>/minimized-<pattern>.json``.  Returns the written paths.

    The nightly CI fuzz campaign uploads these next to the report: a failure
    investigated days later starts from a minimal racing recipe, not a
    thousand-decision fuzz log.
    """
    import os

    from repro.explore.minimize import minimize_racing_schedule, save_artifact

    configure = _knob_configure(
        config.treat_rmw_pairs_as_ordered,
        config.clock_transport,
        config.clock_wire,
        config.cq_moderation,
        config.detector_epochs,
        config.flow_control,
        config.cq_moderation_timer,
        config.clock_wire_resync,
        config.transport,
    )
    if patterns is None:
        selected = [p for p in _resolve_corpus(corpus) if p.racy]
    else:
        names = {p if isinstance(p, str) else p.name for p in patterns}
        selected = [
            p for p in _resolve_corpus(corpus) if p.name in names and p.racy
        ]
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for pattern in selected:
        if configure is None:
            factory = pattern.build
        else:
            # The minimizer replays through the bare factory, so the
            # campaign's knob overrides must be baked in, not passed along.
            def factory(seed, _build=pattern.build, _configure=configure):
                runtime = _build(seed)
                _configure(runtime)
                return runtime

        explorer = Explorer(factory, seed=config.seed, offline_detectors=[])
        result = explorer.explore_fuzzed(
            max(config.budget, 2),
            reorder_probability=config.reorder_probability,
            reorder_aggressiveness=config.reorder_aggressiveness,
            quantum=config.quantum,
            tie_shuffle_probability=config.tie_shuffle_probability,
            drop_probability=config.drop_probability,
            duplicate_probability=config.duplicate_probability,
        )
        labels = set(pattern.racy_symbols)
        chosen = None
        for outcome in result.outcomes:
            flagged = outcome.flagged.get(MATRIX_CLOCK, set())
            targets = (flagged & labels) or flagged
            if targets:
                chosen = (outcome, targets)
                break
        if chosen is None:  # pragma: no cover - racy corpus always flags
            continue
        outcome, targets = chosen
        minimized = minimize_racing_schedule(
            factory, config.seed, outcome.decisions, targets
        )
        path = os.path.join(out_dir, f"minimized-{pattern.name}.json")
        save_artifact(minimized, factory, config.seed, path, pattern=pattern.name)
        written.append(path)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.explore.campaign``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="default", help="default | rmw")
    parser.add_argument(
        "--patterns", nargs="*", default=None, help="pattern names (default: all)"
    )
    parser.add_argument("--strategy", default="fuzz", choices=("fuzz", "systematic"))
    parser.add_argument("--budget", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--branch-factor", type=int, default=2)
    parser.add_argument("--max-branch-points", type=int, default=8)
    parser.add_argument("--reorder-probability", type=float, default=0.35)
    parser.add_argument("--reorder-aggressiveness", type=float, default=2.0)
    parser.add_argument("--quantum", type=float, default=1.0)
    parser.add_argument(
        "--clock-transport",
        default=None,
        choices=CLOCK_TRANSPORT_MODES,
        help="clock transport for every explored runtime (default: the "
        "pattern's own configuration)",
    )
    parser.add_argument(
        "--clock-wire",
        default=None,
        choices=CLOCK_WIRE_FORMATS,
        help="clock wire format for every explored runtime (default: the "
        "pattern's own configuration)",
    )
    parser.add_argument(
        "--cq-moderation",
        default=None,
        choices=("on", "off"),
        help="force completion coalescing on or off for every explored "
        "runtime (default: the pattern's own configuration)",
    )
    parser.add_argument(
        "--detector-epochs",
        default=None,
        choices=("on", "off"),
        help="force the detector's epoch fast path on or off for every "
        "explored runtime (default: the pattern's own configuration)",
    )
    parser.add_argument(
        "--flow-control",
        default=None,
        choices=FLOW_CONTROL_MODES,
        help="two-sided admission protocol for every explored runtime "
        "(default: the pattern's own configuration)",
    )
    parser.add_argument(
        "--cq-moderation-timer",
        default=None,
        metavar="COUNT,USEC|off",
        help="(cq_count, cq_usec) CQ-moderation timer for every explored "
        "runtime, e.g. 4,2.0, or 'off' to force the timer off (default: "
        "the pattern's own configuration)",
    )
    parser.add_argument(
        "--clock-wire-resync",
        default=None,
        metavar="COUNT|adaptive",
        help="sparse-wire full-clock resync cadence for every explored "
        "runtime: a message count, or 'adaptive' for the per-channel "
        "self-tuning cadence (default: the pattern's own configuration)",
    )
    parser.add_argument(
        "--transport",
        default=None,
        choices=TRANSPORT_MODES,
        help="data-message service level for every explored runtime: rc "
        "(reliable connected) or ud (droppable/reorderable datagrams with "
        "receiver-driven clock resync) (default: the pattern's own "
        "configuration)",
    )
    parser.add_argument(
        "--drop-rate",
        type=float,
        default=0.0,
        help="per-datagram drop probability for fuzzed schedules (UD only; "
        "schedule 0 stays the drop-free baseline)",
    )
    parser.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.0,
        help="per-datagram duplication probability for fuzzed schedules "
        "(UD only)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="record each schedule's critical-path summary and rank "
        "schedules by path composition in the report",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument("--markdown", dest="markdown_path", default=None)
    parser.add_argument(
        "--minimize-dir",
        default=None,
        metavar="DIR",
        help="after the report, delta-debug one racing schedule per racy "
        "pattern (under the same knobs) and write replayable "
        "minimized-<pattern>.json artifacts into DIR",
    )
    parser.add_argument(
        "--expect-consistent",
        action="store_true",
        help="exit 1 unless matrix-clock flagged every labelled racy symbol "
        "in 100%% of explored schedules",
    )
    args = parser.parse_args(argv)

    config = CampaignConfig(
        strategy=args.strategy,
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        branch_factor=args.branch_factor,
        max_branch_points=args.max_branch_points,
        reorder_probability=args.reorder_probability,
        reorder_aggressiveness=args.reorder_aggressiveness,
        quantum=args.quantum,
        clock_transport=args.clock_transport,
        clock_wire=args.clock_wire,
        cq_moderation=(
            None if args.cq_moderation is None else args.cq_moderation == "on"
        ),
        detector_epochs=args.detector_epochs,
        flow_control=args.flow_control,
        cq_moderation_timer=args.cq_moderation_timer,
        clock_wire_resync=args.clock_wire_resync,
        transport=args.transport,
        drop_probability=args.drop_rate,
        duplicate_probability=args.duplicate_rate,
        critical_path=args.critical_path,
    )
    report = run_campaign(config, patterns=args.patterns, corpus=args.corpus)
    if args.json_path:
        with open(args.json_path, "w") as handle:
            handle.write(report.to_json())
    markdown = report.to_markdown()
    if args.markdown_path:
        with open(args.markdown_path, "w") as handle:
            handle.write(markdown)
    print(markdown)
    if args.minimize_dir:
        for path in minimize_campaign_artifacts(
            config, args.minimize_dir, patterns=args.patterns, corpus=args.corpus
        ):
            print(f"minimized racing schedule: {path}")
    if args.expect_consistent and not report.fully_consistent():
        print("ERROR: matrix-clock missed a labelled race in some schedule")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
