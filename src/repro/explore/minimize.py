"""Racing-schedule minimization: shrink a decision log, keep the race.

A fuzzer that finds a race hands back a decision log with dozens of
perturbations, most of them irrelevant.  :func:`minimize_racing_schedule`
delta-debugs that log against a replay predicate ("does the matrix-clock
detector still flag the target symbols?") in three passes:

1. **prefix truncation** — binary search for the shortest log prefix that
   still produces the race (every choice point past the prefix replays at
   its default), using the standard bisection invariant: the upper bound
   always satisfies the predicate, so the returned prefix is guaranteed
   racing even if the predicate is not monotone in between;
2. **chunked removal (ddmin)** — within the surviving prefix, *chunks* of
   the remaining non-default decisions are replaced wholesale by the
   default marker (``None``), starting with half the decisions per chunk
   and halving on a sweep that removes nothing.  Racing schedules found
   mainly through tie shuffling have their irrelevant perturbations
   scattered across the whole log, where prefix truncation removes nothing;
   chunking defaults them in O(log n) sweeps instead of one replay each;
3. **sparsification** — each surviving non-default decision is individually
   replaced by the default and the replacement kept when the race survives,
   walking from the back so later decisions (the ones most likely to be
   mere noise) are removed first.  After the chunk pass this is cheap:
   only the genuinely load-bearing decisions remain.

The result replays deterministically, and :func:`save_artifact` emits a
self-contained JSON artifact: the decision recipe plus the minimized run's
full trace through the existing trace layer — so the race can be re-analysed
offline (:class:`~repro.trace.replay.TraceReplayer` reproduces the same
report from the stored accesses alone) or re-executed live
(:func:`replay_artifact`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.explore.controller import ReplayDivergence, ReplayStrategy, ScheduleController
from repro.explore.decisions import DecisionLog
from repro.explore.runner import (
    MATRIX_CLOCK,
    RuntimeFactory,
    ScheduleOutcome,
    run_schedule,
)
from repro.sim.events import SimulationError
from repro.trace.serialization import trace_to_json

#: Artifact format marker (bumped on incompatible changes).
ARTIFACT_FORMAT = "repro-racing-schedule"
#: Version 2: decision logs gained the positional ``rnr`` choice-point kind
#: (controller-owned RNR backoffs), so version-1 logs recorded from runs
#: that hit an RNR retry no longer align against current replays.
ARTIFACT_VERSION = 2
#: Versions this loader still accepts (v1 replays fine when its schedule
#: never hit an RNR backoff; a divergence is reported loudly otherwise).
SUPPORTED_ARTIFACT_VERSIONS = (1, 2)


@dataclass
class MinimizedSchedule:
    """The output of one minimization."""

    decisions: DecisionLog
    target_symbols: Set[str]
    flagged: Set[str]
    original_length: int
    original_perturbations: int
    replays_used: int
    outcome: ScheduleOutcome

    @property
    def minimized_length(self) -> int:
        """Entries kept in the minimized log (prefix length)."""
        return len(self.decisions)

    @property
    def perturbations(self) -> int:
        """Non-default decisions surviving minimization."""
        return len(self.decisions.non_default())


def _replay(
    factory: RuntimeFactory,
    seed: int,
    log: DecisionLog,
    max_ties: int,
) -> Optional[ScheduleOutcome]:
    """Replay one candidate log; ``None`` when the candidate misaligns.

    Defaulting a *tie* decision can change which events exist downstream,
    so a sparsified candidate may stop matching its own tail — strict
    replay then raises :class:`ReplayDivergence` (possibly wrapped in a
    :class:`SimulationError` when the divergence hits inside a simulated
    process).  A divergent candidate is simply not a valid shrink: the
    minimizer treats it exactly like one that lost the race.
    """
    try:
        return run_schedule(
            factory,
            seed,
            ReplayStrategy(log),
            offline_detectors=(),
            max_ties=max_ties,
        )
    except ReplayDivergence:
        return None
    except SimulationError as error:
        if isinstance(error.__cause__, ReplayDivergence):
            return None
        raise


def minimize_racing_schedule(
    factory: RuntimeFactory,
    seed: int,
    decisions: DecisionLog,
    target_symbols: Set[str],
    max_ties: int = 8,
    predicate: Optional[Callable[[ScheduleOutcome], bool]] = None,
) -> MinimizedSchedule:
    """Shrink *decisions* to a minimal log still flagging *target_symbols*.

    *decisions* must come from a schedule of ``factory(seed)`` on which the
    matrix-clock detector flagged every symbol in *target_symbols* (a
    :class:`ValueError` is raised otherwise — minimizing a non-racing log is
    a caller bug, not an empty result).

    *predicate*, when given, replaces the default "matrix-clock flags the
    targets" criterion with an arbitrary check over the replayed
    :class:`~repro.explore.runner.ScheduleOutcome` — e.g. "the race
    *manifests*: cell a's final value is the overwritten one".  Because the
    clock detector flags a real race in every schedule, the default
    criterion usually minimizes all the way to the empty log (the baseline
    already races); an outcome predicate pins the schedule down to the
    perturbations that make the bug observable.
    """
    if not target_symbols:
        raise ValueError("target_symbols must name at least one racy symbol")
    replays = 0

    def holds(outcome: ScheduleOutcome) -> bool:
        if predicate is not None:
            return predicate(outcome)
        return target_symbols <= outcome.flagged.get(MATRIX_CLOCK, set())

    def races(log: DecisionLog) -> Optional[ScheduleOutcome]:
        nonlocal replays
        replays += 1
        outcome = _replay(factory, seed, log, max_ties)
        if outcome is not None and holds(outcome):
            return outcome
        return None

    full = DecisionLog(decisions.entries)
    outcome = races(full)
    if outcome is None:
        raise ValueError(
            f"the given schedule does not satisfy the racing criterion "
            f"(targets {sorted(target_symbols)}); nothing to minimize"
        )

    # Pass 1: shortest racing prefix.  Invariant: prefix(high) races.
    low, high = 0, len(full)
    best = outcome
    while low < high:
        mid = (low + high) // 2
        candidate = races(full.prefix(mid))
        if candidate is not None:
            high, best = mid, candidate
        else:
            low = mid + 1
    log = full.prefix(high)

    # Pass 2: chunked (ddmin-style) removal.  Default-out whole chunks of
    # the surviving non-default decisions; halve the chunk size whenever a
    # full sweep removes nothing.  Tie-shuffle-found schedules — whose
    # irrelevant perturbations are scattered, not clustered at the tail —
    # converge in O(log n) sweeps here instead of one replay per decision.
    def non_default_indices(current: DecisionLog):
        return [
            index
            for index, entry in enumerate(current.entries)
            if entry is not None and not entry.is_default
        ]

    chunk = len(non_default_indices(log)) // 2
    while chunk >= 2:
        removed = False
        indices = non_default_indices(log)
        for start in range(0, len(indices), chunk):
            batch = indices[start:start + chunk]
            if not batch:
                continue
            candidate_log = log
            for index in batch:
                candidate_log = candidate_log.with_default_at(index)
            candidate = races(candidate_log)
            if candidate is not None:
                log, best = candidate_log, candidate
                removed = True
        if not removed:
            chunk //= 2
        else:
            chunk = min(chunk, max(2, len(non_default_indices(log)) // 2))
        if not non_default_indices(log):
            break

    # Pass 3: default-out individually unnecessary perturbations (the
    # chunk-1 granularity the ddmin pass deliberately leaves to this sweep,
    # walking from the back so later decisions — the ones most likely to be
    # mere noise — are removed first).
    for index in reversed(range(len(log))):
        entry = log.entries[index]
        if entry is None or entry.is_default:
            continue
        candidate_log = log.with_default_at(index)
        candidate = races(candidate_log)
        if candidate is not None:
            log, best = candidate_log, candidate

    return MinimizedSchedule(
        decisions=log,
        target_symbols=set(target_symbols),
        flagged=set(best.flagged.get(MATRIX_CLOCK, set())),
        original_length=len(decisions),
        original_perturbations=len(decisions.non_default()),
        replays_used=replays,
        outcome=best,
    )


def save_artifact(
    minimized: MinimizedSchedule,
    factory: RuntimeFactory,
    seed: int,
    path: str,
    pattern: Optional[str] = None,
    max_ties: int = 8,
) -> Dict[str, object]:
    """Write a self-contained, replayable racing-schedule artifact.

    The minimized schedule is re-executed once to capture its full trace;
    the artifact bundles the decision recipe (live replay) with the trace
    (offline replay through :class:`~repro.trace.replay.TraceReplayer`).
    Returns the artifact dictionary that was written.
    """
    runtime = factory(seed)
    controller = ScheduleController(ReplayStrategy(minimized.decisions), max_ties=max_ties)
    runtime.sim.install_controller(controller)
    result = runtime.run()
    artifact: Dict[str, object] = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "pattern": pattern,
        "seed": seed,
        "max_ties": max_ties,
        "target_symbols": sorted(minimized.target_symbols),
        "flagged_symbols": sorted(
            s for s in result.races.by_symbol() if s is not None
        ),
        "decisions": minimized.decisions.to_jsonable(),
        "trace": json.loads(
            trace_to_json(
                runtime.config.world_size,
                runtime.recorder.accesses(),
                operations=runtime.recorder.operations(),
                syncs=runtime.recorder.syncs(),
                run_info=runtime.recorder.run_info(),
            )
        ),
    }
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2)
    return artifact


def load_artifact(path: str) -> Dict[str, object]:
    """Read an artifact written by :func:`save_artifact` (format-checked)."""
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"not a racing-schedule artifact (format={artifact.get('format')!r})"
        )
    if int(artifact.get("version", 0)) not in SUPPORTED_ARTIFACT_VERSIONS:
        raise ValueError(
            f"unsupported racing-schedule artifact version "
            f"{artifact.get('version')!r} (supported: "
            f"{SUPPORTED_ARTIFACT_VERSIONS})"
        )
    return artifact


def replay_artifact(
    path: str, factory: RuntimeFactory
) -> ScheduleOutcome:
    """Re-execute an artifact's schedule live; returns the fresh outcome.

    The caller checks the outcome against the artifact's recorded verdict
    (the determinism tests assert they always agree).
    """
    artifact = load_artifact(path)
    log = DecisionLog.from_jsonable(artifact["decisions"])
    return run_schedule(
        factory,
        int(artifact["seed"]),
        ReplayStrategy(log),
        offline_detectors=(),
        max_ties=int(artifact.get("max_ties", 8)),
    )
