"""``python -m repro.explore`` — run an exploration campaign from the CLI."""

import sys

from repro.explore.campaign import main

if __name__ == "__main__":
    sys.exit(main())
