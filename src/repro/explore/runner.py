"""Running schedules and exploring schedule spaces.

:func:`run_schedule` executes one program under one controlled schedule and
reduces the run to a :class:`ScheduleOutcome`: the decision log (replay
recipe), the conflict-order fingerprint, every detector's flagged symbols,
and the observable behaviour (final shared values, per-cell read multisets)
the cross-schedule ground truth is computed from.

:class:`Explorer` drives a whole exploration under a schedule budget with
either strategy family:

* :meth:`Explorer.explore_fuzzed` — schedule 0 is the uncontrolled baseline,
  schedules 1..budget-1 are fuzzed with per-schedule seeds derived from the
  exploration seed;
* :meth:`Explorer.explore_systematic` — breadth-first search over delay-slot
  assignments (see :mod:`repro.explore.systematic`), expanding children only
  for runs whose fingerprint is novel (sleep-set-style dedup).

Both return an :class:`ExplorationResult` whose
:meth:`~ExplorationResult.ground_truth_racy_symbols` applies the paper's
operational race definition *across schedules of the same seed* instead of
across seeds: a symbol is truly racy when its observable behaviour differs
between two explored interleavings.  This is the schedule-space analogue of
:class:`~repro.detectors.ground_truth.SeedVaryingOracle`, with the advantage
that every divergence is attributable to scheduling alone — the program and
every random draw are held fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.detectors.base import BaselineDetector
from repro.detectors.lockset import LocksetDetector
from repro.detectors.single_clock import SingleClockDetector
from repro.explore.controller import (
    PassthroughStrategy,
    ScheduleController,
    ScheduleStrategy,
)
from repro.explore.decisions import DecisionLog
from repro.explore.fuzzer import ScheduleFuzzer
from repro.explore.systematic import SystematicStrategy, schedule_fingerprint
from repro.memory.consistency import AccessKind
from repro.runtime.runtime import DSMRuntime

#: Builds a fresh, fully configured runtime for a given seed (the same
#: contract as :data:`repro.detectors.ground_truth.RuntimeFactory`).
RuntimeFactory = Callable[[int], DSMRuntime]

#: The report name of the paper's online detector in exploration verdicts.
#: The dual-clock algorithm is the vector/matrix-clock detection the paper
#: builds its "flagged in every schedule" claim on.
MATRIX_CLOCK = "matrix-clock"


def default_offline_detectors() -> List[BaselineDetector]:
    """The baseline detectors scored on every explored schedule."""
    return [SingleClockDetector(), LocksetDetector()]


@dataclass
class ScheduleOutcome:
    """Everything one controlled schedule is reduced to."""

    schedule_id: int
    strategy: str
    decisions: DecisionLog
    fingerprint: str
    flagged: Dict[str, Set[str]]
    final_values: Dict[str, Tuple[object, ...]]
    read_values: Dict[Tuple[str, int], Tuple[str, ...]]
    symbols: Set[str]
    elapsed_sim_time: float
    events_processed: int
    #: Fabric traffic of the schedule, for the clock-transport comparisons:
    #: piggyback mode must move strictly fewer messages than roundtrip at
    #: byte-identical verdicts.
    total_messages: int = 0
    data_messages: int = 0
    detection_messages: int = 0
    detection_bytes: int = 0
    #: The schedule's canonical metric snapshot (``RunResult.metrics``):
    #: per-schedule observability that campaign workers ship back verbatim,
    #: byte-identical for byte-identical schedules.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Critical-path summary of the schedule (``CriticalPath.summary()``),
    #: recorded only when the run opted into path analysis — pure
    #: post-processing of the span trace, so verdicts/decisions/metrics are
    #: unchanged whether it is on or off.
    critical_path: Dict[str, object] = field(default_factory=dict)

    @property
    def racy(self) -> bool:
        """True when the matrix-clock detector flagged anything."""
        return bool(self.flagged.get(MATRIX_CLOCK))

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (what campaign workers ship back)."""
        return {
            "schedule_id": self.schedule_id,
            "strategy": self.strategy,
            "fingerprint": self.fingerprint,
            "flagged": {name: sorted(symbols) for name, symbols in self.flagged.items()},
            "decisions": len(self.decisions),
            "perturbations": len(self.decisions.non_default()),
            "elapsed_sim_time": self.elapsed_sim_time,
            "events_processed": self.events_processed,
            "total_messages": self.total_messages,
            "data_messages": self.data_messages,
            "detection_messages": self.detection_messages,
            "detection_bytes": self.detection_bytes,
            "metrics": dict(self.metrics),
            "critical_path": dict(self.critical_path),
        }


def run_schedule(
    factory: RuntimeFactory,
    seed: int,
    strategy: ScheduleStrategy,
    schedule_id: int = 0,
    offline_detectors: Optional[Sequence[BaselineDetector]] = None,
    max_ties: int = 8,
    configure: Optional[Callable[[DSMRuntime], None]] = None,
    critical_path: bool = False,
) -> ScheduleOutcome:
    """Build, control and run one schedule; reduce it to its outcome.

    *configure*, when given, is applied to the freshly built runtime before
    the controller is installed (the campaign runner uses it to sweep
    detector knobs without touching the factory).  With *critical_path*,
    span tracing is enabled for the run and the outcome carries the
    schedule's critical-path summary — analysis is pure post-processing, so
    verdicts, decision logs and metric snapshots are identical either way.
    """
    runtime = factory(seed)
    if configure is not None:
        configure(runtime)
    if critical_path:
        runtime.sim.obs.configure(trace_spans=True)
    controller = ScheduleController(strategy, max_ties=max_ties)
    runtime.sim.install_controller(controller)
    result = runtime.run()

    path_summary: Dict[str, object] = {}
    if critical_path:
        from repro.obs.critical_path import CriticalPathAnalyzer

        path_summary = CriticalPathAnalyzer.from_tracer(
            runtime.sim.obs.spans, result.elapsed_sim_time
        ).summary()

    flagged: Dict[str, Set[str]] = {
        MATRIX_CLOCK: {s for s in result.races.by_symbol() if s is not None}
    }
    accesses = runtime.recorder.accesses()
    syncs = runtime.recorder.syncs()
    detectors = (
        default_offline_detectors() if offline_detectors is None else offline_detectors
    )
    for detector in detectors:
        found = detector.detect(accesses, runtime.config.world_size, syncs=syncs)
        flagged[detector.name] = found.flagged_symbols()

    final_values = {
        symbol: tuple(values) for symbol, values in result.final_shared_values.items()
    }
    # Per-cell multiset of values observed by reads (an RMW observes its
    # cell's pre-update value) — the second half of the operational race
    # definition: a cell whose *reads* see different value multisets across
    # schedules is racy even when its final value converges.
    per_cell: Dict[Tuple[str, int], List[str]] = {}
    for access in accesses:
        if not access.kind.is_read or access.symbol is None:
            continue
        seen = access.observed if access.kind is AccessKind.RMW else access.value
        per_cell.setdefault((access.symbol, access.address.offset), []).append(
            repr(seen)
        )
    read_values = {cell: tuple(sorted(vals)) for cell, vals in per_cell.items()}

    return ScheduleOutcome(
        schedule_id=schedule_id,
        strategy=strategy.describe(),
        decisions=controller.log,
        fingerprint=schedule_fingerprint(accesses),
        flagged=flagged,
        final_values=final_values,
        read_values=read_values,
        symbols={symbol.name for symbol in runtime.directory.symbols()},
        elapsed_sim_time=result.elapsed_sim_time,
        events_processed=runtime.sim.events_processed,
        total_messages=result.fabric_stats.total_messages,
        data_messages=result.fabric_stats.data_messages,
        detection_messages=result.fabric_stats.detection_messages,
        detection_bytes=result.fabric_stats.detection_bytes,
        metrics=result.metrics,
        critical_path=path_summary,
    )


@dataclass
class ExplorationResult:
    """A completed exploration of one program's schedule space."""

    strategy: str
    seed: int
    budget: int
    outcomes: List[ScheduleOutcome] = field(default_factory=list)
    #: Runs whose fingerprint matched an earlier schedule (their subtrees
    #: were pruned by the systematic searcher's dedup).
    deduplicated: int = 0

    @property
    def schedules_run(self) -> int:
        """Schedules actually executed."""
        return len(self.outcomes)

    @property
    def distinct_fingerprints(self) -> int:
        """Conflict-order equivalence classes covered."""
        return len({o.fingerprint for o in self.outcomes})

    @property
    def symbols(self) -> Set[str]:
        """All shared symbols of the program."""
        return set().union(*(o.symbols for o in self.outcomes)) if self.outcomes else set()

    def detector_names(self) -> List[str]:
        """Every detector scored, matrix-clock first."""
        names: Set[str] = set()
        for outcome in self.outcomes:
            names.update(outcome.flagged)
        return sorted(names, key=lambda n: (n != MATRIX_CLOCK, n))

    def ground_truth_racy_symbols(self) -> Set[str]:
        """Symbols whose observable behaviour diverges across schedules.

        The paper's operational definition, applied across interleavings of
        one seed: divergent final contents, or divergent per-cell read
        multisets.
        """
        racy: Set[str] = set()
        finals: Dict[str, Set[Tuple[object, ...]]] = {}
        reads: Dict[Tuple[str, int], Set[Tuple[str, ...]]] = {}
        for outcome in self.outcomes:
            for symbol, values in outcome.final_values.items():
                finals.setdefault(symbol, set()).add(values)
            for cell, values in outcome.read_values.items():
                reads.setdefault(cell, set()).add(values)
        for symbol, observed in finals.items():
            if len(observed) > 1:
                racy.add(symbol)
        for (symbol, _offset), observed in reads.items():
            if len(observed) > 1:
                racy.add(symbol)
        return racy

    def flagged_in_any(self, detector: str) -> Set[str]:
        """Symbols *detector* flagged in at least one explored schedule."""
        out: Set[str] = set()
        for outcome in self.outcomes:
            out.update(outcome.flagged.get(detector, set()))
        return out

    def flag_fraction(self, detector: str, symbol: str) -> float:
        """Fraction of explored schedules in which *detector* flagged *symbol*."""
        if not self.outcomes:
            return 0.0
        hits = sum(
            1 for o in self.outcomes if symbol in o.flagged.get(detector, set())
        )
        return hits / len(self.outcomes)

    def racing_outcome(self, symbols: Optional[Set[str]] = None) -> Optional[ScheduleOutcome]:
        """The first schedule whose matrix-clock verdict covers *symbols*.

        With ``symbols=None``, the first schedule flagging anything.  The
        returned outcome's decision log is what the minimizer shrinks.
        """
        for outcome in self.outcomes:
            flagged = outcome.flagged.get(MATRIX_CLOCK, set())
            if symbols is None:
                if flagged:
                    return outcome
            elif symbols <= flagged:
                return outcome
        return None

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (per-pattern campaign payload)."""
        ground_truth = sorted(self.ground_truth_racy_symbols())
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "schedules_run": self.schedules_run,
            "deduplicated": self.deduplicated,
            "distinct_fingerprints": self.distinct_fingerprints,
            "symbols": sorted(self.symbols),
            "ground_truth_racy_symbols": ground_truth,
            "flagged_in_any": {
                name: sorted(self.flagged_in_any(name))
                for name in self.detector_names()
            },
            "flag_fractions": {
                name: {
                    symbol: self.flag_fraction(name, symbol)
                    for symbol in sorted(self.flagged_in_any(name) | set(ground_truth))
                }
                for name in self.detector_names()
            },
            "outcomes": [o.as_dict() for o in self.outcomes],
        }


class Explorer:
    """Explores one program's schedule space under a schedule budget."""

    def __init__(
        self,
        factory: RuntimeFactory,
        seed: int = 0,
        offline_detectors: Optional[Sequence[BaselineDetector]] = None,
        max_ties: int = 8,
        configure: Optional[Callable[[DSMRuntime], None]] = None,
        critical_path: bool = False,
    ) -> None:
        self._factory = factory
        self.seed = seed
        self._offline = offline_detectors
        self._max_ties = max_ties
        self._configure = configure
        self._critical_path = critical_path

    def _run(self, strategy: ScheduleStrategy, schedule_id: int) -> ScheduleOutcome:
        return run_schedule(
            self._factory,
            self.seed,
            strategy,
            schedule_id=schedule_id,
            offline_detectors=self._offline,
            max_ties=self._max_ties,
            configure=self._configure,
            critical_path=self._critical_path,
        )

    # -- fuzzing ---------------------------------------------------------------------

    def explore_fuzzed(
        self,
        budget: int,
        reorder_probability: float = 0.35,
        reorder_aggressiveness: float = 2.0,
        quantum: float = 1.0,
        tie_shuffle_probability: float = 0.15,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> ExplorationResult:
        """Run the baseline plus ``budget - 1`` fuzzed schedules.

        Fuzz seeds are derived deterministically from the exploration seed,
        so the whole exploration is a pure function of ``(program, seed,
        budget, knobs)`` — re-running it reproduces identical schedules and
        verdicts.  *drop_probability* / *duplicate_probability* govern the
        per-datagram ``drop`` fate decisions and only bite under the
        ``"ud"`` transport (RC schedules never consult them); schedule 0
        stays the uncontrolled baseline where every datagram delivers.
        """
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        result = ExplorationResult(strategy="fuzz", seed=self.seed, budget=budget)
        for schedule_id in range(budget):
            if schedule_id == 0:
                strategy: ScheduleStrategy = PassthroughStrategy()
            else:
                strategy = ScheduleFuzzer(
                    seed=(self.seed * 1_000_003 + schedule_id),
                    reorder_probability=reorder_probability,
                    reorder_aggressiveness=reorder_aggressiveness,
                    quantum=quantum,
                    tie_shuffle_probability=tie_shuffle_probability,
                    drop_probability=drop_probability,
                    duplicate_probability=duplicate_probability,
                )
            result.outcomes.append(self._run(strategy, schedule_id))
        return result

    # -- systematic search -------------------------------------------------------------

    def explore_systematic(
        self,
        budget: int,
        branch_factor: int = 2,
        quantum: float = 1.0,
        max_branch_points: int = 8,
    ) -> ExplorationResult:
        """Breadth-first DPOR-lite over delay-slot assignments.

        The root is the uncontrolled baseline.  After each run, children are
        generated by perturbing one *later* branch point than the deepest
        already forced (each node is reached exactly once), but only when
        the run's fingerprint is novel — a schedule equivalent to one
        already seen proves its whole neighbourhood redundant, the sleep-set
        intuition.  Exploration stops at *budget* executed schedules or when
        the frontier empties, whichever is first.
        """
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        result = ExplorationResult(strategy="systematic", seed=self.seed, budget=budget)
        # Frontier entries: (forced assignment, index of the first branch
        # point a child may perturb).  BFS order = fewest perturbations first.
        frontier: List[Tuple[Dict[str, int], int]] = [({}, 0)]
        seen_fingerprints: Set[str] = set()
        schedule_id = 0
        while frontier and schedule_id < budget:
            forced, next_position = frontier.pop(0)
            strategy = SystematicStrategy(
                forced,
                branch_factor=branch_factor,
                quantum=quantum,
                max_branch_points=max_branch_points,
            )
            outcome = self._run(strategy, schedule_id)
            result.outcomes.append(outcome)
            schedule_id += 1
            if outcome.fingerprint in seen_fingerprints:
                result.deduplicated += 1
                continue  # equivalent schedule: prune this subtree
            seen_fingerprints.add(outcome.fingerprint)
            branch_points = strategy.branch_points
            for position in range(next_position, len(branch_points)):
                key = branch_points[position]
                if key in forced:
                    continue
                for slot in range(1, branch_factor):
                    child = dict(forced)
                    child[key] = slot
                    frontier.append((child, position + 1))
        return result
