"""Seed-controlled schedule fuzzing.

The fuzzer perturbs a run's schedule at the controller's choice points using
one private :class:`random.Random` stream, so a fuzzed schedule is a pure
function of its fuzz seed: the same seed replays the same perturbations (and
the recorded decision log replays them without the RNG at all).

Two independent knobs shape the search:

* ``reorder_probability`` / ``reorder_aggressiveness`` — how often a data
  message's delivery is delayed and by how much (in units of ``quantum``,
  which should be on the order of the fabric's typical one-hop latency).
  Delays *stretch* flight times only; shrinking could not reorder anything
  per-channel FIFO does not already forbid, and additive delays already
  reach every cross-channel arrival order;
* ``tie_shuffle_probability`` — how often a same-time scheduling tie is
  resolved against insertion order (process-scheduling perturbation);
* ``drop_probability`` / ``duplicate_probability`` — under the UD
  transport, how often a datagram is dropped (forcing a sender
  retransmission and usually a receiver-driven clock resync) or delivered
  twice.  Both default to 0 so RC runs spend no rolls on them; datagram
  *delays* reuse ``reorder_probability``/``reorder_aggressiveness``.

By default only *reorderable* messages are perturbed — data messages and
the lock requests that decide which conflicting access the target NIC
serializes first (see :func:`repro.explore.controller.is_reorderable`);
detection round-trips ride inside an operation that already holds the cell
lock, so perturbing them only re-explores equivalent schedules.  Set
``reorderable_only=False`` to fuzz every message kind.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.explore.controller import ScheduleStrategy, is_reorderable
from repro.net.message import Message


class ScheduleFuzzer(ScheduleStrategy):
    """Randomized schedule perturbation driven by one fuzz seed."""

    def __init__(
        self,
        seed: int = 0,
        reorder_probability: float = 0.35,
        reorder_aggressiveness: float = 2.0,
        quantum: float = 1.0,
        tie_shuffle_probability: float = 0.15,
        reorderable_only: bool = True,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        if not (0.0 <= reorder_probability <= 1.0):
            raise ValueError(
                f"reorder_probability must be in [0, 1], got {reorder_probability}"
            )
        if not (0.0 <= tie_shuffle_probability <= 1.0):
            raise ValueError(
                f"tie_shuffle_probability must be in [0, 1], got {tie_shuffle_probability}"
            )
        if reorder_aggressiveness < 0:
            raise ValueError(
                f"reorder_aggressiveness must be non-negative, got {reorder_aggressiveness}"
            )
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if not (0.0 <= drop_probability <= 1.0):
            raise ValueError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        if not (0.0 <= duplicate_probability <= 1.0):
            raise ValueError(
                f"duplicate_probability must be in [0, 1], got {duplicate_probability}"
            )
        if drop_probability + duplicate_probability > 1.0:
            raise ValueError(
                "drop_probability + duplicate_probability must not exceed 1, got "
                f"{drop_probability} + {duplicate_probability}"
            )
        self.seed = seed
        self.reorder_probability = reorder_probability
        self.reorder_aggressiveness = reorder_aggressiveness
        self.quantum = quantum
        self.tie_shuffle_probability = tie_shuffle_probability
        self.reorderable_only = reorderable_only
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._rng = random.Random(seed)

    def choose_latency(
        self, key: str, message: Message, model_flight: float
    ) -> Tuple[float, int]:
        if self.reorderable_only and not is_reorderable(message):
            return 0.0, 1
        roll = self._rng.random()
        if roll >= self.reorder_probability:
            return 0.0, 2
        extra = self._rng.uniform(
            0.0, self.reorder_aggressiveness * self.quantum
        )
        return extra, 2

    def choose_tie(self, key: str, eligible: int) -> Tuple[int, int]:
        roll = self._rng.random()
        if roll >= self.tie_shuffle_probability:
            return 0, eligible
        return self._rng.randrange(eligible), eligible

    def choose_rnr(
        self, key: str, attempt: int, base_backoff: float
    ) -> Tuple[float, int]:
        # RNR retry timers are perturbed like delivery latencies: stretching
        # a backoff explores which retransmission races which repost.
        roll = self._rng.random()
        if roll >= self.reorder_probability:
            return 0.0, 2
        extra = self._rng.uniform(0.0, self.reorder_aggressiveness * self.quantum)
        return extra, 2

    def choose_credit(
        self, key: str, receiver: int, sender: int
    ) -> Tuple[float, int]:
        # Credit grants are the credit-mode analogue of RNR backoffs:
        # stretching a grant explores which stalled sender claims a
        # contested receive buffer first.
        roll = self._rng.random()
        if roll >= self.reorder_probability:
            return 0.0, 2
        extra = self._rng.uniform(0.0, self.reorder_aggressiveness * self.quantum)
        return extra, 2

    def choose_cq_timer(self, key: str, base_usec: float) -> Tuple[float, int]:
        # Stretching a moderation timer races its expiry against arriving
        # completions — the flush-boundary interleavings where lost-wakeup
        # bugs live.
        roll = self._rng.random()
        if roll >= self.reorder_probability:
            return 0.0, 2
        extra = self._rng.uniform(0.0, self.reorder_aggressiveness * self.quantum)
        return extra, 2

    def choose_resync(
        self, key: str, since_resync: int, period: int
    ) -> Tuple[int, int]:
        # Deferring a due adaptive resync perturbs only byte accounting
        # (sparse frames still decode exactly), but it must be drawn from
        # the same RNG stream to keep fuzzed schedules seed-pure.
        roll = self._rng.random()
        if roll >= self.reorder_probability:
            return 0, 2
        return self._rng.randrange(1, 4), 2

    def choose_barrier(self, key: str, remaining: int) -> Tuple[int, int]:
        # Barrier fan-out order is shuffled like a scheduling tie.
        roll = self._rng.random()
        if roll >= self.tie_shuffle_probability:
            return 0, remaining
        return self._rng.randrange(remaining), remaining

    def choose_datagram_fate(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[int, int]:
        # One roll decides the fate so the stream stays seed-pure whatever
        # the configured rates: [0, drop) drops, [drop, drop+dup) duplicates.
        roll = self._rng.random()
        if roll < self.drop_probability:
            return 1, 3
        if roll < self.drop_probability + self.duplicate_probability:
            return 2, 3
        return 0, 3

    def choose_datagram_delay(
        self, key: str, message: Message, source: int, destination: int
    ) -> Tuple[float, int]:
        # Datagram delays reuse the reorder knobs; the UD channel applies
        # them without a FIFO clamp, so every stretch is a real reorder.
        roll = self._rng.random()
        if roll >= self.reorder_probability:
            return 0.0, 2
        extra = self._rng.uniform(0.0, self.reorder_aggressiveness * self.quantum)
        return extra, 2

    def describe(self) -> str:
        return (
            f"fuzz(seed={self.seed}, p={self.reorder_probability}, "
            f"aggr={self.reorder_aggressiveness})"
        )
