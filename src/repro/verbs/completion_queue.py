"""Completion queues.

Real-verbs analogue: ``ibv_cq`` / ``ibv_poll_cq`` / ``ibv_req_notify_cq``.

A :class:`CompletionQueue` is where the NIC parks :class:`WorkCompletion`
records for the initiating process to retire.  Retirement is either
*polling* (:meth:`CompletionQueue.poll`, non-blocking, the busy-wait idiom of
latency-sensitive RDMA programs) or *waiting* (:meth:`CompletionQueue.wait`,
a generator the simulated process yields from, the blocking ``ibv_get_cq_event``
idiom).  A bounded CQ overflows when completions arrive faster than the
application retires them — a real verbs failure mode, reproduced here so
workloads must size their queues.

A CQ may additionally be attached to an
:class:`~repro.verbs.event_channel.EventChannel` (the ``ibv_comp_channel``
analogue): :meth:`CompletionQueue.arm` requests *one* notification
(``ibv_req_notify_cq``), delivered to the channel when the next completion
arrives — or immediately, if completions are already waiting, closing the
classic arm/poll race window.

:class:`CqModerationTimer` is the InfiniBand ``(cq_count, cq_usec)``
interrupt-moderation protocol (``ibv_modify_cq`` moderation attributes):
completions accumulate and flush as one CQE event on whichever bound trips
first — the count, or a timer armed when the batch opened.  Unlike the
per-drain-burst coalescing of ``cq_moderation=True``, the timer coalesces
*across* drain bursts and bounds the added retirement latency by
``cq_usec``.  Each armed timer's expiry routes through
:meth:`~repro.explore.controller.ScheduleController.on_cq_timer` as a
logged, replayable decision point — timer-expiry boundaries against
arriving completions are where lost-wakeup bugs live.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.verbs.work import WorkCompletion

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.event_channel import EventChannel


class CompletionQueueOverflow(RuntimeError):
    """Raised when a completion arrives at a full bounded completion queue."""


class CompletionQueue:
    """A FIFO of work completions integrated with the simulation kernel."""

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._sim = sim
        self._capacity = capacity
        self.name = name or "cq"
        self._ready: List[WorkCompletion] = []
        self._armed: List[Event] = []
        self._total_pushed = 0
        self._events = 0
        self._channel: Optional["EventChannel"] = None
        self._notify_armed = False

    # -- producer side (queue pairs) -----------------------------------------------

    def _push_one(self, completion: WorkCompletion) -> None:
        if self._capacity is not None and len(self._ready) >= self._capacity:
            raise CompletionQueueOverflow(
                f"{self.name}: {len(self._ready)} unretired completions "
                f"(capacity {self._capacity}); poll or wait more often"
            )
        self._ready.append(completion)
        self._total_pushed += 1
        if self._armed:
            self._armed.pop(0).succeed(completion)
        self._maybe_notify()

    def push(self, completion: WorkCompletion) -> None:
        """Deliver one completion; wakes at most one waiter per completion."""
        self._push_one(completion)
        self._events += 1

    def push_batch(self, completions: List[WorkCompletion]) -> None:
        """Deliver a coalesced drain burst as ONE completion event.

        The CQ-moderation analogue: every completion in the burst becomes
        individually retirable (waiters wake exactly as under
        one-at-a-time delivery, so consumer semantics are unchanged), but
        the burst counts as a single CQE delivery in :attr:`events` — the
        figure the moderation benchmarks track.
        """
        for completion in completions:
            self._push_one(completion)
        if completions:
            self._events += 1

    # -- event-channel side (ibv_comp_channel) ----------------------------------------

    def set_channel(self, channel: "EventChannel") -> None:
        """Bind this CQ to an event channel (done by ``EventChannel.attach``).

        A CQ belongs to at most one channel for its lifetime, as in verbs
        (``ibv_create_cq`` takes the channel at creation).
        """
        if self._channel is not None and self._channel is not channel:
            raise ValueError(
                f"{self.name} is already attached to channel {self._channel.name}"
            )
        self._channel = channel

    @property
    def channel(self) -> Optional["EventChannel"]:
        """The event channel this CQ notifies, if any."""
        return self._channel

    def arm(self) -> None:
        """Request one notification on the attached channel (``ibv_req_notify_cq``).

        One arm buys one event: the channel is notified when the next
        completion arrives, then the CQ disarms until re-armed.  Arming a CQ
        that already holds unretired completions notifies immediately — the
        guard against the lost-wakeup race between polling and arming.
        """
        if self._channel is None:
            raise RuntimeError(f"{self.name} is not attached to an event channel")
        self._notify_armed = True
        self._maybe_notify()

    def _maybe_notify(self) -> None:
        if self._notify_armed and self._channel is not None and self._ready:
            self._notify_armed = False
            self._channel._notify(self)

    # -- consumer side --------------------------------------------------------------

    @staticmethod
    def _retire(completions: List[WorkCompletion]) -> List[WorkCompletion]:
        """Handing completions to the caller IS retirement: fire the hooks.

        Hooks fire newest-first: every completion in the batch is being
        claimed by the same poll/wait call, and retirement clock merges are
        commutative, so the order is semantically free — but firing the
        newest first lets the clock-transport layer's per-queue-pair
        batching elide the older siblings' joins (their batched clocks are
        dominated by the newest one's), which is what makes a burst of
        posts cost one clock merge per drain instead of one per access.
        """
        for completion in reversed(completions):
            completion.fire_retirement()
        return completions

    def poll(self, max_entries: Optional[int] = None) -> List[WorkCompletion]:
        """Retire up to *max_entries* available completions without blocking."""
        if max_entries is None or max_entries >= len(self._ready):
            out, self._ready = self._ready, []
            return self._retire(out)
        out = self._ready[:max_entries]
        del self._ready[:max_entries]
        return self._retire(out)

    def wait(self, count: int = 1):
        """Generator: block the calling process until *count* completions retire.

        Returns the list of retired completions, in delivery order.  Multiple
        processes may wait on one CQ; each delivered completion wakes exactly
        one of them.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        retired: List[WorkCompletion] = []
        spans = Observability.of(self._sim).spans
        while len(retired) < count:
            if self._ready:
                retired.append(self._ready.pop(0))
                continue
            gate = self._sim.event(name=f"{self.name}:wait")
            self._armed.append(gate)
            wait_started = self._sim.now
            yield gate
            # Blocked time on the process's own track: the critical-path
            # analyzer treats this as elastic wait ending at the delivery
            # that woke us.
            spans.complete(
                self._wait_track(), "cq_wait", wait_started, self._sim.now,
                cq=self.name,
            )
        return self._retire(retired)

    def _wait_track(self) -> str:
        """The rank track blocked waits render on (the CQ's own name if the
        queue is not rank-suffixed)."""
        tail = self.name.rsplit("P", 1)[-1] if "P" in self.name else ""
        return f"rank-P{tail}" if tail.isdigit() else self.name

    # -- inspection ------------------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        """Maximum number of unretired completions (``None`` = unbounded)."""
        return self._capacity

    @property
    def depth(self) -> int:
        """Completions currently available to retire."""
        return len(self._ready)

    @property
    def total_pushed(self) -> int:
        """Completions ever delivered to this queue."""
        return self._total_pushed

    @property
    def events(self) -> int:
        """Completion events (CQE deliveries) this queue has seen.

        Equal to :attr:`total_pushed` under one-at-a-time delivery; smaller
        under CQ moderation, where :meth:`push_batch` coalesces a whole
        drain burst into one event.
        """
        return self._events

    def __len__(self) -> int:
        return len(self._ready)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompletionQueue {self.name} depth={self.depth}>"


def validate_cq_moderation_timer(value) -> Optional[Tuple[int, float]]:
    """Validate a ``(cq_count, cq_usec)`` pair; ``None`` disables the timer."""
    if value is None:
        return None
    try:
        count, usec = value
    except (TypeError, ValueError):
        raise ValueError(
            f"cq_moderation_timer must be a (cq_count, cq_usec) pair, got {value!r}"
        ) from None
    if isinstance(count, bool) or not isinstance(count, int) or count < 1:
        raise ValueError(f"cq_count must be a positive integer, got {count!r}")
    usec = float(usec)
    if usec <= 0:
        raise ValueError(f"cq_usec must be positive, got {usec!r}")
    return count, usec


class CqModerationTimer:
    """``(cq_count, cq_usec)`` moderation over one context's send CQ.

    Completions delivered while the timer runs accumulate in a batch; the
    batch flushes as ONE completion event (via the context's
    ``deliver_burst``) when the *count* bound is reached, when the armed
    timer expires, or when a bounded CQ could not absorb one more pending
    completion.  The time a flushed batch spent accumulating is rendered as
    a ``timer_wait`` span on the rank's track, so the critical-path
    analyzer can attribute — and ``whatif`` rescale — moderation-added
    latency.
    """

    def __init__(self, context, count: int, usec: float) -> None:
        self._context = context
        self._sim = context.sim
        self.count = count
        self.usec = usec
        self._pending: List[WorkCompletion] = []
        self._generation = 0
        self._armed_at: Optional[float] = None
        #: Flushes by trigger, for tests and benchmarks.
        self.flushes = {"count": 0, "timer": 0, "capacity": 0}

    @property
    def pending(self) -> int:
        """Completions accumulated and not yet flushed."""
        return len(self._pending)

    def submit(self, completion: WorkCompletion) -> None:
        """Accept one completion; flush on whichever bound trips first."""
        cq = self._context.cq
        if (
            cq.capacity is not None
            and self._pending
            and len(self._pending) >= cq.capacity - cq.depth
        ):
            # A bounded CQ cannot absorb the batch plus this completion:
            # flush early rather than overflow at the eventual timer.
            self._flush("capacity")
        if not self._pending:
            self._armed_at = self._sim.now
            self._arm()
        self._pending.append(completion)
        if len(self._pending) >= self.count:
            self._flush("count")

    def _arm(self) -> None:
        delay = self.usec
        controller = getattr(self._sim, "controller", None)
        if controller is not None and hasattr(controller, "on_cq_timer"):
            # The schedule controller owns the timer's expiry: stretching it
            # races the flush against arriving completions (a logged,
            # replayable decision), exactly as it owns RNR backoffs.
            delay = controller.on_cq_timer(self._context.rank, self.usec)
        generation = self._generation
        self._sim.call_after(
            delay,
            lambda: self._on_timer(generation),
            name=f"cq-timer:P{self._context.rank}",
        )

    def _on_timer(self, generation: int) -> None:
        if generation != self._generation:
            return  # the batch this timer was armed for already flushed
        self._flush("timer")

    def _flush(self, reason: str) -> None:
        self._generation += 1  # logically cancel the armed timer
        batch, self._pending = self._pending, []
        armed_at, self._armed_at = self._armed_at, None
        if not batch:
            return
        self.flushes[reason] += 1
        obs = Observability.of(self._sim)
        if armed_at is not None and self._sim.now > armed_at:
            obs.spans.complete(
                self._context.track, "timer_wait", armed_at, self._sim.now,
                reason=reason, coalesced=len(batch),
            )
        obs.metrics.counter(
            "verbs.cq_timer_flushes", rank=self._context.rank, reason=reason
        ).inc()
        self._context.deliver_burst(batch)
