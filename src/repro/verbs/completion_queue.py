"""Completion queues.

Real-verbs analogue: ``ibv_cq`` / ``ibv_poll_cq`` / ``ibv_req_notify_cq``.

A :class:`CompletionQueue` is where the NIC parks :class:`WorkCompletion`
records for the initiating process to retire.  Retirement is either
*polling* (:meth:`CompletionQueue.poll`, non-blocking, the busy-wait idiom of
latency-sensitive RDMA programs) or *waiting* (:meth:`CompletionQueue.wait`,
a generator the simulated process yields from, the blocking ``ibv_get_cq_event``
idiom).  A bounded CQ overflows when completions arrive faster than the
application retires them — a real verbs failure mode, reproduced here so
workloads must size their queues.

A CQ may additionally be attached to an
:class:`~repro.verbs.event_channel.EventChannel` (the ``ibv_comp_channel``
analogue): :meth:`CompletionQueue.arm` requests *one* notification
(``ibv_req_notify_cq``), delivered to the channel when the next completion
arrives — or immediately, if completions are already waiting, closing the
classic arm/poll race window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.verbs.work import WorkCompletion

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.event_channel import EventChannel


class CompletionQueueOverflow(RuntimeError):
    """Raised when a completion arrives at a full bounded completion queue."""


class CompletionQueue:
    """A FIFO of work completions integrated with the simulation kernel."""

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._sim = sim
        self._capacity = capacity
        self.name = name or "cq"
        self._ready: List[WorkCompletion] = []
        self._armed: List[Event] = []
        self._total_pushed = 0
        self._events = 0
        self._channel: Optional["EventChannel"] = None
        self._notify_armed = False

    # -- producer side (queue pairs) -----------------------------------------------

    def _push_one(self, completion: WorkCompletion) -> None:
        if self._capacity is not None and len(self._ready) >= self._capacity:
            raise CompletionQueueOverflow(
                f"{self.name}: {len(self._ready)} unretired completions "
                f"(capacity {self._capacity}); poll or wait more often"
            )
        self._ready.append(completion)
        self._total_pushed += 1
        if self._armed:
            self._armed.pop(0).succeed(completion)
        self._maybe_notify()

    def push(self, completion: WorkCompletion) -> None:
        """Deliver one completion; wakes at most one waiter per completion."""
        self._push_one(completion)
        self._events += 1

    def push_batch(self, completions: List[WorkCompletion]) -> None:
        """Deliver a coalesced drain burst as ONE completion event.

        The CQ-moderation analogue: every completion in the burst becomes
        individually retirable (waiters wake exactly as under
        one-at-a-time delivery, so consumer semantics are unchanged), but
        the burst counts as a single CQE delivery in :attr:`events` — the
        figure the moderation benchmarks track.
        """
        for completion in completions:
            self._push_one(completion)
        if completions:
            self._events += 1

    # -- event-channel side (ibv_comp_channel) ----------------------------------------

    def set_channel(self, channel: "EventChannel") -> None:
        """Bind this CQ to an event channel (done by ``EventChannel.attach``).

        A CQ belongs to at most one channel for its lifetime, as in verbs
        (``ibv_create_cq`` takes the channel at creation).
        """
        if self._channel is not None and self._channel is not channel:
            raise ValueError(
                f"{self.name} is already attached to channel {self._channel.name}"
            )
        self._channel = channel

    @property
    def channel(self) -> Optional["EventChannel"]:
        """The event channel this CQ notifies, if any."""
        return self._channel

    def arm(self) -> None:
        """Request one notification on the attached channel (``ibv_req_notify_cq``).

        One arm buys one event: the channel is notified when the next
        completion arrives, then the CQ disarms until re-armed.  Arming a CQ
        that already holds unretired completions notifies immediately — the
        guard against the lost-wakeup race between polling and arming.
        """
        if self._channel is None:
            raise RuntimeError(f"{self.name} is not attached to an event channel")
        self._notify_armed = True
        self._maybe_notify()

    def _maybe_notify(self) -> None:
        if self._notify_armed and self._channel is not None and self._ready:
            self._notify_armed = False
            self._channel._notify(self)

    # -- consumer side --------------------------------------------------------------

    @staticmethod
    def _retire(completions: List[WorkCompletion]) -> List[WorkCompletion]:
        """Handing completions to the caller IS retirement: fire the hooks.

        Hooks fire newest-first: every completion in the batch is being
        claimed by the same poll/wait call, and retirement clock merges are
        commutative, so the order is semantically free — but firing the
        newest first lets the clock-transport layer's per-queue-pair
        batching elide the older siblings' joins (their batched clocks are
        dominated by the newest one's), which is what makes a burst of
        posts cost one clock merge per drain instead of one per access.
        """
        for completion in reversed(completions):
            completion.fire_retirement()
        return completions

    def poll(self, max_entries: Optional[int] = None) -> List[WorkCompletion]:
        """Retire up to *max_entries* available completions without blocking."""
        if max_entries is None or max_entries >= len(self._ready):
            out, self._ready = self._ready, []
            return self._retire(out)
        out = self._ready[:max_entries]
        del self._ready[:max_entries]
        return self._retire(out)

    def wait(self, count: int = 1):
        """Generator: block the calling process until *count* completions retire.

        Returns the list of retired completions, in delivery order.  Multiple
        processes may wait on one CQ; each delivered completion wakes exactly
        one of them.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        retired: List[WorkCompletion] = []
        spans = Observability.of(self._sim).spans
        while len(retired) < count:
            if self._ready:
                retired.append(self._ready.pop(0))
                continue
            gate = self._sim.event(name=f"{self.name}:wait")
            self._armed.append(gate)
            wait_started = self._sim.now
            yield gate
            # Blocked time on the process's own track: the critical-path
            # analyzer treats this as elastic wait ending at the delivery
            # that woke us.
            spans.complete(
                self._wait_track(), "cq_wait", wait_started, self._sim.now,
                cq=self.name,
            )
        return self._retire(retired)

    def _wait_track(self) -> str:
        """The rank track blocked waits render on (the CQ's own name if the
        queue is not rank-suffixed)."""
        tail = self.name.rsplit("P", 1)[-1] if "P" in self.name else ""
        return f"rank-P{tail}" if tail.isdigit() else self.name

    # -- inspection ------------------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        """Maximum number of unretired completions (``None`` = unbounded)."""
        return self._capacity

    @property
    def depth(self) -> int:
        """Completions currently available to retire."""
        return len(self._ready)

    @property
    def total_pushed(self) -> int:
        """Completions ever delivered to this queue."""
        return self._total_pushed

    @property
    def events(self) -> int:
        """Completion events (CQE deliveries) this queue has seen.

        Equal to :attr:`total_pushed` under one-at-a-time delivery; smaller
        under CQ moderation, where :meth:`push_batch` coalesces a whole
        drain burst into one event.
        """
        return self._events

    def __len__(self) -> int:
        return len(self._ready)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompletionQueue {self.name} depth={self.depth}>"
