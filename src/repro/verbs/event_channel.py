"""Completion event channels: select over several CQs, react on arrival.

Real-verbs analogue: ``ibv_comp_channel`` / ``ibv_create_comp_channel`` /
``ibv_get_cq_event``.

:meth:`CompletionQueue.wait` blocks one process on one queue, which is enough
for SPMD phases but not for a server that owns several completion queues
(e.g. a receive CQ fed by an SRQ plus a send CQ for the replies) and must
react to whichever fires first.  An :class:`EventChannel` is the missing
multiplexer: completion queues *attach* to a channel, a consumer *arms* a CQ
to request one notification (``ibv_req_notify_cq``), and :meth:`wait` returns
whichever armed CQ produced a completion — the ``select()`` of the verbs
world.  :meth:`serve` wraps the canonical event loop (wait, drain, handle,
re-arm) so reactive server programs reduce to a completion handler callback.

Posting work never blocks in this model, so handlers are free to post sends
and receives directly — the RPC echo server answers requests entirely from
inside its handler.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.verbs.completion_queue import CompletionQueue
from repro.verbs.work import WorkCompletion


class EventChannel:
    """Multiplexes completion notifications from several completion queues."""

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self._sim = sim
        self.name = name or "comp-channel"
        self._attached: List[CompletionQueue] = []
        #: CQs that fired while nobody was waiting, in notification order.
        self._pending: List[CompletionQueue] = []
        self._waiters: List[Event] = []
        self.events_delivered = 0

    # -- wiring -------------------------------------------------------------------

    def attach(self, cq: CompletionQueue) -> CompletionQueue:
        """Bind *cq* to this channel; it still needs :meth:`~CompletionQueue.arm`."""
        cq.set_channel(self)
        if cq not in self._attached:
            self._attached.append(cq)
        return cq

    @property
    def attached(self) -> List[CompletionQueue]:
        """The completion queues bound to this channel, in attach order."""
        return list(self._attached)

    def arm_all(self) -> None:
        """Request one notification from every attached CQ."""
        for cq in self._attached:
            cq.arm()

    # -- producer side (called by CompletionQueue) -----------------------------------

    def _notify(self, cq: CompletionQueue) -> None:
        """One armed CQ has completions; wake one waiter or queue the event."""
        self.events_delivered += 1
        if self._waiters:
            self._waiters.pop(0).succeed(cq)
        else:
            self._pending.append(cq)

    # -- consumer side ------------------------------------------------------------------

    def poll(self) -> Optional[CompletionQueue]:
        """Return the next notified CQ without blocking, or ``None``."""
        if self._pending:
            return self._pending.pop(0)
        return None

    def wait(self):
        """Generator: block until some armed CQ fires; returns that CQ.

        The ``ibv_get_cq_event`` idiom: the caller then drains the CQ with
        ``poll()`` and re-arms it before waiting again.  Events queued while
        nobody was waiting are delivered first, in notification order.
        """
        if self._pending:
            return self._pending.pop(0)
        gate = self._sim.event(name=f"{self.name}:wait")
        self._waiters.append(gate)
        wait_started = self._sim.now
        yield gate
        Observability.of(self._sim).spans.complete(
            self._wait_track(), "evch_wait", wait_started, self._sim.now,
            channel=self.name,
        )
        return gate.value

    def _wait_track(self) -> str:
        """The rank track blocked waits render on (the channel's own name if
        it is not rank-suffixed)."""
        tail = self.name.rsplit("P", 1)[-1] if "P" in self.name else ""
        return f"rank-P{tail}" if tail.isdigit() else self.name

    def serve(
        self,
        handler: Callable[[WorkCompletion], None],
        stop: Callable[[], bool],
    ):
        """Generator: the canonical completion-driven event loop.

        Arms every attached CQ, then repeats *wait → drain → handle → re-arm*
        until ``stop()`` returns true (checked before each wait and after
        each drained batch, so a handler that satisfies the stop condition
        terminates the loop without waiting for another event).  Returns the
        number of completions handled.
        """
        self.arm_all()
        handled = 0
        while not stop():
            cq = yield from self.wait()
            for completion in cq.poll():
                handler(completion)
                handled += 1
            cq.arm()
        return handled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventChannel {self.name} cqs={len(self._attached)} "
            f"pending={len(self._pending)}>"
        )
