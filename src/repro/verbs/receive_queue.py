"""Posted receive buffers: per-QP receive queues and shared receive queues.

Real-verbs analogue: ``ibv_post_recv``, ``ibv_recv_wr`` and ``ibv_srq`` /
``ibv_create_srq`` / ``ibv_post_srq_recv``.

The two-sided half of the verbs model inverts the one-sided contract: the
*receiver* decides where incoming data lands by posting
:class:`ReceiveWorkRequest` buffers — scatter lists of its own addresses —
before the matching SEND arrives.  Matching is strictly FIFO (verbs has no
tag matching: the first posted receive consumes the first arriving send), and
a SEND that finds the queue empty hits the RNR (receiver-not-ready) condition
(:class:`RecvQueueEmpty`), which the sending NIC answers with the RC retry
protocol.

Two flavours:

* :class:`ReceiveQueue` — one queue pair's private receive queue: only sends
  from that QP's peer consume from it;
* :class:`SharedReceiveQueue` — the ``ibv_srq`` analogue: one pool of posted
  buffers that *every* attached queue pair drains from, so a server sizes its
  buffering for aggregate load instead of per-client worst case.  Per-source
  match counters record which peers actually consumed buffers.  An SRQ also
  carries the low-watermark *limit* event of real hardware
  (``IBV_EVENT_SRQ_LIMIT_REACHED`` via ``ibv_modify_srq``/``IBV_SRQ_LIMIT``):
  arm a threshold and one asynchronous event fires when the pool drops below
  it — the hook servers use to replenish receives in bulk instead of one per
  completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional, Set, Tuple

from repro.memory.address import GlobalAddress
from repro.net.nic import ReceiverNotReady
from repro.util.validation import require_positive


class ReceiveQueueFull(RuntimeError):
    """Raised when posting to a receive queue already at ``max_wr`` capacity."""


class RecvQueueEmpty(ReceiverNotReady):
    """A SEND arrived (or a match was attempted) with no receive posted.

    Subclasses the NIC-level :class:`~repro.net.nic.ReceiverNotReady` so the
    sending NIC's RNR retry protocol catches it without the net layer ever
    importing the verbs package.
    """


@dataclass
class ReceiveWorkRequest:
    """One posted receive buffer: a scatter list of receiver-local addresses.

    The verbs analogue is an ``ibv_recv_wr`` whose SGE list names
    ``len(addresses)`` cells.  A matched SEND deposits payload cell *i* into
    ``addresses[i]``; a payload shorter than the buffer leaves the tail cells
    untouched, a longer one is a length error that consumes the buffer
    without writing anything.

    ``clock_snapshot`` is the receiver's vector clock captured when the
    buffer was posted: posting is the permission point — a matched delivery
    is causally *after both* the SEND post and this RECV post, so the scatter
    writes carry the merge of the two snapshots.  That is what lets a
    reposted buffer absorb sends from unsynchronized peers without a race
    report, while a buffer scribbled on *after* posting still races with the
    in-flight payload.
    """

    wr_id: int
    addresses: Tuple[GlobalAddress, ...]
    symbol: Optional[str] = None
    posted_at: float = 0.0
    clock_snapshot: object = None

    @property
    def capacity(self) -> int:
        """Number of cells this buffer can absorb."""
        return len(self.addresses)

    def __str__(self) -> str:
        return f"recv-wr#{self.wr_id} ({self.capacity} cells)"


class ReceiveQueue:
    """A FIFO of posted receives, consumed in order by matching sends."""

    def __init__(self, rank: int, max_wr: int = 128, name: Optional[str] = None) -> None:
        require_positive(max_wr, "max_wr")
        self.rank = rank
        self.max_wr = max_wr
        self.name = name or f"rq-P{rank}"
        self._pending: Deque[ReceiveWorkRequest] = deque()
        self.posted = 0
        self.matched = 0
        #: Buffers consumed per sending rank (who actually drained us).
        self.matched_by: Dict[int, int] = {}
        self._post_listener = None

    def set_post_listener(self, listener) -> None:
        """Install a callback fired after every successful post.

        Credit-based flow control hooks this: each posted buffer is one
        credit, and the listener is where a stalled sender's grant is
        scheduled (see :class:`repro.net.flow_control.CreditGate`).
        """
        self._post_listener = listener

    # -- posting (receiver side) ---------------------------------------------------

    def post(self, request: ReceiveWorkRequest) -> ReceiveWorkRequest:
        """Append *request*; raises :class:`ReceiveQueueFull` at capacity.

        Every scatter address must be local to the owning rank: a receive
        buffer is the receiver's own memory by definition.
        """
        for address in request.addresses:
            if address.rank != self.rank:
                raise ValueError(
                    f"{self.name}: receive buffer address {address} is not "
                    f"local to rank {self.rank}"
                )
        if len(self._pending) >= self.max_wr:
            raise ReceiveQueueFull(
                f"{self.name}: {len(self._pending)} receives already posted "
                f"(max {self.max_wr})"
            )
        self._pending.append(request)
        self.posted += 1
        if self._post_listener is not None:
            self._post_listener()
        return request

    # -- matching (target NIC side) --------------------------------------------------

    def match(self, source: int) -> ReceiveWorkRequest:
        """Consume and return the head receive for a SEND from *source*.

        Raises :class:`RecvQueueEmpty` when nothing is posted — the RNR
        condition the sending NIC retries on.
        """
        if not self._pending:
            raise RecvQueueEmpty(
                f"{self.name}: no receive posted for send from rank {source}"
            )
        request = self._pending.popleft()
        self.matched += 1
        self.matched_by[source] = self.matched_by.get(source, 0) + 1
        return request

    # -- inspection -------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Receives currently posted and unconsumed."""
        return len(self._pending)

    def pending(self) -> Iterable[ReceiveWorkRequest]:
        """The unconsumed receives, head first (for tests and debugging)."""
        return tuple(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} depth={self.depth}>"


class SharedReceiveQueue(ReceiveQueue):
    """An ``ibv_srq``: one receive pool drained by every attached queue pair.

    Mechanically identical to a :class:`ReceiveQueue` — FIFO consumption,
    bounded posting, RNR on empty — but shared: the verbs layer points each
    attached queue pair's receive side at this object, so sends from *any*
    attached peer consume from the common pool in arrival order.
    """

    def __init__(self, rank: int, max_wr: int = 128, name: Optional[str] = None) -> None:
        super().__init__(rank, max_wr=max_wr, name=name or f"srq-P{rank}")
        self._attached: Set[int] = set()
        self._limit = 0
        self._limit_listener = None
        #: Low-watermark events fired over this SRQ's lifetime.
        self.limit_events_fired = 0

    def attach(self, peer: int) -> None:
        """Record that the queue pair facing *peer* drains from this SRQ."""
        self._attached.add(peer)

    @property
    def attached_peers(self) -> Tuple[int, ...]:
        """Ranks whose queue pairs share this SRQ, in sorted order."""
        return tuple(sorted(self._attached))

    # -- limit events (IBV_EVENT_SRQ_LIMIT_REACHED) -----------------------------------

    @property
    def limit(self) -> int:
        """The armed low watermark (0 when disarmed)."""
        return self._limit

    def set_limit_listener(self, listener) -> None:
        """Install the callback fired (with the depth) when the limit trips."""
        self._limit_listener = listener

    def arm_limit(self, threshold: int) -> None:
        """Arm a one-shot low-watermark event at *threshold* posted buffers.

        The verbs contract: the event fires when a consumed receive drops
        the pool strictly below the limit, then the limit resets to zero
        (disarmed) until the application re-arms it — one warning per
        replenish cycle, not a storm.
        """
        require_positive(threshold, "threshold")
        if threshold > self.max_wr:
            raise ValueError(
                f"{self.name}: limit {threshold} exceeds queue capacity {self.max_wr}"
            )
        self._limit = threshold

    def match(self, source: int) -> ReceiveWorkRequest:
        request = super().match(source)
        if self._limit and len(self._pending) < self._limit:
            self._limit = 0
            self.limit_events_fired += 1
            if self._limit_listener is not None:
                self._limit_listener(len(self._pending))
        return request
