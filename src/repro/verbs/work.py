"""Work requests and work completions — the currency of the verbs layer.

Real-verbs analogue: ``ibv_post_send`` / ``ibv_send_wr`` / ``ibv_wc``.

The verbs programming surface splits every operation in two: the initiator
*posts* a :class:`WorkRequest` describing the operation and immediately
regains control, and later *retires* a :class:`WorkCompletion` from a
completion queue once the NIC has serviced it.  The interval between the two
is exactly the communication/computation overlap the paper's one-sided model
promises but the blocking ``put``/``get`` API cannot express.

Two families of opcode share the machinery:

* **one-sided** (PUT / GET / FETCH_ADD / COMPARE_AND_SWAP) — the initiator
  names the remote address and presents an rkey; the target *process* is
  never involved;
* **two-sided** (SEND, whose target-side twin is the RECV completion) — the
  initiator names only the peer; where the payload lands is decided by the
  receive buffer the target posted (:mod:`repro.verbs.receive_queue`).  A
  SEND gathers a multi-cell payload (an SGE list), the matched receive
  scatters it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.memory.address import GlobalAddress
from repro.net.nic import RemoteOperationResult


class Opcode(enum.Enum):
    """Operation carried by a work request (``IBV_WR_*`` / ``IBV_WC_*``)."""

    PUT = "put"                            # RDMA write
    GET = "get"                            # RDMA read
    FETCH_ADD = "fetch_add"                # atomic fetch-and-add
    COMPARE_AND_SWAP = "compare_and_swap"  # atomic compare-and-swap
    SEND = "send"                          # two-sided send (IBV_WR_SEND)
    RECV = "recv"                          # receive completion (IBV_WC_RECV);
    #                                        never posted as a WorkRequest —
    #                                        receives are posted through
    #                                        repro.verbs.receive_queue

    @property
    def returns_value(self) -> bool:
        """True when the completion carries a value back to the retiring side."""
        return self in (
            Opcode.GET, Opcode.FETCH_ADD, Opcode.COMPARE_AND_SWAP, Opcode.RECV
        )

    @property
    def is_atomic(self) -> bool:
        """True for the read-modify-write opcodes."""
        return self in (Opcode.FETCH_ADD, Opcode.COMPARE_AND_SWAP)

    @property
    def is_two_sided(self) -> bool:
        """True for the opcodes that require receiver participation."""
        return self in (Opcode.SEND, Opcode.RECV)


class CompletionStatus(enum.Enum):
    """Outcome of one work request (``IBV_WC_*`` analogues)."""

    SUCCESS = "success"
    #: The supplied rkey does not grant access to the target address — the
    #: verbs equivalent of a protection fault, reported through the
    #: completion rather than raised at the post site.
    REMOTE_ACCESS_ERROR = "remote-access-error"
    #: A SEND gave up after its RNR retry budget: the receiver never posted a
    #: buffer (``IBV_WC_RNR_RETRY_EXC_ERR``).
    RNR_RETRY_EXCEEDED = "rnr-retry-exceeded"
    #: A SEND's payload overran the matched receive buffer
    #: (``IBV_WC_LOC_LEN_ERR``); the receive was consumed, no memory written.
    LENGTH_ERROR = "length-error"
    #: A UD datagram (or its resync subprotocol) exhausted the
    #: retransmission budget (``nic.ud_max_retransmits``) — the unreliable
    #: transport's twin of RNR-retry exhaustion, reported through the
    #: completion rather than raised at the post site.
    UD_DELIVERY_EXCEEDED = "ud-delivery-exceeded"


class CompletionError(RuntimeError):
    """A waited-on work request retired with a non-success status.

    Raised by the blocking helpers for transport-level failures (RNR retry
    exhaustion, length errors); rkey protection faults keep raising the more
    specific :class:`~repro.verbs.memory_registration.RemoteAccessError`.

    ``completions`` carries every completion retired by the failing call —
    including the successful siblings, which have already been claimed and
    cannot be re-waited — so a server can recover the good payloads (and
    repost their buffers) after one bad peer.
    """

    def __init__(self, message: str, completions: Any = None) -> None:
        super().__init__(message)
        self.completions = list(completions) if completions is not None else []


@dataclass
class WorkRequest:
    """One posted, not-yet-completed operation.

    Attributes
    ----------
    wr_id:
        Initiator-unique identifier; completions carry it back so callers can
        match them to requests (the verbs contract).
    opcode:
        What to do at the target.
    target:
        Global address the operation acts on (one-sided opcodes).  ``None``
        for SEND: a two-sided operation names no remote memory — the landing
        addresses come from the receiver's posted buffer.
    rkey:
        Remote key naming the registered region that covers *target*; checked
        at the target before the memory is touched.  ``None`` for SEND (no
        capability needed — that is the point of two-sided transfer).
    peer:
        Destination rank for SEND; ``None`` for one-sided opcodes (where the
        destination is ``target.rank``).
    value:
        Put: the value to deposit.  Fetch-add: the addend.  CAS: the value to
        swap in.  Unused for get and send.
    compare:
        CAS only: the expected current value.
    payload:
        SEND only: the gathered payload values, one per cell (the SGE list's
        contents; may be empty for a pure-synchronization zero-length send).
    gather_from:
        SEND only: local addresses to read (instrumented) at service time and
        append to *payload* — the gather half of scatter/gather.
    clock_snapshot:
        The poster's vector clock captured at post time — for *every*
        opcode, one- and two-sided alike (the unified clock-transport
        discipline).  The message carries it: a SEND's scatter writes use
        its join with the receive buffer's post-time snapshot, and a posted
        one-sided operation is checked at the target with the snapshot as
        its event clock (never the origin's live clock, which would
        manufacture ordering the NIC engine does not have).  The origin
        synchronizes only at completion retirement.
    symbol:
        Symbolic name of the shared variable, for traces and race reports.
    posted_at:
        Simulated time the request entered its queue pair.
    """

    wr_id: int
    opcode: Opcode
    target: Optional[GlobalAddress]
    rkey: Optional[int]
    peer: Optional[int] = None
    value: Any = None
    compare: Any = None
    payload: Optional[Tuple[Any, ...]] = None
    gather_from: Optional[Tuple[GlobalAddress, ...]] = None
    clock_snapshot: Any = None
    symbol: Optional[str] = None
    posted_at: float = 0.0

    @property
    def destination_rank(self) -> int:
        """The rank this request is bound for (target owner, or SEND peer)."""
        if self.target is not None:
            return self.target.rank
        if self.peer is None:
            raise ValueError(f"work request {self.wr_id} has neither target nor peer")
        return self.peer

    def __str__(self) -> str:
        where = self.target if self.target is not None else f"P{self.peer}"
        return f"wr#{self.wr_id} {self.opcode.value}->{where}"


@dataclass
class WorkCompletion:
    """The retired form of one work request.

    ``value`` is what the operation returned to the retiring side: the value
    read (get), the prior value of the cell (atomics), the delivered payload
    tuple (recv), or ``None`` (put, send).  ``result`` is the underlying
    NIC-level operation record when the request was actually serviced
    (``None`` for requests failed before servicing).  For RECV completions,
    ``addresses`` is the scatter list of the consumed receive buffer — what a
    reactive server needs to repost the slot.
    """

    wr_id: int
    opcode: Opcode
    status: CompletionStatus
    origin: int
    peer: int
    value: Any = None
    result: Optional[RemoteOperationResult] = None
    addresses: Optional[Tuple[GlobalAddress, ...]] = None
    posted_at: float = 0.0
    completed_at: float = 0.0
    detail: str = ""
    #: The clock this completion hands its retiring process.  RECV: the
    #: clock the matched message carried (sender's post-time snapshot merged
    #: with the buffer's post-time snapshot).  One-sided completions: the
    #: join of the datum clocks the queue-pair drain has serviced so far
    #: (the batched clock-transport payload — sound because RC completes in
    #: order).  Merged at retirement, the synchronization point of both
    #: communication styles.
    sync_clock: Any = field(default=None, repr=False, compare=False)
    #: Position of this completion in its queue pair's service order; the
    #: retirement join is elided when a later completion of the same queue
    #: pair (whose batched clock dominates) already merged.
    sync_seq: int = field(default=0, repr=False, compare=False)
    #: Fired exactly once when the completion is handed to its retiring
    #: process (popped from a completion queue); installed by the verbs
    #: context to drive the retirement clock merge.
    on_retire: Any = field(default=None, repr=False, compare=False)

    def fire_retirement(self) -> None:
        """Invoke the retirement hook, at most once (idempotent)."""
        hook, self.on_retire = self.on_retire, None
        if hook is not None:
            hook(self)

    @property
    def ok(self) -> bool:
        """True when the operation completed successfully."""
        return self.status is CompletionStatus.SUCCESS

    @property
    def elapsed(self) -> float:
        """Simulated time from posting to completion (queueing + servicing)."""
        return self.completed_at - self.posted_at

    @property
    def raced(self) -> bool:
        """True when the detector flagged the serviced access."""
        return self.result is not None and self.result.raced

    def __str__(self) -> str:
        return f"wc#{self.wr_id} {self.opcode.value} {self.status.value}"
