"""Work requests and work completions — the currency of the verbs layer.

The verbs programming surface (after InfiniBand ``ibv_post_send`` /
``ibv_poll_cq``) splits every one-sided operation in two: the initiator
*posts* a :class:`WorkRequest` describing the operation and immediately
regains control, and later *retires* a :class:`WorkCompletion` from a
completion queue once the target NIC has serviced it.  The interval between
the two is exactly the communication/computation overlap the paper's
one-sided model promises but the blocking ``put``/``get`` API cannot express.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.memory.address import GlobalAddress
from repro.net.nic import RemoteOperationResult


class Opcode(enum.Enum):
    """Operation carried by a work request (``IBV_WR_*`` analogues)."""

    PUT = "put"                            # RDMA write
    GET = "get"                            # RDMA read
    FETCH_ADD = "fetch_add"                # atomic fetch-and-add
    COMPARE_AND_SWAP = "compare_and_swap"  # atomic compare-and-swap

    @property
    def returns_value(self) -> bool:
        """True when the completion carries a value back to the initiator."""
        return self is not Opcode.PUT

    @property
    def is_atomic(self) -> bool:
        """True for the read-modify-write opcodes."""
        return self in (Opcode.FETCH_ADD, Opcode.COMPARE_AND_SWAP)


class CompletionStatus(enum.Enum):
    """Outcome of one work request (``IBV_WC_*`` analogues)."""

    SUCCESS = "success"
    #: The supplied rkey does not grant access to the target address — the
    #: verbs equivalent of a protection fault, reported through the
    #: completion rather than raised at the post site.
    REMOTE_ACCESS_ERROR = "remote-access-error"


@dataclass
class WorkRequest:
    """One posted, not-yet-completed one-sided operation.

    Attributes
    ----------
    wr_id:
        Initiator-unique identifier; completions carry it back so callers can
        match them to requests (the verbs contract).
    opcode:
        What to do at the target.
    target:
        Global address the operation acts on.
    rkey:
        Remote key naming the registered region that covers *target*; checked
        at the target before the memory is touched.
    value:
        Put: the value to deposit.  Fetch-add: the addend.  CAS: the value to
        swap in.  Unused for get.
    compare:
        CAS only: the expected current value.
    symbol:
        Symbolic name of the shared variable, for traces and race reports.
    posted_at:
        Simulated time the request entered its queue pair.
    """

    wr_id: int
    opcode: Opcode
    target: GlobalAddress
    rkey: Optional[int]
    value: Any = None
    compare: Any = None
    symbol: Optional[str] = None
    posted_at: float = 0.0

    def __str__(self) -> str:
        return f"wr#{self.wr_id} {self.opcode.value}->{self.target}"


@dataclass
class WorkCompletion:
    """The retired form of one work request.

    ``value`` is what the operation returned to the initiator: the value read
    (get), the prior value of the cell (atomics), or ``None`` (put).
    ``result`` is the underlying NIC-level operation record when the request
    was actually serviced (``None`` for requests failed before servicing).
    """

    wr_id: int
    opcode: Opcode
    status: CompletionStatus
    origin: int
    peer: int
    value: Any = None
    result: Optional[RemoteOperationResult] = None
    posted_at: float = 0.0
    completed_at: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True when the operation completed successfully."""
        return self.status is CompletionStatus.SUCCESS

    @property
    def elapsed(self) -> float:
        """Simulated time from posting to completion (queueing + servicing)."""
        return self.completed_at - self.posted_at

    @property
    def raced(self) -> bool:
        """True when the detector flagged the serviced access."""
        return self.result is not None and self.result.raced

    def __str__(self) -> str:
        return f"wc#{self.wr_id} {self.opcode.value} {self.status.value}"
