"""Queue pairs: asynchronous, in-order execution of work requests.

Real-verbs analogue: ``ibv_qp`` (reliable-connected service) and the
send-queue half of ``ibv_post_send``.

A :class:`QueuePair` connects one initiator rank to one peer rank (the
reliable-connected service of the verbs model).  Posting a work request is
immediate — the posting process keeps running — while a NIC-side drain
process executes the queued requests *in order* against the existing
simulated fabric (locks, latency, detection, tracing all apply unchanged)
and delivers a completion to the associated completion queue after each one.

Each queue pair also has a *receive side*: either a private
:class:`~repro.verbs.receive_queue.ReceiveQueue` or an attached
:class:`~repro.verbs.receive_queue.SharedReceiveQueue`, from which incoming
two-sided SENDs from this QP's peer consume posted buffers (FIFO matching).

Two properties matter for the workloads built on top:

* requests on **one** queue pair never reorder (RC ordering), so a put
  followed by an atomic to the same peer takes effect in program order;
* requests on **different** queue pairs proceed concurrently, which is where
  the communication/computation overlap comes from.

Clock identity: a serviced request is checked with the *post-time clock
snapshot* its work request carried (the unified clock-transport discipline —
the drain acts from the clock the message physically carried, exactly as the
NIC DMA engine would), never the origin's live clock.  A
posted-but-unwaited operation and a later access by the same rank to the
same *remote* cell therefore stay causally unordered — the "forgot to wait
before reusing the data" bug is flagged in every schedule (the owner's
reception tick is knowledge the unwaited poster cannot have).  The origin
synchronizes at completion *retirement*: each completion carries the join
of the datum clocks this queue pair has serviced so far (batched per drain;
sound because RC completes requests in order), and retiring it merges that
join into the origin's clock.

Residual limitation: a posted operation targeting the poster's OWN public
memory (verbs loopback) keeps the blind spot, because the origin and the
owner are the same clock identity — there is no reception tick the poster
could be missing, so the pair always looks ordered.  Closing it needs a
separate clock identity for the NIC engine (see the ROADMAP follow-up).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional

from repro.core.clocks import VectorClock
from repro.net.nic import ReceiveLengthError, RnrRetryExceeded
from repro.net.ud_transport import UdDeliveryExceeded
from repro.obs.observability import Observability
from repro.util.validation import require_positive
from repro.verbs.memory_registration import RemoteAccessError
from repro.verbs.receive_queue import ReceiveQueue, SharedReceiveQueue
from repro.verbs.work import CompletionStatus, Opcode, WorkCompletion, WorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.context import VerbsContext


class SendQueueFull(RuntimeError):
    """Raised when posting to a queue pair whose send queue is at capacity."""


class QueuePair:
    """One rank-pair's send queue plus the NIC process that drains it."""

    def __init__(
        self,
        context: "VerbsContext",
        peer: int,
        max_send_wr: int = 128,
        recv_queue: Optional[ReceiveQueue] = None,
    ) -> None:
        require_positive(max_send_wr, "max_send_wr")
        self._context = context
        self._sim = context.sim
        self._obs = Observability.of(context.sim)
        self.origin = context.rank
        self.peer = peer
        self.max_send_wr = max_send_wr
        #: Where incoming SENDs *from the peer* consume posted buffers: a
        #: private receive queue, or the context's SRQ when one was created
        #: before this queue pair (the verbs rule: the SRQ is named at QP
        #: creation and the pairing is permanent).
        self.recv_queue: ReceiveQueue = (
            recv_queue
            if recv_queue is not None
            else ReceiveQueue(
                context.rank,
                max_wr=context.max_recv_wr,
                name=f"rq-P{context.rank}<-P{peer}",
            )
        )
        if isinstance(self.recv_queue, SharedReceiveQueue):
            self.recv_queue.attach(peer)
        self._pending: Deque[WorkRequest] = deque()
        self._in_service: Optional[WorkRequest] = None
        self._draining = False
        #: Processes parked in :meth:`wait_send_slot` (blocking backpressure),
        #: woken in arrival order as completions free slots.
        self._slot_waiters: list = []
        #: Times a blocking post found the queue full and had to park.
        self.blocked_posts = 0
        self.posted = 0
        self.completed = 0
        #: Join of the datum clocks of every one-sided request this queue
        #: pair has serviced (the batched clock-transport payload);
        #: completions carry a copy, the origin merges at retirement.
        self._serviced_clock: Optional[VectorClock] = None
        #: Epoch annotation of ``_serviced_clock``'s content, when the last
        #: serviced datum clock came back annotated and covered the running
        #: join — the O(1) witness that lets the next service *replace* the
        #: join instead of merging (one O(n) join per burst, amortized).
        self._serviced_epoch = None
        #: Whether the current ``_serviced_clock`` object has been handed to
        #: a completion; consumers only read it, but a later fallback merge
        #: must then build a new object instead of mutating the shared one.
        self._serviced_shared = False
        #: O(n) service-clock joins performed vs elided by the epoch chain.
        self.sync_joins_performed = 0
        self.sync_joins_elided = 0
        #: Service-order sequence stamped into completions (sync_seq).
        self._service_seq = 0

    @property
    def uses_srq(self) -> bool:
        """True when this QP's receive side is a shared receive queue."""
        return isinstance(self.recv_queue, SharedReceiveQueue)

    # -- posting -----------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests posted but not yet completed on this queue pair."""
        return self.posted - self.completed

    def post(self, request: WorkRequest) -> WorkRequest:
        """Enqueue *request* and return immediately.

        Raises :class:`SendQueueFull` when ``max_send_wr`` requests are
        already outstanding — the initiator must retire completions before
        posting more, exactly as with a real send queue.
        """
        if request.destination_rank != self.peer:
            raise ValueError(
                f"queue pair P{self.origin}->P{self.peer} given request "
                f"targeting rank {request.destination_rank}"
            )
        if self.outstanding >= self.max_send_wr:
            raise SendQueueFull(
                f"queue pair P{self.origin}->P{self.peer}: "
                f"{self.outstanding} outstanding requests (max {self.max_send_wr})"
            )
        request.posted_at = self._sim.now
        self.posted += 1
        self._pending.append(request)
        self._obs.metrics.gauge(
            "verbs.send_queue_depth", rank=self.origin, peer=self.peer
        ).set(self.outstanding)
        if not self._draining:
            self._draining = True
            self._sim.process(
                self._drain(), name=f"qp-P{self.origin}->P{self.peer}"
            )
        return request

    def wait_send_slot(self) -> Generator:
        """Yield the calling process until this queue pair has a free slot.

        The blocking half of the backpressure policy: a throttled post in
        ``"block"`` mode waits here instead of raising
        :class:`SendQueueFull`.  Several processes may wait on one queue
        pair; each freed slot wakes one of them, in arrival order, and the
        loop re-checks on wake-up — a slot snatched by a same-instant
        non-blocking post just parks the waiter again.
        """
        while self.outstanding >= self.max_send_wr:
            self.blocked_posts += 1
            gate = self._sim.event(name=f"qp-slot-P{self.origin}->P{self.peer}")
            self._slot_waiters.append(gate)
            yield gate
        return None

    # -- NIC-side servicing ---------------------------------------------------------

    def _drain(self) -> Generator:
        """Service queued requests one at a time, in posting order.

        Under ``cq_moderation`` the completions of one drain burst are held
        back and delivered together when the send queue runs dry — one CQE
        per burst, as a real NIC's CQ moderation timer would coalesce them.
        Send-slot accounting stays per request (a completion frees its slot
        the moment the request is serviced), so backpressure is unaffected;
        only CQ visibility is deferred.  A *bounded* CQ splits the burst
        early: real moderation hardware fires the event the moment the CQ
        fills, so coalescing must never overflow a queue the uncoalesced
        delivery (whose consumer retires between distinct delivery times)
        would have kept within capacity.
        """
        # Timer-based (count, usec) moderation coalesces *across* drain
        # bursts inside the context's moderator, so the drain delivers
        # per-completion and lets the timer decide the batching.
        burst: Optional[list] = (
            []
            if self._context.cq_moderation and self._context.cq_moderator is None
            else None
        )
        drain_started = self._sim.now
        serviced = 0
        while self._pending:
            request = self._pending.popleft()
            self._in_service = request
            completion = yield from self._execute(request)
            self._in_service = None
            self.completed += 1
            serviced += 1
            self._obs.metrics.gauge(
                "verbs.send_queue_depth", rank=self.origin, peer=self.peer
            ).set(self.outstanding)
            if burst is None:
                self._context.deliver(completion)
            else:
                burst.append(completion)
                capacity = self._context.cq.capacity
                if (
                    capacity is not None
                    and len(burst) >= capacity - self._context.cq.depth
                ):
                    # The CQ is about to fill: fire the coalesced event now
                    # so the consumer can retire before the next burst.
                    self._context.deliver_burst(burst)
                    burst = []
            # One retired completion frees one slot: wake one waiter.  The
            # woken process re-checks before posting, so over-waking could
            # only thrash; under-waking cannot happen (every completion
            # passes through here).
            if self._slot_waiters and self.outstanding < self.max_send_wr:
                self._slot_waiters.pop(0).succeed()
        if burst:
            self._context.deliver_burst(burst)
        self._draining = False
        self._obs.metrics.counter(
            "verbs.drain_bursts", rank=self.origin, peer=self.peer
        ).inc()
        self._obs.spans.complete(
            self._context.nic.engine_track,
            "qp_drain",
            drain_started,
            self._sim.now,
            peer=f"P{self.peer}",
            serviced=serviced,
        )

    def _execute(self, request: WorkRequest) -> Generator:
        """Run one work request through the NIC; returns its completion.

        A UD delivery failure anywhere inside the operation — the data
        datagram or its resync subprotocol burnt the retransmission budget
        — surfaces as a failed UD_DELIVERY_EXCEEDED completion, exactly
        like RNR-retry exhaustion: the initiator learns at retirement,
        never through an exception at the post site.
        """
        try:
            completion = yield from self._execute_op(request)
        except UdDeliveryExceeded as error:
            return WorkCompletion(
                wr_id=request.wr_id,
                opcode=request.opcode,
                status=CompletionStatus.UD_DELIVERY_EXCEEDED,
                origin=self.origin,
                peer=self.peer,
                posted_at=request.posted_at,
                completed_at=self._sim.now,
                detail=str(error),
            )
        return completion

    def _execute_op(self, request: WorkRequest) -> Generator:
        """Opcode dispatch of :meth:`_execute` (everything but UD failure)."""
        if request.opcode is Opcode.SEND:
            completion = yield from self._execute_send(request)
            return completion
        target_registry = self._context.peer_context(request.target.rank).registry
        try:
            target_registry.validate(request.rkey, request.target)
        except RemoteAccessError as error:
            # Protection fault: no memory is touched, the initiator learns
            # through the completion status (verbs semantics).
            return WorkCompletion(
                wr_id=request.wr_id,
                opcode=request.opcode,
                status=CompletionStatus.REMOTE_ACCESS_ERROR,
                origin=self.origin,
                peer=self.peer,
                posted_at=request.posted_at,
                completed_at=self._sim.now,
                detail=str(error),
            )

        nic = self._context.nic
        local = request.target.rank == nic.rank
        snapshot = request.clock_snapshot
        if request.opcode is Opcode.PUT:
            if local:
                result = yield from nic.local_write(
                    request.target, request.value, symbol=request.symbol,
                    clock_snapshot=snapshot,
                )
            else:
                result = yield from nic.rdma_put(
                    request.value, request.target, symbol=request.symbol,
                    clock_snapshot=snapshot,
                )
        elif request.opcode is Opcode.GET:
            if local:
                result = yield from nic.local_read(
                    request.target, symbol=request.symbol, clock_snapshot=snapshot
                )
            else:
                result = yield from nic.rdma_get(
                    request.target, symbol=request.symbol, clock_snapshot=snapshot
                )
        elif request.opcode is Opcode.FETCH_ADD:
            result = yield from nic.fetch_add(
                request.target, request.value, symbol=request.symbol,
                clock_snapshot=snapshot,
            )
        elif request.opcode is Opcode.COMPARE_AND_SWAP:
            result = yield from nic.compare_and_swap(
                request.target, request.compare, request.value,
                symbol=request.symbol, clock_snapshot=snapshot,
            )
        else:  # pragma: no cover - exhaustive over Opcode
            raise ValueError(f"unknown opcode {request.opcode!r}")

        if nic.recorder is not None:
            nic.recorder.record_operation(
                result, symbol=request.symbol, posted_time=request.posted_at
            )
        completion = WorkCompletion(
            wr_id=request.wr_id,
            opcode=request.opcode,
            status=CompletionStatus.SUCCESS,
            origin=self.origin,
            peer=self.peer,
            value=None if request.opcode is Opcode.PUT else result.value,
            result=result,
            posted_at=request.posted_at,
            completed_at=self._sim.now,
        )
        self._attach_sync_clock(completion, result, snapshot)
        return completion

    def _attach_sync_clock(self, completion, result, snapshot) -> None:
        """Stamp the batched clock-transport payload onto one completion.

        The datum clock the operation left behind (post-check, including any
        owner tick) joins this queue pair's running service clock; the
        completion carries a copy of the join plus its service-order
        sequence.  Retiring it is how the origin finally learns what its
        posted operation did — and, via the batch, everything the queue pair
        serviced before it (the RC in-order guarantee makes that sound).
        """
        if snapshot is None or result.check is None or not result.check.datum_access_clock:
            return  # detection off, or an unsnapshotted (non-posted) path
        check = result.check
        prev_epoch = self._serviced_epoch
        if self._serviced_clock is None:
            self._serviced_clock = VectorClock.from_entries(check.datum_access_clock)
            self._serviced_shared = False
            self._serviced_epoch = check.datum_epoch
        elif (
            prev_epoch is not None
            and check.datum_access_clock[prev_epoch[0]] >= prev_epoch[1]
        ):
            # The new datum clock dominates everything serviced so far (O(1)
            # epoch probe — see repro.core.clocks.Epoch), so the join IS the
            # new clock: replace instead of merging.  Back-to-back posted
            # accesses to owner-ticked cells take this path for the whole
            # burst, amortizing the O(n) join the slow path pays per access.
            self._serviced_clock = VectorClock.from_entries(check.datum_access_clock)
            self._serviced_shared = False
            self._serviced_epoch = check.datum_epoch
            self.sync_joins_elided += 1
        else:
            # Genuine join.  The running annotation survives only with the
            # reverse O(1) witness (the datum was already inside the join);
            # and if the current object is aliased by an earlier completion,
            # merge into a fresh one — completions are immutable history.
            self._serviced_epoch = (
                prev_epoch
                if check.datum_epoch is not None
                and self._serviced_clock.component(check.datum_epoch[0])
                >= check.datum_epoch[1]
                else None
            )
            datum_clock = VectorClock.from_entries(check.datum_access_clock)
            if self._serviced_shared:
                self._serviced_clock = self._serviced_clock.merged(datum_clock)
                self._serviced_shared = False
            else:
                self._serviced_clock.merge_in_place(datum_clock)
            self.sync_joins_performed += 1
        self._service_seq += 1
        completion.sync_clock = self._serviced_clock
        self._serviced_shared = True
        completion.sync_seq = self._service_seq

    def _execute_send(self, request: WorkRequest) -> Generator:
        """Run one two-sided SEND; returns the sender-side completion.

        The matched receive's completion is delivered to the *peer* context's
        receive CQ as a side effect — including on a length error, where the
        consumed buffer must still be reported to its poster.
        """
        nic = self._context.nic
        target_context = self._context.peer_context(self.peer)
        recv_queue = target_context.receive_queue_from(self.origin)
        flow_control = self._context.flow_control
        credit_gate = (
            target_context.credit_gate(self.origin)
            if flow_control == "credit"
            else None
        )
        values = list(request.payload or ())
        if request.gather_from:
            # The gather half of scatter/gather: read the local cells through
            # the NIC (instrumented like any public-memory access) and append
            # them to the inline payload.
            for address in request.gather_from:
                read = yield from nic.local_read(address, symbol=request.symbol)
                values.append(read.value)
        try:
            result, recv_wr, carried_clock = yield from nic.send_payload(
                self.peer,
                values,
                lambda: recv_queue.match(self.origin),
                symbol=request.symbol,
                clock_snapshot=request.clock_snapshot,
                rnr_backoff=self._context.rnr_backoff,
                rnr_retry_limit=self._context.rnr_retry_limit,
                flow_control=flow_control,
                credit_gate=credit_gate,
            )
        except RnrRetryExceeded as error:
            return WorkCompletion(
                wr_id=request.wr_id,
                opcode=request.opcode,
                status=CompletionStatus.RNR_RETRY_EXCEEDED,
                origin=self.origin,
                peer=self.peer,
                posted_at=request.posted_at,
                completed_at=self._sim.now,
                detail=str(error),
            )
        except ReceiveLengthError as error:
            target_context.deliver_recv(
                WorkCompletion(
                    wr_id=error.recv_wr.wr_id,
                    opcode=Opcode.RECV,
                    status=CompletionStatus.LENGTH_ERROR,
                    origin=self.peer,
                    peer=self.origin,
                    addresses=error.recv_wr.addresses,
                    posted_at=error.recv_wr.posted_at,
                    completed_at=self._sim.now,
                    detail=str(error),
                )
            )
            return WorkCompletion(
                wr_id=request.wr_id,
                opcode=request.opcode,
                status=CompletionStatus.LENGTH_ERROR,
                origin=self.origin,
                peer=self.peer,
                posted_at=request.posted_at,
                completed_at=self._sim.now,
                detail=str(error),
            )
        if nic.recorder is not None:
            nic.recorder.record_operation(
                result, symbol=request.symbol, posted_time=request.posted_at
            )
        target_context.deliver_recv(
            WorkCompletion(
                wr_id=recv_wr.wr_id,
                opcode=Opcode.RECV,
                status=CompletionStatus.SUCCESS,
                origin=self.peer,
                peer=self.origin,
                value=tuple(values),
                result=result,
                addresses=recv_wr.addresses,
                posted_at=recv_wr.posted_at,
                completed_at=self._sim.now,
                sync_clock=carried_clock,
            )
        )
        # The cross-rank half of the WR's flow: the sender's post (flow
        # start on rank-P{origin}) links to the delivery at the receiver.
        self._obs.spans.flow_end(
            target_context.track,
            "wr",
            self._sim.now,
            key=("wr", self.origin, request.wr_id),
        )
        self._obs.spans.instant(
            target_context.track,
            "send_delivered",
            self._sim.now,
            source=f"P{self.origin}",
            cells=len(values),
        )
        return WorkCompletion(
            wr_id=request.wr_id,
            opcode=request.opcode,
            status=CompletionStatus.SUCCESS,
            origin=self.origin,
            peer=self.peer,
            result=result,
            posted_at=request.posted_at,
            completed_at=self._sim.now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueuePair P{self.origin}->P{self.peer} "
            f"outstanding={self.outstanding}>"
        )
