"""The asynchronous verbs subsystem: one-sided *and* two-sided communication.

The seed model exposes *blocking* one-sided operations: ``yield from
api.put(...)`` suspends the program for the whole network round trip, so no
communication/computation overlap — the defining capability of the RDMA
hardware the paper targets — can be expressed.  This package models the
verbs programming surface on top of the same simulated fabric:

* :mod:`repro.verbs.memory_registration` — registered memory regions and the
  rkeys remote initiators must present (``ibv_reg_mr``);
* :mod:`repro.verbs.work` — work requests and work completions
  (``ibv_post_send`` / ``ibv_wc``), one-sided and two-sided opcodes alike,
  with scatter/gather payloads;
* :mod:`repro.verbs.queue_pair` — per rank-pair send queues with in-order,
  asynchronous execution (``ibv_qp``, RC service);
* :mod:`repro.verbs.receive_queue` — posted receive buffers: per-QP receive
  queues and shared receive queues (``ibv_post_recv`` / ``ibv_srq``);
* :mod:`repro.verbs.completion_queue` — where completions are polled or
  awaited (``ibv_cq`` / ``ibv_poll_cq``);
* :mod:`repro.verbs.event_channel` — select over several completion queues
  and drive callback-style handlers (``ibv_comp_channel``);
* :mod:`repro.verbs.context` — the per-rank root object tying it together
  (``ibv_context`` + protection domain).

Every serviced request goes through the existing NIC generators, so the
per-cell locks, the latency models, the race detector (including the RMW
rules for the one-sided atomics and the matching happens-before of
SEND/RECV) and the tracer all observe verbs traffic exactly as they observe
blocking traffic.
"""

from repro.verbs.completion_queue import CompletionQueue, CompletionQueueOverflow
from repro.verbs.context import VerbsContext
from repro.verbs.event_channel import EventChannel
from repro.verbs.memory_registration import (
    MemoryRegistry,
    RegisteredMemoryRegion,
    RemoteAccessError,
)
from repro.verbs.queue_pair import QueuePair, SendQueueFull
from repro.verbs.receive_queue import (
    ReceiveQueue,
    ReceiveQueueFull,
    ReceiveWorkRequest,
    RecvQueueEmpty,
    SharedReceiveQueue,
)
from repro.verbs.work import (
    CompletionError,
    CompletionStatus,
    Opcode,
    WorkCompletion,
    WorkRequest,
)

__all__ = [
    "CompletionError",
    "CompletionQueue",
    "CompletionQueueOverflow",
    "CompletionStatus",
    "EventChannel",
    "MemoryRegistry",
    "Opcode",
    "QueuePair",
    "ReceiveQueue",
    "ReceiveQueueFull",
    "ReceiveWorkRequest",
    "RecvQueueEmpty",
    "RegisteredMemoryRegion",
    "RemoteAccessError",
    "SendQueueFull",
    "SharedReceiveQueue",
    "VerbsContext",
    "WorkCompletion",
    "WorkRequest",
]
