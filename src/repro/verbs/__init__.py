"""The asynchronous one-sided (verbs) subsystem.

The seed model exposes *blocking* one-sided operations: ``yield from
api.put(...)`` suspends the program for the whole network round trip, so no
communication/computation overlap — the defining capability of the RDMA
hardware the paper targets — can be expressed.  This package models the
verbs programming surface on top of the same simulated fabric:

* :mod:`repro.verbs.memory_registration` — registered memory regions and the
  rkeys remote initiators must present;
* :mod:`repro.verbs.work` — work requests and work completions;
* :mod:`repro.verbs.queue_pair` — per rank-pair send queues with in-order,
  asynchronous execution;
* :mod:`repro.verbs.completion_queue` — where completions are polled or
  awaited;
* :mod:`repro.verbs.context` — the per-rank root object tying it together.

Every serviced request goes through the existing NIC generators, so the
per-cell locks, the latency models, the race detector (including the RMW
rules for the one-sided atomics) and the tracer all observe verbs traffic
exactly as they observe blocking traffic.
"""

from repro.verbs.completion_queue import CompletionQueue, CompletionQueueOverflow
from repro.verbs.context import VerbsContext
from repro.verbs.memory_registration import (
    MemoryRegistry,
    RegisteredMemoryRegion,
    RemoteAccessError,
)
from repro.verbs.queue_pair import QueuePair, SendQueueFull
from repro.verbs.work import CompletionStatus, Opcode, WorkCompletion, WorkRequest

__all__ = [
    "CompletionQueue",
    "CompletionQueueOverflow",
    "CompletionStatus",
    "MemoryRegistry",
    "Opcode",
    "QueuePair",
    "RegisteredMemoryRegion",
    "RemoteAccessError",
    "SendQueueFull",
    "VerbsContext",
    "WorkCompletion",
    "WorkRequest",
]
