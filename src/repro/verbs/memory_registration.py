"""Memory registration and remote keys.

Real-verbs analogue: ``ibv_reg_mr`` / ``ibv_dereg_mr`` and the rkey field of
an ``ibv_mr``.

An RDMA NIC only services one-sided operations against memory that its owner
has explicitly *registered*; the registration hands back an opaque **rkey**
that the owner communicates out of band and remote initiators must present
with every request.  The seed model's :class:`~repro.memory.region.MemoryRegion`
captures the *placement* of registered memory; this module adds the
*capability* side: per-rank rkey allocation, lookup and validation, so a work
request carrying a stale or forged rkey fails with a remote-access error
instead of silently touching memory — exactly the verbs protection model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.memory.address import GlobalAddress
from repro.memory.region import MemoryRegion
from repro.util.validation import require_type


class RemoteAccessError(RuntimeError):
    """An rkey failed validation at the target NIC."""


@dataclass(frozen=True)
class RegisteredMemoryRegion:
    """One registration: a region plus the rkey that grants remote access."""

    rkey: int
    region: MemoryRegion
    registered_at: float = 0.0

    @property
    def name(self) -> str:
        """Symbolic name of the underlying region."""
        return self.region.name

    @property
    def owner(self) -> int:
        """Rank whose public memory holds the region."""
        return self.region.owner

    def covers(self, address: GlobalAddress) -> bool:
        """True when *address* falls inside the registered window."""
        return self.region.contains(address)

    def __str__(self) -> str:
        return f"mr({self.region}, rkey=0x{self.rkey:x})"


class MemoryRegistry:
    """The rkey table one rank's NIC consults when servicing remote requests."""

    #: Rank ``r`` allocates rkeys in ``[(r+1) << 20, (r+2) << 20)`` so keys are
    #: globally unique and a key presented to the wrong rank never validates.
    _RANK_STRIDE = 1 << 20

    def __init__(self, rank: int) -> None:
        require_type(rank, int, "rank")
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        self._rank = rank
        self._next = (rank + 1) * self._RANK_STRIDE
        self._by_rkey: Dict[int, RegisteredMemoryRegion] = {}
        self._by_region_name: Dict[str, RegisteredMemoryRegion] = {}

    @property
    def rank(self) -> int:
        """Rank whose memory this registry protects."""
        return self._rank

    def register(
        self, region: MemoryRegion, registered_at: float = 0.0
    ) -> RegisteredMemoryRegion:
        """Register *region* and allocate its rkey (idempotent per region name)."""
        require_type(region, MemoryRegion, "region")
        if region.owner != self._rank:
            raise ValueError(
                f"registry of rank {self._rank} cannot register region "
                f"owned by rank {region.owner}"
            )
        existing = self._by_region_name.get(region.name)
        if existing is not None:
            return existing
        registration = RegisteredMemoryRegion(
            rkey=self._next, region=region, registered_at=registered_at
        )
        self._next += 1
        self._by_rkey[registration.rkey] = registration
        self._by_region_name[region.name] = registration
        return registration

    def deregister(self, rkey: int) -> None:
        """Invalidate *rkey*; later requests presenting it fail validation."""
        registration = self._by_rkey.pop(rkey, None)
        if registration is None:
            raise KeyError(f"rkey 0x{rkey:x} is not registered on rank {self._rank}")
        del self._by_region_name[registration.name]

    def lookup(self, rkey: int) -> Optional[RegisteredMemoryRegion]:
        """The registration behind *rkey*, or ``None``."""
        return self._by_rkey.get(rkey)

    def rkey_covering(self, address: GlobalAddress) -> Optional[int]:
        """The rkey of the registration containing *address*, or ``None``."""
        for registration in self._by_rkey.values():
            if registration.covers(address):
                return registration.rkey
        return None

    def validate(self, rkey: Optional[int], address: GlobalAddress) -> RegisteredMemoryRegion:
        """Check that *rkey* grants access to *address*.

        Returns the registration on success; raises :class:`RemoteAccessError`
        when the key is unknown, revoked, or does not cover the address.
        """
        if rkey is None:
            raise RemoteAccessError(
                f"request for {address} carries no rkey (memory not registered?)"
            )
        registration = self._by_rkey.get(rkey)
        if registration is None:
            raise RemoteAccessError(
                f"rkey 0x{rkey:x} is not registered on rank {self._rank}"
            )
        if not registration.covers(address):
            raise RemoteAccessError(
                f"rkey 0x{rkey:x} covers {registration.region}, not {address}"
            )
        return registration

    def registrations(self) -> Iterator[RegisteredMemoryRegion]:
        """Iterate over live registrations in registration order."""
        return iter(self._by_rkey.values())

    def __len__(self) -> int:
        return len(self._by_rkey)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryRegistry P{self._rank} regions={len(self._by_rkey)}>"
