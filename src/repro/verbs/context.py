"""Per-rank verbs context: registration, queue pairs and completion handling.

:class:`VerbsContext` is the per-rank root object of the verbs layer — the
analogue of an ``ibv_context`` plus its protection domain.  It owns the
rank's :class:`~repro.verbs.memory_registration.MemoryRegistry`, creates one
:class:`~repro.verbs.queue_pair.QueuePair` per peer on demand (all feeding a
single default completion queue), and offers the bookkeeping the runtime API
builds on: post helpers for every opcode, and ``wait``/``wait_all``
generators that retire completions and match them back to work requests.

The context helpers consume the default completion queue; programs that poll
the CQ directly should not mix the two styles on the same context.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.memory.address import GlobalAddress
from repro.net.nic import NIC
from repro.sim.engine import Simulator
from repro.util.ids import IdAllocator
from repro.verbs.completion_queue import CompletionQueue
from repro.verbs.memory_registration import (
    MemoryRegistry,
    RegisteredMemoryRegion,
    RemoteAccessError,
)
from repro.verbs.queue_pair import QueuePair
from repro.verbs.work import Opcode, WorkCompletion, WorkRequest


class VerbsContext:
    """One rank's handle on the asynchronous one-sided subsystem."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        cq_capacity: Optional[int] = None,
        max_send_wr: int = 128,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.rank = nic.rank
        self.max_send_wr = max_send_wr
        self.registry = MemoryRegistry(self.rank)
        self.cq = CompletionQueue(sim, capacity=cq_capacity, name=f"cq-P{self.rank}")
        self._wr_ids = IdAllocator(f"wr-P{self.rank}")
        self._queue_pairs: Dict[int, QueuePair] = {}
        self._peers: Dict[int, "VerbsContext"] = {self.rank: self}
        #: Posted-but-unretired requests, by wr_id.
        self._outstanding: Dict[int, WorkRequest] = {}
        #: Retired-but-unclaimed completions, by wr_id.
        self._retired: Dict[int, WorkCompletion] = {}

    # -- wiring -------------------------------------------------------------------

    def register_peer(self, context: "VerbsContext") -> None:
        """Make another rank's context reachable (for rkey validation)."""
        self._peers[context.rank] = context

    def peer_context(self, rank: int) -> "VerbsContext":
        """The context of *rank* (``KeyError`` if not registered)."""
        return self._peers[rank]

    def queue_pair(self, peer: int) -> QueuePair:
        """Return (creating lazily) the queue pair to *peer*."""
        if peer not in self._queue_pairs:
            if peer != self.rank and peer not in self._peers:
                raise KeyError(f"rank {peer} has no registered verbs context")
            self._queue_pairs[peer] = QueuePair(
                self, peer, max_send_wr=self.max_send_wr
            )
        return self._queue_pairs[peer]

    # -- memory registration ---------------------------------------------------------

    def register_memory(self, region) -> RegisteredMemoryRegion:
        """Register one of this rank's memory regions for remote access."""
        return self.registry.register(region, registered_at=self.sim.now)

    def ensure_registered(self, address: GlobalAddress) -> int:
        """Return the rkey covering this rank's *address*, registering lazily.

        Models the runtime registering every shared symbol's region with the
        NIC the first time it is remotely addressed.  Raises
        :class:`RemoteAccessError` when no region covers the address.
        """
        if address.rank != self.rank:
            raise ValueError(
                f"context of rank {self.rank} asked to register {address}"
            )
        rkey = self.registry.rkey_covering(address)
        if rkey is not None:
            return rkey
        region = self.nic.memory.region_containing(address)
        if region is None:
            raise RemoteAccessError(
                f"no registered memory region covers {address} on rank {self.rank}"
            )
        return self.register_memory(region).rkey

    def remote_key(self, address: GlobalAddress) -> int:
        """The rkey for *address*, obtained from its owner (out-of-band exchange)."""
        return self.peer_context(address.rank).ensure_registered(address)

    # -- posting ----------------------------------------------------------------------

    def _post(
        self,
        opcode: Opcode,
        target: GlobalAddress,
        rkey: Optional[int],
        value: Any = None,
        compare: Any = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        if rkey is None:
            rkey = self.remote_key(target)
        request = WorkRequest(
            wr_id=self._wr_ids.next_int(),
            opcode=opcode,
            target=target,
            rkey=rkey,
            value=value,
            compare=compare,
            symbol=symbol,
        )
        # Register only after the queue pair accepted the request: a
        # SendQueueFull must not leave a phantom entry that wait_all() would
        # block on forever.  (Posting cannot complete synchronously — the
        # drain process only runs once the simulator resumes — so there is
        # no window where a completion could arrive unregistered.)
        self.queue_pair(target.rank).post(request)
        self._outstanding[request.wr_id] = request
        return request

    def post_put(
        self,
        target: GlobalAddress,
        value: Any,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post a one-sided write; returns immediately."""
        return self._post(Opcode.PUT, target, rkey, value=value, symbol=symbol)

    def post_get(
        self,
        target: GlobalAddress,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post a one-sided read; the completion carries the value."""
        return self._post(Opcode.GET, target, rkey, symbol=symbol)

    def post_fetch_add(
        self,
        target: GlobalAddress,
        amount: Any = 1,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post an atomic fetch-and-add; the completion carries the old value."""
        return self._post(Opcode.FETCH_ADD, target, rkey, value=amount, symbol=symbol)

    def post_compare_and_swap(
        self,
        target: GlobalAddress,
        expected: Any,
        desired: Any,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post an atomic compare-and-swap; the completion carries the old value."""
        return self._post(
            Opcode.COMPARE_AND_SWAP, target, rkey,
            value=desired, compare=expected, symbol=symbol,
        )

    # -- completion handling -----------------------------------------------------------

    def deliver(self, completion: WorkCompletion) -> None:
        """Called by a queue pair when a request finishes (CQ delivery)."""
        self.cq.push(completion)

    def _file(self, completions: Iterable[WorkCompletion]) -> None:
        for completion in completions:
            self._outstanding.pop(completion.wr_id, None)
            self._retired[completion.wr_id] = completion

    def poll(self) -> List[WorkCompletion]:
        """Retire whatever is ready, without blocking; claims the completions."""
        self._file(self.cq.poll())
        out = [self._retired[key] for key in sorted(self._retired)]
        self._retired.clear()
        return out

    def completion_of(self, request: WorkRequest) -> Optional[WorkCompletion]:
        """The retired completion of *request*, or ``None`` if still in flight."""
        self._file(self.cq.poll())
        return self._retired.get(request.wr_id)

    @property
    def outstanding_count(self) -> int:
        """Requests posted but not yet retired by this context's helpers."""
        self._file(self.cq.poll())
        return len(self._outstanding)

    def wait(self, requests: Iterable[WorkRequest]):
        """Generator: block until every request in *requests* has completed.

        Returns the completions in the order of *requests* and claims them.
        Waiting on a request whose completion was already claimed (or that
        was never posted through this context) raises immediately — the
        completion can never arrive, so blocking would strand the process.
        """
        wanted = list(requests)
        self._file(self.cq.poll())
        for request in wanted:
            if (
                request.wr_id not in self._retired
                and request.wr_id not in self._outstanding
            ):
                raise ValueError(
                    f"work request {request.wr_id} is not outstanding on rank "
                    f"{self.rank}: its completion was already claimed, or it "
                    f"was posted through a different context"
                )
        while any(request.wr_id not in self._retired for request in wanted):
            ready = yield from self.cq.wait(1)
            self._file(ready)
        claimed: Dict[int, WorkCompletion] = {}
        for request in wanted:
            if request.wr_id not in claimed:
                claimed[request.wr_id] = self._retired.pop(request.wr_id)
        return [claimed[request.wr_id] for request in wanted]

    def wait_all(self):
        """Generator: block until every outstanding request has completed.

        Returns all unclaimed completions in posting (wr_id) order.
        """
        self._file(self.cq.poll())
        while self._outstanding:
            ready = yield from self.cq.wait(1)
            self._file(ready)
        out = [self._retired[key] for key in sorted(self._retired)]
        self._retired.clear()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VerbsContext P{self.rank} qps={len(self._queue_pairs)} "
            f"outstanding={len(self._outstanding)}>"
        )
