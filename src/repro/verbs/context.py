"""Per-rank verbs context: registration, queue pairs and completion handling.

Real-verbs analogue: ``ibv_context`` plus its protection domain
(``ibv_alloc_pd``), and the per-device factories ``ibv_create_srq`` /
``ibv_create_comp_channel``.

:class:`VerbsContext` is the per-rank root object of the verbs layer.  It
owns the rank's :class:`~repro.verbs.memory_registration.MemoryRegistry`,
creates one :class:`~repro.verbs.queue_pair.QueuePair` per peer on demand
(all feeding a single default *send* completion queue, with two-sided receive
completions landing on a separate *receive* CQ), optionally owns one
:class:`~repro.verbs.receive_queue.SharedReceiveQueue` that queue pairs
created after it drain from, and offers the bookkeeping the runtime API
builds on: post helpers for every opcode — including two-sided
``post_send`` / ``post_recv`` / ``post_srq_recv`` — and ``wait``/``wait_all``
generators that retire completions and match them back to work requests.

The context helpers consume the default completion queues; programs that
poll a CQ directly (or drive it through an event channel) should not mix the
two styles on the same queue.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.memory.address import GlobalAddress
from repro.net.flow_control import credit_gate_for, validate_flow_control
from repro.net.nic import NIC
from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.util.ids import IdAllocator
from repro.verbs.completion_queue import (
    CompletionQueue,
    CompletionQueueOverflow,
    CqModerationTimer,
    validate_cq_moderation_timer,
)
from repro.verbs.event_channel import EventChannel
from repro.verbs.memory_registration import (
    MemoryRegistry,
    RegisteredMemoryRegion,
    RemoteAccessError,
)
from repro.verbs.queue_pair import QueuePair
from repro.verbs.receive_queue import (
    ReceiveQueue,
    ReceiveWorkRequest,
    SharedReceiveQueue,
)
from repro.verbs.work import Opcode, WorkCompletion, WorkRequest


class VerbsContext:
    """One rank's handle on the asynchronous (one- and two-sided) subsystem."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        cq_capacity: Optional[int] = None,
        max_send_wr: int = 128,
        max_recv_wr: int = 128,
        rnr_backoff: float = 1.0,
        rnr_retry_limit: Optional[int] = None,
        backpressure: str = "raise",
        cq_moderation: bool = False,
        cq_moderation_timer=None,
        flow_control: str = "rnr",
    ) -> None:
        if backpressure not in ("raise", "block"):
            raise ValueError(
                f"backpressure must be 'raise' or 'block', got {backpressure!r}"
            )
        validate_flow_control(flow_control)
        cq_moderation_timer = validate_cq_moderation_timer(cq_moderation_timer)
        self.sim = sim
        self.nic = nic
        self.rank = nic.rank
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        #: RNR retry protocol for two-sided sends: backoff between
        #: retransmissions, and how many retries before giving up with an
        #: RNR_RETRY_EXCEEDED completion (``None`` retries forever, the
        #: InfiniBand ``rnr_retry=7`` encoding).
        self.rnr_backoff = rnr_backoff
        self.rnr_retry_limit = rnr_retry_limit
        #: Send backpressure policy for the ``*_throttled`` posting surface:
        #: ``"raise"`` (SendQueueFull at the post site) or ``"block"``
        #: (yield until a completion frees a slot).
        self.backpressure = backpressure
        #: CQ moderation: when true, each queue pair's drain delivers the
        #: completions of one burst together as a single CQE event (send CQ
        #: only — receive completions are the peer's business), and the
        #: batched retirement clock is charged once per burst instead of
        #: once per completion.
        self.cq_moderation = cq_moderation
        #: Admission control for two-sided sends: ``"rnr"`` (the RC retry
        #: protocol, the default) or ``"credit"`` (claim a posted receive
        #: buffer before transmitting; stall locally instead of retrying).
        self.flow_control = flow_control
        #: ``(cq_count, cq_usec)`` send-CQ moderation; ``None`` disables the
        #: timer (the moderator is created only when the knob is on, so the
        #: default path carries zero extra footprint).
        self.cq_moderation_timer = cq_moderation_timer
        self._cq_moderator: Optional[CqModerationTimer] = (
            CqModerationTimer(self, *cq_moderation_timer)
            if cq_moderation_timer is not None
            else None
        )
        self._obs = Observability.of(sim)
        #: Trace track for this rank's process-side verbs activity.
        self.track = f"rank-P{self.rank}"
        self.registry = MemoryRegistry(self.rank)
        self.cq = CompletionQueue(sim, capacity=cq_capacity, name=f"cq-P{self.rank}")
        #: Receive completions (matched two-sided sends) land here, away from
        #: the send CQ, so wait()/wait_all() bookkeeping and receive handling
        #: never contend for the same queue (a QP's send_cq/recv_cq split).
        self.recv_cq = CompletionQueue(
            sim, capacity=cq_capacity, name=f"recv-cq-P{self.rank}"
        )
        self._wr_ids = IdAllocator(f"wr-P{self.rank}")
        self._queue_pairs: Dict[int, QueuePair] = {}
        self._peers: Dict[int, "VerbsContext"] = {self.rank: self}
        self._srq: Optional[SharedReceiveQueue] = None
        #: SRQ low-watermark limit events (``IBV_EVENT_SRQ_LIMIT_REACHED``
        #: analogue), as ``(time, depth_at_firing)`` pairs, in firing order.
        self.srq_limit_events: List[tuple] = []
        self._srq_limit_pending = 0
        #: Receiver-side asynchronous errors, as ``(time, detail)`` pairs —
        #: the ``ibv_async_event`` channel in miniature (currently: receive
        #: CQ overflows, which lose the completion but not the payload).
        self.async_errors: List[tuple] = []
        #: Posted-but-unretired requests, by wr_id.
        self._outstanding: Dict[int, WorkRequest] = {}
        #: Retired-but-unclaimed completions, by wr_id.
        self._retired: Dict[int, WorkCompletion] = {}
        #: Per-peer highest service sequence whose batched clock has been
        #: merged at retirement; joins for earlier completions of the same
        #: queue pair are elided under the piggyback transport (their
        #: batched clock is dominated by what already merged).
        self._joined_seq: Dict[int, int] = {}

    # -- wiring -------------------------------------------------------------------

    def register_peer(self, context: "VerbsContext") -> None:
        """Make another rank's context reachable (for rkey validation)."""
        self._peers[context.rank] = context

    def peer_context(self, rank: int) -> "VerbsContext":
        """The context of *rank* (``KeyError`` if not registered)."""
        return self._peers[rank]

    def queue_pair(self, peer: int) -> QueuePair:
        """Return (creating lazily) the queue pair to *peer*.

        Queue pairs created after :meth:`create_srq` attach their receive
        side to the SRQ (the verbs rule: the SRQ is named at QP creation);
        earlier ones keep their private receive queues.
        """
        if peer not in self._queue_pairs:
            if peer != self.rank and peer not in self._peers:
                raise KeyError(f"rank {peer} has no registered verbs context")
            self._queue_pairs[peer] = QueuePair(
                self, peer, max_send_wr=self.max_send_wr, recv_queue=self._srq
            )
        return self._queue_pairs[peer]

    # -- two-sided receive side -------------------------------------------------------

    def create_srq(self, max_wr: Optional[int] = None) -> SharedReceiveQueue:
        """Create this rank's shared receive queue (``ibv_create_srq``).

        Every queue pair created *afterwards* drains its receives from the
        SRQ; at most one SRQ per context (call it before any traffic, as a
        server would).
        """
        if self._srq is not None:
            raise RuntimeError(f"rank {self.rank} already has a shared receive queue")
        self._srq = SharedReceiveQueue(
            self.rank, max_wr=self.max_recv_wr if max_wr is None else max_wr
        )
        self._srq.set_limit_listener(self._on_srq_limit)
        return self._srq

    @property
    def srq(self) -> Optional[SharedReceiveQueue]:
        """This rank's shared receive queue, if one was created."""
        return self._srq

    # -- SRQ limit events (IBV_EVENT_SRQ_LIMIT_REACHED analogue) -----------------------

    def _on_srq_limit(self, depth: int) -> None:
        self.srq_limit_events.append((self.sim.now, depth))
        self._srq_limit_pending += 1

    def arm_srq_limit(self, threshold: int) -> None:
        """Arm the SRQ's low-watermark event (``ibv_modify_srq`` with
        ``IBV_SRQ_LIMIT``): one event fires when the posted-buffer count
        drops below *threshold*, then the limit disarms until re-armed.
        """
        if self._srq is None:
            raise RuntimeError(
                f"rank {self.rank} has no shared receive queue; call create_srq first"
            )
        self._srq.arm_limit(threshold)

    def take_srq_limit_event(self) -> bool:
        """Consume one pending SRQ limit event, if any fired since last taken.

        The miniature ``ibv_get_async_event`` loop: a server checks this
        from its completion handler and replenishes receives in bulk when it
        returns true.
        """
        if self._srq_limit_pending:
            self._srq_limit_pending -= 1
            return True
        return False

    def receive_queue_from(self, source: int) -> ReceiveQueue:
        """The queue incoming SENDs from *source* consume posted buffers from."""
        return self.queue_pair(source).recv_queue

    def set_flow_control(self, mode: str) -> None:
        """Select the two-sided admission protocol (``"rnr"`` or ``"credit"``)."""
        self.flow_control = validate_flow_control(mode)

    def set_cq_moderation_timer(self, value) -> None:
        """Install (or remove, with ``None``) ``(cq_count, cq_usec)`` moderation."""
        value = validate_cq_moderation_timer(value)
        self.cq_moderation_timer = value
        self._cq_moderator = (
            CqModerationTimer(self, *value) if value is not None else None
        )

    @property
    def cq_moderator(self) -> Optional[CqModerationTimer]:
        """The active timer moderator, if the knob is on (for tests/benchmarks)."""
        return self._cq_moderator

    def credit_gate(self, source: int):
        """The credit gate guarding the receive queue facing *source*.

        Created (and wired to the queue's posts) on first use, so RNR-mode
        runs never allocate one.  A queue pair draining from the SRQ shares
        the SRQ's gate with every attached peer — the credit pool aggregates
        exactly like the buffer pool it mirrors.
        """
        return credit_gate_for(self.receive_queue_from(source), self.sim)

    def _make_recv_wr(
        self,
        addresses: Sequence[GlobalAddress],
        symbol: Optional[str],
        source: Optional[int] = None,
    ) -> ReceiveWorkRequest:
        request = ReceiveWorkRequest(
            wr_id=self._wr_ids.next_int(),
            addresses=tuple(addresses),
            symbol=symbol,
            posted_at=self.sim.now,
        )
        # Posting a receive is itself an event and the permission point for
        # the buffer: the snapshot joins the matching send's clock at
        # delivery, ordering the scatter after everything this rank did
        # before posting (and nothing it does afterwards).
        detector = self.nic.detector
        if detector is not None and detector.config.enabled:
            detector.local_event(self.rank)
            request.clock_snapshot = detector.current_clock(self.rank)
        if self.nic.recorder is not None:
            self.nic.recorder.record_transfer(
                self.rank,
                source if source is not None else self.rank,
                time=self.sim.now,
                kind="recv_post",
            )
        return request

    def post_recv(
        self,
        source: int,
        addresses: Sequence[GlobalAddress],
        symbol: Optional[str] = None,
    ) -> ReceiveWorkRequest:
        """Post a receive buffer for sends from *source* (``ibv_post_recv``).

        *addresses* is the scatter list — this rank's own cells, consumed in
        FIFO order by matching sends.  Posting through a queue pair whose
        receive side is the SRQ is rejected, as on real hardware.
        """
        queue_pair = self.queue_pair(source)
        if queue_pair.uses_srq:
            raise ValueError(
                f"queue pair P{self.rank}<-P{source} receives through the SRQ; "
                f"post with post_srq_recv"
            )
        return queue_pair.recv_queue.post(
            self._make_recv_wr(addresses, symbol, source=source)
        )

    def post_srq_recv(
        self,
        addresses: Sequence[GlobalAddress],
        symbol: Optional[str] = None,
    ) -> ReceiveWorkRequest:
        """Post a receive buffer to the SRQ (``ibv_post_srq_recv``)."""
        if self._srq is None:
            raise RuntimeError(
                f"rank {self.rank} has no shared receive queue; call create_srq first"
            )
        return self._srq.post(self._make_recv_wr(addresses, symbol))

    def deliver_recv(self, completion: WorkCompletion) -> None:
        """Called by a peer's queue pair when a send lands in our buffer.

        Delivery parks the completion on the receive CQ; *retirement* — this
        rank popping it — is the synchronization point of two-sided
        communication, so the completion carries a hook that merges the
        message's clock into this rank's clock at that moment.

        A bounded receive CQ that overflows is *this rank's* failure, not
        the sender's: the payload already landed and the sender's ack is on
        its way, but the completion — and with it the retirement
        synchronization — is lost.  Real hardware raises the async
        ``IBV_EVENT_CQ_ERR`` at the receiver; here the event is recorded in
        :attr:`async_errors` (and the run continues, with any later access
        to the unretired buffer correctly reported as unsynchronized).
        """
        if completion.sync_clock is not None:
            completion.on_retire = self._on_recv_retired
        try:
            self.recv_cq.push(completion)
        except CompletionQueueOverflow as error:
            self.async_errors.append((self.sim.now, str(error)))
            self._obs.metrics.counter("verbs.cq_overflows", rank=self.rank).inc()
        else:
            self.nic.clock_transport.note_completion_event(
                1, carries_clock=completion.sync_clock is not None
            )
            self._obs.metrics.counter("verbs.recv_completions", rank=self.rank).inc()
            self._obs.metrics.gauge("verbs.recv_cq_depth", rank=self.rank).set(
                self.recv_cq.depth
            )

    def _on_recv_retired(self, completion: WorkCompletion) -> None:
        detector = self.nic.detector
        if detector is not None and detector.config.enabled:
            detector.on_recv_complete(self.rank, completion.peer, completion.sync_clock)
        if self.nic.recorder is not None:
            self.nic.recorder.record_transfer(
                self.rank,
                completion.peer,
                time=self.sim.now,
                kind="recv_complete",
                clock=completion.sync_clock.frozen(),
            )

    def poll_recv(self) -> List[WorkCompletion]:
        """Retire whatever receive completions are ready, without blocking."""
        return self.recv_cq.poll()

    def wait_recv(self, count: int = 1):
        """Generator: block until *count* receive completions retire."""
        completions = yield from self.recv_cq.wait(count)
        return completions

    def create_event_channel(self, name: Optional[str] = None) -> EventChannel:
        """Create a completion event channel (``ibv_create_comp_channel``)."""
        return EventChannel(self.sim, name=name or f"comp-channel-P{self.rank}")

    # -- memory registration ---------------------------------------------------------

    def register_memory(self, region) -> RegisteredMemoryRegion:
        """Register one of this rank's memory regions for remote access."""
        return self.registry.register(region, registered_at=self.sim.now)

    def ensure_registered(self, address: GlobalAddress) -> int:
        """Return the rkey covering this rank's *address*, registering lazily.

        Models the runtime registering every shared symbol's region with the
        NIC the first time it is remotely addressed.  Raises
        :class:`RemoteAccessError` when no region covers the address.
        """
        if address.rank != self.rank:
            raise ValueError(
                f"context of rank {self.rank} asked to register {address}"
            )
        rkey = self.registry.rkey_covering(address)
        if rkey is not None:
            return rkey
        region = self.nic.memory.region_containing(address)
        if region is None:
            raise RemoteAccessError(
                f"no registered memory region covers {address} on rank {self.rank}"
            )
        return self.register_memory(region).rkey

    def remote_key(self, address: GlobalAddress) -> int:
        """The rkey for *address*, obtained from its owner (out-of-band exchange)."""
        return self.peer_context(address.rank).ensure_registered(address)

    # -- posting ----------------------------------------------------------------------

    def _post(
        self,
        opcode: Opcode,
        target: GlobalAddress,
        rkey: Optional[int],
        value: Any = None,
        compare: Any = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        if rkey is None:
            rkey = self.remote_key(target)
        request = WorkRequest(
            wr_id=self._wr_ids.next_int(),
            opcode=opcode,
            target=target,
            rkey=rkey,
            value=value,
            compare=compare,
            symbol=symbol,
        )
        # Tick, snapshot and register only after the queue pair accepted the
        # request: a SendQueueFull must not leave a phantom entry that
        # wait_all() would block on forever, nor a phantom wr_post trace
        # event / clock tick for an operation that never existed.  (Posting
        # cannot complete synchronously — the drain process only runs once
        # the simulator resumes — so setting the snapshot right after the
        # post is equivalent to setting it before.)
        self.queue_pair(target.rank).post(request)
        # Posting is itself an event, for every opcode: the poster's clock
        # ticks and the request carries a snapshot of it — the clock the NIC
        # engine will act from when it services the request (the unified
        # clock-transport discipline, mirroring post_send).  The snapshot,
        # not the live clock, is what keeps a posted-but-unwaited operation
        # causally unordered with the poster's later accesses.
        detector = self.nic.detector
        if detector is not None and detector.config.enabled:
            detector.local_event(self.rank)
            request.clock_snapshot = detector.current_clock(self.rank)
        if self.nic.recorder is not None:
            self.nic.recorder.record_transfer(
                self.rank, target.rank, time=self.sim.now, kind="wr_post"
            )
        self._outstanding[request.wr_id] = request
        self._note_wr_posted(request, f"P{target.rank}")
        return request

    def post_put(
        self,
        target: GlobalAddress,
        value: Any,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post a one-sided write; returns immediately."""
        return self._post(Opcode.PUT, target, rkey, value=value, symbol=symbol)

    def post_get(
        self,
        target: GlobalAddress,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post a one-sided read; the completion carries the value."""
        return self._post(Opcode.GET, target, rkey, symbol=symbol)

    def post_fetch_add(
        self,
        target: GlobalAddress,
        amount: Any = 1,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post an atomic fetch-and-add; the completion carries the old value."""
        return self._post(Opcode.FETCH_ADD, target, rkey, value=amount, symbol=symbol)

    def post_compare_and_swap(
        self,
        target: GlobalAddress,
        expected: Any,
        desired: Any,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post an atomic compare-and-swap; the completion carries the old value."""
        return self._post(
            Opcode.COMPARE_AND_SWAP, target, rkey,
            value=desired, compare=expected, symbol=symbol,
        )

    def post_send(
        self,
        peer: int,
        values: Optional[Sequence[Any]] = None,
        gather_from: Optional[Sequence[GlobalAddress]] = None,
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post a two-sided SEND to *peer* (``IBV_WR_SEND``); returns immediately.

        The payload is *values* (inline cells) plus, appended at service time,
        the current contents of the local *gather_from* addresses — the SGE
        gather list.  Where it lands is the peer's business: a posted receive
        buffer, consumed in FIFO order.  An empty payload is a legal
        zero-length send, pure synchronization.

        Posting is itself an event: the sender's clock ticks and the request
        carries a snapshot of it, which the matching receive merges into the
        receiver's clock (the message-passing happens-before edge).  The
        snapshot — not the live clock — is what keeps a receiver that reuses
        its posted buffer mid-flight visible to the detector.
        """
        for address in gather_from or ():
            if address.rank != self.rank:
                raise ValueError(
                    f"send gather address {address} is not local to rank {self.rank}"
                )
        request = WorkRequest(
            wr_id=self._wr_ids.next_int(),
            opcode=Opcode.SEND,
            target=None,
            rkey=None,
            peer=peer,
            payload=tuple(values or ()),
            gather_from=tuple(gather_from) if gather_from else None,
            symbol=symbol,
        )
        # As in _post: the posting tick/snapshot/trace happen only once the
        # queue pair accepted the request (a rejected post is a non-event),
        # which is safe because the drain cannot run before we return.
        self.queue_pair(peer).post(request)
        detector = self.nic.detector
        if detector is not None and detector.config.enabled:
            detector.local_event(self.rank)
            request.clock_snapshot = detector.current_clock(self.rank)
        if self.nic.recorder is not None:
            self.nic.recorder.record_transfer(
                self.rank, peer, time=self.sim.now, kind="send_post"
            )
        self._outstanding[request.wr_id] = request
        self._note_wr_posted(request, f"P{peer}")
        return request

    # -- throttled posting (configurable backpressure) -----------------------------------

    def wait_send_slot(self, peer: int):
        """Generator: apply the configured backpressure towards *peer*.

        In ``"block"`` mode, yields until the queue pair has a free send
        slot; in ``"raise"`` mode returns immediately (the subsequent post
        raises :class:`~repro.verbs.queue_pair.SendQueueFull` if full).
        """
        if self.backpressure == "block":
            yield from self.queue_pair(peer).wait_send_slot()
        return None

    def post_put_throttled(
        self,
        target: GlobalAddress,
        value: Any,
        rkey: Optional[int] = None,
        symbol: Optional[str] = None,
    ):
        """Generator: :meth:`post_put` under the configured backpressure policy."""
        yield from self.wait_send_slot(target.rank)
        return self.post_put(target, value, rkey=rkey, symbol=symbol)

    def post_send_throttled(
        self,
        peer: int,
        values: Optional[Sequence[Any]] = None,
        gather_from: Optional[Sequence[GlobalAddress]] = None,
        symbol: Optional[str] = None,
    ):
        """Generator: :meth:`post_send` under the configured backpressure policy.

        In ``"block"`` mode the posting event — the sender's clock tick and
        snapshot — happens when the slot is granted, not when the caller
        first asked: a blocked post has not happened yet, so nothing it
        later sends can claim to precede the completions that unblocked it.
        """
        yield from self.wait_send_slot(peer)
        return self.post_send(peer, values, gather_from=gather_from, symbol=symbol)

    # -- completion handling -----------------------------------------------------------

    def deliver(self, completion: WorkCompletion) -> None:
        """Called by a queue pair when a request finishes (CQ delivery).

        A completion carrying a clock (every successful posted one-sided
        operation under detection) installs a retirement hook: popping it
        from the CQ is when the initiator finally synchronizes with its
        operation's effect — until then, poster and effect stay causally
        unordered.
        """
        if self._cq_moderator is not None:
            # Timer-based moderation: the completion accumulates and lands
            # via deliver_burst when the (count, usec) protocol flushes.
            self._cq_moderator.submit(completion)
            return
        if completion.sync_clock is not None:
            completion.on_retire = self._on_wr_retired
        self.cq.push(completion)
        # Booked only after the push: an overflowing CQ must not leave the
        # stats claiming completion traffic that never reached the queue.
        self.nic.clock_transport.note_completion_event(
            1, carries_clock=completion.sync_clock is not None
        )
        self._obs.metrics.gauge("verbs.cq_depth", rank=self.rank).set(self.cq.depth)

    def deliver_burst(self, completions: List[WorkCompletion]) -> None:
        """Deliver a coalesced drain burst to the send CQ (CQ moderation).

        Each completion keeps its own retirement hook and batched clock —
        the origin may retire them in any order, and every retirement still
        merges exactly what one-at-a-time delivery would have merged (the
        per-queue-pair join batching makes the older siblings' joins
        dominated anyway) — but the burst counts as ONE completion event,
        and the batched retirement clock it carries is charged once, not
        once per completion.  That is the completion-traffic saving the
        model books for moderation; verdicts cannot depend on it.
        """
        for completion in completions:
            if completion.sync_clock is not None:
                completion.on_retire = self._on_wr_retired
        self.cq.push_batch(completions)
        # Booked only after the batch landed (see deliver()).
        self.nic.clock_transport.note_completion_event(
            len(completions),
            carries_clock=any(c.sync_clock is not None for c in completions),
        )
        self._obs.metrics.gauge("verbs.cq_depth", rank=self.rank).set(self.cq.depth)

    def _on_wr_retired(self, completion: WorkCompletion) -> None:
        """Merge a retired one-sided completion's batched clock, once useful.

        Under the ``"piggyback"`` transport, a completion whose queue pair
        already merged a later (dominating) batched clock is elided — a
        burst of posts retired together costs one clock join per drain, not
        one per access.  The ``"roundtrip"`` transport joins per completion,
        as Algorithm 5 would; the resulting clocks are identical (the
        batched clock of the newest completion dominates its siblings'), so
        verdicts never depend on the mode.
        """
        detector = self.nic.detector
        transport = self.nic.clock_transport
        if detector is None or not detector.config.enabled:
            return
        last = self._joined_seq.get(completion.peer, 0)
        if transport.piggyback and completion.sync_seq <= last:
            transport.note_join(performed=False)
            return
        detector.on_completion_retired(
            self.rank, completion.peer, completion.sync_clock
        )
        self._joined_seq[completion.peer] = max(last, completion.sync_seq)
        transport.note_join(performed=True)
        if self.nic.recorder is not None:
            self.nic.recorder.record_transfer(
                self.rank,
                completion.peer,
                time=self.sim.now,
                kind="wr_retire",
                clock=completion.sync_clock.frozen(),
            )

    def _note_wr_posted(self, request: WorkRequest, destination: str) -> None:
        """Observability hooks for one accepted post (counters, flow start)."""
        self._obs.metrics.counter("verbs.wr_posted", rank=self.rank).inc()
        self._obs.metrics.gauge("verbs.outstanding_wrs", rank=self.rank).set(
            len(self._outstanding)
        )
        spans = self._obs.spans
        spans.instant(
            self.track,
            "wr_post",
            self.sim.now,
            wr_id=request.wr_id,
            opcode=request.opcode.value,
            destination=destination,
        )
        # The flow is closed at retirement (same key, this rank's track) and,
        # for two-sided sends, at the receiver's delivery (cross-rank track).
        spans.flow_start(
            self.track, "wr", self.sim.now, key=("wr", self.rank, request.wr_id)
        )

    def _file(self, completions: Iterable[WorkCompletion]) -> None:
        for completion in completions:
            self._outstanding.pop(completion.wr_id, None)
            self._retired[completion.wr_id] = completion
            self._obs.metrics.counter("verbs.wr_retired", rank=self.rank).inc()
            # Per-op latency split: post→completion is NIC service + transfer
            # time; completion→retire is how long the CQE sat unclaimed.
            opcode = completion.opcode.value
            self._obs.metrics.histogram(
                "verbs.latency.service", layout="sim_time", opcode=opcode
            ).observe(completion.completed_at - completion.posted_at)
            self._obs.metrics.histogram(
                "verbs.latency.retire", layout="sim_time", opcode=opcode
            ).observe(self.sim.now - completion.completed_at)
            self._obs.spans.flow_end(
                self.track,
                "wr",
                self.sim.now,
                key=("wr", self.rank, completion.wr_id),
            )
            self._obs.spans.instant(
                self.track,
                "wr_retire",
                self.sim.now,
                wr_id=completion.wr_id,
                opcode=completion.opcode.value,
                status=completion.status.value,
            )
        self._obs.metrics.gauge("verbs.outstanding_wrs", rank=self.rank).set(
            len(self._outstanding)
        )

    def poll(self) -> List[WorkCompletion]:
        """Retire whatever is ready, without blocking; claims the completions."""
        self._file(self.cq.poll())
        out = [self._retired[key] for key in sorted(self._retired)]
        self._retired.clear()
        return out

    def completion_of(self, request: WorkRequest) -> Optional[WorkCompletion]:
        """The retired completion of *request*, or ``None`` if still in flight."""
        self._file(self.cq.poll())
        return self._retired.get(request.wr_id)

    @property
    def outstanding_count(self) -> int:
        """Requests posted but not yet retired by this context's helpers."""
        self._file(self.cq.poll())
        return len(self._outstanding)

    def wait(self, requests: Iterable[WorkRequest]):
        """Generator: block until every request in *requests* has completed.

        Returns the completions in the order of *requests* and claims them.
        Waiting on a request whose completion was already claimed (or that
        was never posted through this context) raises immediately — the
        completion can never arrive, so blocking would strand the process.
        """
        wanted = list(requests)
        self._file(self.cq.poll())
        for request in wanted:
            if (
                request.wr_id not in self._retired
                and request.wr_id not in self._outstanding
            ):
                raise ValueError(
                    f"work request {request.wr_id} is not outstanding on rank "
                    f"{self.rank}: its completion was already claimed, or it "
                    f"was posted through a different context"
                )
        while any(request.wr_id not in self._retired for request in wanted):
            ready = yield from self.cq.wait(1)
            self._file(ready)
        claimed: Dict[int, WorkCompletion] = {}
        for request in wanted:
            if request.wr_id not in claimed:
                claimed[request.wr_id] = self._retired.pop(request.wr_id)
        return [claimed[request.wr_id] for request in wanted]

    def wait_all(self):
        """Generator: block until every outstanding request has completed.

        Returns all unclaimed completions in posting (wr_id) order.
        """
        self._file(self.cq.poll())
        while self._outstanding:
            ready = yield from self.cq.wait(1)
            self._file(ready)
        out = [self._retired[key] for key in sorted(self._retired)]
        self._retired.clear()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VerbsContext P{self.rank} qps={len(self._queue_pairs)} "
            f"outstanding={len(self._outstanding)}>"
        )
