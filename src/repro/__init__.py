"""repro — reproduction of Butelle & Coti, *A Model for Coherent Distributed
Memory For Race Condition Detection* (IPPS 2011).

The package simulates a cluster whose NICs offer one-sided RDMA ``put``/``get``
with OS bypass, a PGAS-style runtime on top of it, and the paper's
vector-clock race-detection algorithm instrumenting every remote memory
access.  See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the reproduced figures.

Quick start::

    from repro import DSMRuntime, RuntimeConfig

    runtime = DSMRuntime(RuntimeConfig(world_size=3))
    runtime.declare_scalar("a", owner=1, initial=0)

    def writer(api):
        yield from api.put("a", api.rank)

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, writer)
    runtime.set_program(1, idle)
    runtime.set_program(2, writer)
    result = runtime.run()
    print(result.races.summary())
"""

from repro.core import (
    DetectorConfig,
    DualClockRaceDetector,
    LamportClock,
    MatrixClock,
    RaceRecord,
    RaceReport,
    SignalPolicy,
    VectorClock,
    WriteCheckMode,
    compare_clocks,
    concurrent,
    happens_before,
    max_clock,
)
from repro.memory import GlobalAddress, PlacementPolicy
from repro.net import NICConfig, Topology
from repro.runtime import DSMRuntime, ProcessAPI, RunResult, RuntimeConfig
from repro.verbs import (
    CompletionQueue,
    CompletionStatus,
    Opcode,
    QueuePair,
    VerbsContext,
    WorkCompletion,
    WorkRequest,
)

__version__ = "1.0.0"

__all__ = [
    "DetectorConfig",
    "DualClockRaceDetector",
    "LamportClock",
    "MatrixClock",
    "RaceRecord",
    "RaceReport",
    "SignalPolicy",
    "VectorClock",
    "WriteCheckMode",
    "compare_clocks",
    "concurrent",
    "happens_before",
    "max_clock",
    "GlobalAddress",
    "PlacementPolicy",
    "NICConfig",
    "Topology",
    "DSMRuntime",
    "ProcessAPI",
    "RunResult",
    "RuntimeConfig",
    "CompletionQueue",
    "CompletionStatus",
    "Opcode",
    "QueuePair",
    "VerbsContext",
    "WorkCompletion",
    "WorkRequest",
    "__version__",
]
