"""Lock-free shared counter: the canonical one-sided atomics workload.

Every rank bumps one shared counter ``increments`` times.  Two modes:

* ``use_atomics=True`` (default) — each bump is a single ``fetch_add``
  serviced atomically by the owning NIC.  No update can be lost: the final
  value is exactly ``world_size * increments`` on **every** seed, which is
  how lock-free algorithms look to the paper's execution-varying ground
  truth (the outcome never diverges).  The happens-before detector still
  signals the causally unordered RMW/RMW pairs — benign races in the
  paper's sense (Section IV-D), silenced by the
  ``treat_rmw_pairs_as_ordered`` detector knob.
* ``use_atomics=False`` — each bump is the get-then-put read-modify-write
  idiom of the master/worker ticket.  Concurrent bumps overlap and lose
  updates on most interleavings; the ground truth observes divergent final
  values and the detector flags a true race.

The pair gives the detector-accuracy experiments a minimal scenario where
"racy by happens-before" and "racy by observable outcome" genuinely differ.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive


class LockFreeCounterWorkload(WorkloadScenario):
    """All ranks bump one shared counter, atomically or with get-then-put."""

    name = "lock-free-counter"
    expected_racy = True

    def __init__(
        self,
        world_size: int = 4,
        increments: int = 4,
        work_cost: float = 1.0,
        use_atomics: bool = True,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_positive(increments, "increments")
        self.world_size = world_size
        self.increments = increments
        self.work_cost = work_cost
        self.use_atomics = use_atomics
        self.expected_racy_symbols = {"counter"}

    @property
    def expected_total(self) -> int:
        """The lossless final counter value."""
        return self.world_size * self.increments

    def build(self, seed: int = 0) -> DSMRuntime:
        """Counter lives on rank 0; every rank (rank 0 included) bumps it."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed, world_size=self.world_size, latency="uniform",
            )
        )
        runtime.declare_scalar("counter", owner=0, initial=0)
        workload = self

        def program(api):
            rng = runtime.sim.rng.stream(f"workload.atomic_counter.P{api.rank}")
            observed = []
            for _ in range(workload.increments):
                yield from api.compute(workload.work_cost * (0.5 + float(rng.uniform())))
                if workload.use_atomics:
                    old = yield from api.fetch_add("counter", 1)
                else:
                    old = (yield from api.get("counter")) or 0
                    yield from api.put("counter", old + 1)
                observed.append(old)
            api.private.write("observed", observed)

        runtime.set_spmd_program(program)
        return runtime
