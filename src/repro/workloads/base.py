"""Shared machinery for workload generators.

A workload is anything that can *build* a fully configured
:class:`~repro.runtime.runtime.DSMRuntime` for a given seed (so the
ground-truth oracle can re-run it under different interleavings) and *run* it
to produce a :class:`WorkloadResult` that pairs the runtime's
:class:`~repro.runtime.runtime.RunResult` with workload-specific expectations
(does the author of the workload consider it racy? on which symbols?).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.runtime.runtime import DSMRuntime, RunResult, RuntimeConfig


@dataclass
class WorkloadResult:
    """A completed workload run plus the workload's own expectations."""

    name: str
    runtime: DSMRuntime
    run: RunResult
    expected_racy: bool
    expected_racy_symbols: Set[str] = field(default_factory=set)
    notes: str = ""

    @property
    def detected_racy(self) -> bool:
        """True when the online detector flagged at least one race."""
        return self.run.race_count > 0

    @property
    def detection_matches_expectation(self) -> bool:
        """True when the detector's verdict agrees with the workload label."""
        return self.detected_racy == self.expected_racy

    def detected_symbols(self) -> Set[str]:
        """Shared symbols involved in at least one race signal."""
        return {s for s in self.run.races.by_symbol() if s is not None}


class WorkloadScenario(abc.ABC):
    """Base class for parameterized workloads."""

    #: Name used in reports and benchmark ids.
    name: str = "workload"
    #: Whether the scenario, as parameterized, is expected to contain races.
    expected_racy: bool = False
    #: Symbols expected to be flagged when ``expected_racy`` is true.
    expected_racy_symbols: Set[str] = set()

    def __init__(self, config: Optional[RuntimeConfig] = None) -> None:
        self.base_config = config if config is not None else RuntimeConfig()

    @abc.abstractmethod
    def build(self, seed: int = 0) -> DSMRuntime:
        """Return a ready-to-run runtime for *seed* (declare data, set programs)."""

    def run(self, seed: int = 0) -> WorkloadResult:
        """Build and run the workload once."""
        runtime = self.build(seed)
        result = runtime.run()
        return WorkloadResult(
            name=self.name,
            runtime=runtime,
            run=result,
            expected_racy=self.expected_racy,
            expected_racy_symbols=set(self.expected_racy_symbols),
            notes=self.describe(),
        )

    def factory(self):
        """A :data:`RuntimeFactory` suitable for the ground-truth oracle."""
        return lambda seed: self.build(seed)

    def describe(self) -> str:
        """One-line description used in benchmark output."""
        return self.__class__.__doc__.strip().splitlines()[0] if self.__class__.__doc__ else self.name

    def _config_for_seed(self, seed: int, **overrides: Any) -> RuntimeConfig:
        """The base config with the seed (and any overrides) applied."""
        return self.base_config.with_overrides(seed=seed, **overrides)
