"""Master/worker computation — the paper's example of an *intentional* race.

Section IV-D: *"some algorithms contain race conditions on purpose.  For
example, parallel master-worker computation patterns induce a race condition
between workers when the results are sent to the master.  Therefore, race
conditions must be signaled to the user ... but they must not abort the
execution of the program."*

The workload models exactly that: the master owns a result array plus a shared
"next ticket" counter; each worker repeatedly (1) reads the ticket, (2) writes
an incremented ticket back, (3) computes the task and (4) puts its result into
the master's result area.  Steps (1)–(2) on the ticket and the appends to the
shared completion counter are unsynchronized and therefore race — on purpose.
Each task's result goes to a distinct cell, so the *results* themselves are
well-defined; only the coordination cells are racy, which is what the paper
calls a benign race.

Benchmark E10 asserts two things: the detector signals races on the ticket /
completion cells, and the run completes normally (the default signalling
policy never aborts).
"""

from __future__ import annotations

from typing import Optional

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive


def default_task(task_id: int, rank: int) -> int:
    """The unit of work: a cheap deterministic function of the task id."""
    return task_id * task_id + rank


class MasterWorkerWorkload(WorkloadScenario):
    """Self-scheduling master/worker pattern with intentionally racy coordination."""

    name = "master-worker"
    expected_racy = True

    def __init__(
        self,
        world_size: int = 5,
        tasks: int = 12,
        task_cost: float = 2.0,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        if world_size < 2:
            raise ValueError("master-worker needs at least one master and one worker")
        require_positive(tasks, "tasks")
        self.world_size = world_size
        self.tasks = tasks
        self.task_cost = task_cost
        # The ticket and completion counter race by construction; because the
        # racy ticket can hand the same task to two workers, the result cell of
        # a duplicated task is also written twice without ordering.
        self.expected_racy_symbols = {"ticket", "completed", "results"}

    @property
    def workers(self) -> int:
        """Number of worker ranks (everyone except rank 0, the master)."""
        return self.world_size - 1

    def build(self, seed: int = 0) -> DSMRuntime:
        """Master is rank 0; workers are ranks 1..n-1."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
                public_memory_cells=max(256, self.tasks + 16),
            )
        )
        runtime.declare_scalar("ticket", owner=0, initial=0)
        runtime.declare_scalar("completed", owner=0, initial=0)
        runtime.declare_array(
            "results", self.tasks, policy=PlacementPolicy.OWNER, owner=0, initial=None
        )
        workload = self

        # Bound every loop explicitly: the racy read-modify-writes below can
        # lose updates, so an unbounded "poll until completed == tasks" could
        # spin forever.  The observable effect of the race (a final "completed"
        # counter below the task count on some interleavings) is exactly what
        # the ground-truth oracle looks for.
        max_polls = 4 * self.tasks + 8

        def master(api):
            # The master polls its *own* public memory (no network traffic);
            # the polling reads race with the workers' increments of
            # "completed" — the intentional race of the paper.
            done = 0
            for _poll in range(max_polls):
                if done >= workload.tasks:
                    break
                yield from api.compute(workload.task_cost)
                done = (yield from api.get("completed")) or 0
            collected = []
            for index in range(workload.tasks):
                value = yield from api.get("results", index=index)
                collected.append(value)
            api.private.write("collected", collected)
            api.private.write("completed_seen", done)

        def worker(api):
            rng = runtime.sim.rng.stream(f"workload.master_worker.P{api.rank}")
            for _iteration in range(workload.tasks):
                ticket = (yield from api.get("ticket")) or 0
                if ticket >= workload.tasks:
                    break
                # Unsynchronized read-modify-write of the ticket: two workers
                # can grab the same task; that is the (benign) race.
                yield from api.put("ticket", ticket + 1)
                yield from api.compute(workload.task_cost * (0.5 + float(rng.uniform())))
                result = default_task(ticket, api.rank)
                yield from api.put("results", result, index=ticket)
                done = yield from api.get("completed")
                yield from api.put("completed", (done or 0) + 1)

        runtime.set_program(0, master)
        for rank in range(1, self.world_size):
            runtime.set_program(rank, worker)
        return runtime
