"""1-D stencil with *overlapped* halo exchange over the verbs layer.

The classic optimization the blocking :class:`~repro.workloads.stencil.StencilWorkload`
cannot express: post the boundary puts asynchronously, relax the interior of
the block (which needs no ghost values) while the messages are in flight, and
only then wait for the completions and touch the boundary cells.  Both halo
puts are posted before any computation, so they additionally proceed
concurrently with *each other* — two queue pairs, one per neighbour — where
the blocking version serializes them.

Numerically the workload performs exactly the same Jacobi relaxation as the
blocking stencil (same update order per iteration, separated by the same
barriers), so for identical parameters the two versions produce identical
final blocks; only the simulated time differs.  The pair is the benchmark
``bench_verbs_overlap`` data point: overlapped simulated time must be
strictly smaller.

``interior_fraction`` models how much of the per-iteration computation is
interior work that can hide communication (close to 1 for realistically
large blocks).
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive


class VerbsStencilWorkload(WorkloadScenario):
    """Jacobi 1-D stencil with communication/computation overlap via verbs."""

    name = "stencil-1d-verbs"

    def __init__(
        self,
        world_size: int = 4,
        cells_per_rank: int = 8,
        iterations: int = 3,
        use_barriers: bool = True,
        compute_cost: float = 1.0,
        interior_fraction: float = 0.8,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_positive(cells_per_rank, "cells_per_rank")
        require_positive(iterations, "iterations")
        if not (0.0 <= interior_fraction <= 1.0):
            raise ValueError(
                f"interior_fraction must be in [0, 1], got {interior_fraction}"
            )
        self.world_size = world_size
        self.cells_per_rank = cells_per_rank
        self.iterations = iterations
        self.use_barriers = use_barriers
        self.compute_cost = compute_cost
        self.interior_fraction = interior_fraction
        self.expected_racy = not use_barriers
        self.expected_racy_symbols = (
            {f"halo{r}" for r in range(world_size)} if self.expected_racy else set()
        )

    def build(self, seed: int = 0) -> DSMRuntime:
        """Same data layout as the blocking stencil: one 2-cell halo per rank."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
                public_memory_cells=max(64, self.cells_per_rank + 8),
            )
        )
        for rank in range(self.world_size):
            runtime.declare_array(
                f"halo{rank}", 2, policy=PlacementPolicy.OWNER, owner=rank, initial=0.0
            )
        workload = self

        def program(api):
            rank = api.rank
            n = workload.cells_per_rank
            block: List[float] = [float(rank * n + i) for i in range(n)]
            left = rank - 1
            right = rank + 1
            interior_cost = workload.compute_cost * workload.interior_fraction
            boundary_cost = workload.compute_cost - interior_cost
            for _iteration in range(workload.iterations):
                # Post both boundary puts; they fly concurrently on their own
                # queue pairs while this rank relaxes its interior.
                posted = []
                if left >= 0:
                    posted.append(api.iput(f"halo{left}", block[0], index=1))
                if right < workload.world_size:
                    posted.append(api.iput(f"halo{right}", block[-1], index=0))
                yield from api.compute(interior_cost)
                if posted:
                    yield from api.wait(*posted)
                if workload.use_barriers:
                    yield from api.barrier()
                ghost_left = yield from api.get(f"halo{rank}", index=0)
                ghost_right = yield from api.get(f"halo{rank}", index=1)
                yield from api.compute(boundary_cost)
                padded = [float(ghost_left or 0.0)] + block + [float(ghost_right or 0.0)]
                block = [
                    (padded[i - 1] + padded[i] + padded[i + 1]) / 3.0
                    for i in range(1, n + 1)
                ]
                if workload.use_barriers:
                    yield from api.barrier()
            api.private.write("block", block)
            api.private.write("iterations", workload.iterations)

        runtime.set_spmd_program(program)
        return runtime
