"""1-D stencil with halo exchange over one-sided puts.

This is the archetypal PGAS application the paper's introduction motivates:
each rank owns a block of a 1-D domain plus two halo cells, iterates a 3-point
update, and at the end of every iteration pushes its boundary values into its
neighbours' halo cells with one-sided ``put`` operations.

Correctly synchronized (``use_barriers=True``, the default) the exchange is
separated from the computation by barriers and the detector must stay silent.
With ``use_barriers=False`` the halo writes of iteration ``k+1`` are
unordered with the halo *reads* of iteration ``k`` on the neighbouring rank —
a classic, genuinely observable race that the detector must flag.  The pair of
configurations is used both as an accuracy data point (E13) and as the
workload for the detection-overhead measurement (E11), since its communication
pattern is regular and scales cleanly with world size and iteration count.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive


class StencilWorkload(WorkloadScenario):
    """Jacobi-style 1-D stencil with halo exchange through remote puts."""

    name = "stencil-1d"

    def __init__(
        self,
        world_size: int = 4,
        cells_per_rank: int = 8,
        iterations: int = 3,
        use_barriers: bool = True,
        compute_cost: float = 1.0,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_positive(cells_per_rank, "cells_per_rank")
        require_positive(iterations, "iterations")
        self.world_size = world_size
        self.cells_per_rank = cells_per_rank
        self.iterations = iterations
        self.use_barriers = use_barriers
        self.compute_cost = compute_cost
        self.expected_racy = not use_barriers
        self.expected_racy_symbols = (
            {f"halo{r}" for r in range(world_size)} if self.expected_racy else set()
        )

    def build(self, seed: int = 0) -> DSMRuntime:
        """One halo array per rank: ``halo<r>[0]`` = left ghost, ``[1]`` = right ghost."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
                public_memory_cells=max(64, self.cells_per_rank + 8),
            )
        )
        for rank in range(self.world_size):
            runtime.declare_array(
                f"halo{rank}", 2, policy=PlacementPolicy.OWNER, owner=rank, initial=0.0
            )
        workload = self

        def program(api):
            rank = api.rank
            n = workload.cells_per_rank
            # The interior block lives in private memory; only the halos are shared.
            block: List[float] = [float(rank * n + i) for i in range(n)]
            left = rank - 1
            right = rank + 1
            for iteration in range(workload.iterations):
                # Push boundary values into the neighbours' halo cells.
                if left >= 0:
                    yield from api.put(f"halo{left}", block[0], index=1)
                if right < workload.world_size:
                    yield from api.put(f"halo{right}", block[-1], index=0)
                if workload.use_barriers:
                    yield from api.barrier()
                # Read own halos (local public memory) and relax the block.
                ghost_left = yield from api.get(f"halo{rank}", index=0)
                ghost_right = yield from api.get(f"halo{rank}", index=1)
                yield from api.compute(workload.compute_cost)
                padded = [float(ghost_left or 0.0)] + block + [float(ghost_right or 0.0)]
                block = [
                    (padded[i - 1] + padded[i] + padded[i + 1]) / 3.0
                    for i in range(1, n + 1)
                ]
                if workload.use_barriers:
                    yield from api.barrier()
            api.private.write("block", block)
            api.private.write("iterations", workload.iterations)

        runtime.set_spmd_program(program)
        return runtime
