"""Producer/consumer hand-off through a shared buffer and a ready flag.

The producer writes a payload into a shared buffer owned by the consumer and
then raises a shared flag; the consumer reads the flag and, when it sees it
raised, reads the buffer.  Without any synchronization primitive the flag and
buffer accesses are causally unordered: the consumer can read the flag before
the producer's write lands (observing "not ready"), or — worse, on a fabric
that does not order the two puts — see the flag raised while the buffer still
holds stale data.  This is the canonical *true* race and the detector must
flag it.

``synchronized=True`` replaces the flag protocol with a barrier between the
producer's writes and the consumer's reads, restoring a happens-before edge;
the detector must then stay silent and the consumer always observes the full
payload.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive


class ProducerConsumerWorkload(WorkloadScenario):
    """Flag/buffer hand-off between one producer and one consumer."""

    name = "producer-consumer"

    def __init__(
        self,
        payload_cells: int = 4,
        consumer_delay: float = 3.0,
        synchronized: bool = False,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(payload_cells, "payload_cells")
        self.payload_cells = payload_cells
        self.consumer_delay = consumer_delay
        self.synchronized = synchronized
        self.expected_racy = not synchronized
        self.expected_racy_symbols = (
            {"flag", "buffer"} if self.expected_racy else set()
        )
        self.world_size = 2

    @staticmethod
    def payload(index: int) -> str:
        """Deterministic payload contents."""
        return f"item-{index}"

    def build(self, seed: int = 0) -> DSMRuntime:
        """Rank 0 produces, rank 1 consumes; both shared objects live on rank 1."""
        runtime = DSMRuntime(
            self._config_for_seed(seed, world_size=2, latency="uniform")
        )
        runtime.declare_array("buffer", self.payload_cells, owner=1, initial=None)
        runtime.declare_scalar("flag", owner=1, initial=0)
        workload = self

        def producer(api):
            for index in range(workload.payload_cells):
                yield from api.put("buffer", workload.payload(index), index=index)
            if workload.synchronized:
                # A barrier is the explicit synchronization that orders the
                # consumer's reads after every write.
                yield from api.barrier()
            else:
                yield from api.put("flag", 1)

        def consumer(api):
            # The consumer's think time is drawn from the seeded stream so that
            # different seeds place its reads at different points of the
            # producer's write sequence — this is what lets the seed-varying
            # oracle observe the divergent outcomes of the race.
            rng = runtime.sim.rng.stream("workload.producer_consumer.consumer")
            yield from api.compute(workload.consumer_delay * (0.5 + float(rng.uniform())))
            if workload.synchronized:
                yield from api.barrier()
            else:
                ready = yield from api.get("flag")
                api.private.write("saw_flag", ready)
            received = []
            for index in range(workload.payload_cells):
                value = yield from api.get("buffer", index=index)
                received.append(value)
            api.private.write("received", received)

        runtime.set_program(0, producer)
        runtime.set_program(1, consumer)
        return runtime
