"""One-sided, non-collective global reduction (the paper's future work).

Section V-B: *"a process can perform a reduction (i.e., a global operation on
some data held by all the other processes) without any participation for the
other processes, by fetching the data remotely."*

Each rank deposits a contribution into its own slot of a block-distributed
shared array; one designated rank then reduces the whole array with remote
``get`` operations only.  Two variants:

* ``synchronize=True`` (default): a barrier separates the deposits from the
  reduction, so the reducer's reads are ordered after every write — no race,
  and the reduced value is exact;
* ``synchronize=False``: the reducer starts immediately; its reads race with
  the laggards' writes, the detector flags them, and (on some interleavings)
  the reduced value misses contributions — the observable symptom the oracle
  keys on.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive, require_rank


class OneSidedReductionWorkload(WorkloadScenario):
    """Global sum performed by one process through remote gets."""

    name = "one-sided-reduction"

    def __init__(
        self,
        world_size: int = 6,
        reducer: int = 0,
        contribution_cost: float = 2.0,
        synchronize: bool = True,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_rank(reducer, world_size, "reducer")
        self.world_size = world_size
        self.reducer = reducer
        self.contribution_cost = contribution_cost
        self.synchronize = synchronize
        self.expected_racy = not synchronize
        self.expected_racy_symbols = {"contrib"} if self.expected_racy else set()

    def expected_sum(self) -> int:
        """The exact reduction value when no contribution is missed."""
        return sum(self.contribution(rank) for rank in range(self.world_size))

    @staticmethod
    def contribution(rank: int) -> int:
        """Deterministic per-rank contribution."""
        return (rank + 1) * 10

    def build(self, seed: int = 0) -> DSMRuntime:
        """Block-distributed contribution array, one element per rank."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
            )
        )
        runtime.declare_array(
            "contrib", self.world_size, policy=PlacementPolicy.BLOCK, initial=0
        )
        runtime.declare_scalar("total", owner=self.reducer, initial=None)
        workload = self

        def program(api):
            rng = runtime.sim.rng.stream(f"workload.reduction.P{api.rank}")
            # Every rank (including the reducer) deposits its contribution
            # into its own slot after some local work.
            yield from api.compute(workload.contribution_cost * float(rng.uniform()))
            yield from api.put(
                "contrib", workload.contribution(api.rank), index=api.rank
            )
            if workload.synchronize:
                yield from api.barrier()
            if api.rank == workload.reducer:
                total = yield from api.reduce_shared(
                    "contrib", workload.world_size, operator=lambda a, b: a + (b or 0),
                    initial=0,
                )
                yield from api.put("total", total)
                api.private.write("total", total)
            elif workload.synchronize:
                # Nothing else to do; the barrier already ordered everything.
                yield from api.compute(0.0)

        runtime.set_spmd_program(program)
        return runtime
