"""Atomic work stealing: decentralized master/worker on one-sided atomics.

The paper's master/worker pattern (Section IV-D) coordinates through a racy
get-then-put ticket, so two workers can grab the same task.  This workload is
the modern lock-free counterpart: every rank owns a shard of tasks behind a
shared per-rank ``head<r>`` counter, pops its own tasks with ``fetch_add``
and, once its shard is exhausted, *steals* from the others by
``compare_and_swap`` on the victim's head — the claim either succeeds
exclusively or observably fails, so **every task executes exactly once** on
every interleaving.  Each task's result goes to a distinct cell of a shared
``results`` array and is a pure function of the task id, so the final results
(and the ``done`` completion counter) are identical across seeds even though
*which rank* ran each task varies freely with timing.

``imbalance`` skews the per-rank task cost so fast ranks drain their shard
first and genuinely steal.  The coordination cells carry causally unordered
accesses flagged by the default detector — the lock-free analogue of the
paper's "signal but do not abort" benign-race story — while the
deterministic ``results`` stay clean.  Under
``treat_rmw_pairs_as_ordered`` the pure-RMW traffic on ``done`` goes
silent, but the ``head<r>`` cells stay flagged: thieves *scan* victims'
heads with plain ``get`` before attempting the CAS, and an RMW unordered
with a plain read is a race under either knob setting.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_positive


def task_value(task_id: int) -> int:
    """The result of one task: depends only on the task, never on the executor."""
    return 3 * task_id + 1


class AtomicWorkStealingWorkload(WorkloadScenario):
    """Per-rank task shards with fetch_add self-scheduling and CAS stealing."""

    name = "atomic-work-stealing"
    expected_racy = True

    def __init__(
        self,
        world_size: int = 4,
        tasks_per_rank: int = 3,
        task_cost: float = 1.0,
        imbalance: float = 1.0,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_positive(tasks_per_rank, "tasks_per_rank")
        if imbalance < 0:
            raise ValueError(f"imbalance must be non-negative, got {imbalance}")
        self.world_size = world_size
        self.tasks_per_rank = tasks_per_rank
        self.task_cost = task_cost
        self.imbalance = imbalance
        self.expected_racy_symbols = {f"head{r}" for r in range(world_size)} | {"done"}

    @property
    def total_tasks(self) -> int:
        """Number of tasks across all shards."""
        return self.world_size * self.tasks_per_rank

    def build(self, seed: int = 0) -> DSMRuntime:
        """Shard ``r`` is tasks ``r*tasks_per_rank ..< (r+1)*tasks_per_rank``."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
                public_memory_cells=max(256, self.total_tasks + 16),
            )
        )
        for rank in range(self.world_size):
            runtime.declare_scalar(f"head{rank}", owner=rank, initial=0)
        runtime.declare_scalar("done", owner=0, initial=0)
        runtime.declare_array(
            "results", self.total_tasks, policy=PlacementPolicy.BLOCK, initial=None
        )
        workload = self

        def program(api):
            rank = api.rank
            n = workload.world_size
            shard = workload.tasks_per_rank
            # Owning rank r's tasks cost more the higher r is: low ranks
            # finish early and must steal to keep the run balanced.
            my_cost = workload.task_cost * (1.0 + workload.imbalance * rank)
            executed = []

            def run_task(owner, slot):
                task_id = owner * shard + slot
                yield from api.compute(my_cost)
                yield from api.put("results", task_value(task_id), index=task_id)
                yield from api.fetch_add("done", 1)
                executed.append(task_id)

            own_exhausted = False
            # Generous safety bound; the loop exits as soon as a full scan
            # finds every shard drained.
            for _attempt in range(4 * workload.total_tasks + 4 * n + 8):
                claimed = False
                if not own_exhausted:
                    slot = yield from api.fetch_add(f"head{rank}", 1)
                    if slot < shard:
                        yield from run_task(rank, slot)
                        claimed = True
                    else:
                        own_exhausted = True
                if claimed:
                    continue
                victims_drained = True
                for offset in range(1, n):
                    victim = (rank + offset) % n
                    head = (yield from api.get(f"head{victim}")) or 0
                    if head >= shard:
                        continue
                    victims_drained = False
                    # Claim exactly task `head` of the victim's shard; a lost
                    # CAS means someone else claimed it first — observably.
                    prior = yield from api.compare_and_swap(
                        f"head{victim}", head, head + 1
                    )
                    if prior == head:
                        yield from run_task(victim, head)
                        claimed = True
                        break
                if not claimed and own_exhausted and victims_drained:
                    break
            yield from api.barrier()
            if rank == 0:
                done = yield from api.get("done")
                api.private.write("done_seen", done)
            api.private.write("executed", executed)

        runtime.set_spmd_program(program)
        return runtime
