"""Executable versions of the paper's figures.

Each ``figureX`` function builds a fresh, fully configured
:class:`~repro.runtime.runtime.DSMRuntime` reproducing the corresponding
scenario; the module-level ``FIGURE_EXPECTATIONS`` table records what the
paper says should happen, and the integration tests / benchmarks assert it.

All scenarios use a deterministic constant-latency fabric so the interleaving
(and therefore every clock value) is identical run after run; small
``compute`` offsets stagger the processes the same way the space-time diagrams
of the paper do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.detector import DetectorConfig
from repro.runtime.runtime import DSMRuntime, RuntimeConfig


@dataclass(frozen=True)
class FigureExpectation:
    """What the paper's figure claims about the scenario."""

    figure: str
    race_expected: bool
    description: str


FIGURE_EXPECTATIONS: Dict[str, FigureExpectation] = {
    "fig2": FigureExpectation(
        "Figure 2", False,
        "put is one data message, get is two data messages; both complete",
    ),
    "fig3": FigureExpectation(
        "Figure 3", True,
        "a put on a datum is delayed until a concurrent get on it releases the NIC lock; "
        "the two accesses remain causally unordered, so the detector also signals them",
    ),
    "fig4": FigureExpectation(
        "Figure 4", False,
        "two concurrent gets of an initialized variable are not a race",
    ),
    "fig5a": FigureExpectation(
        "Figure 5a", True,
        "two concurrent puts from P0 and P2 into P1's datum are a race (110 x 001)",
    ),
    "fig5b": FigureExpectation(
        "Figure 5b", False,
        "get1, m1, m2, m3 form a causal chain; m3's put is ordered after get1's read",
    ),
    "fig5c": FigureExpectation(
        "Figure 5c", True,
        "m1 and m3 write the same datum; their arrivals at P1 are not causally ordered",
    ),
}


def _base_config(
    world_size: int,
    seed: int,
    detector: Optional[DetectorConfig],
    clock_transport: str = "roundtrip",
) -> RuntimeConfig:
    return RuntimeConfig(
        world_size=world_size,
        seed=seed,
        topology="complete",
        latency="constant",
        detector=detector if detector is not None else DetectorConfig(),
        clock_transport=clock_transport,
    )


def _idle(api):
    """A program that takes no shared-memory action."""
    yield from api.compute(0.0)


# ---------------------------------------------------------------------------
# Figure 2 — remote R/W memory accesses (put = 1 message, get = 2 messages)
# ---------------------------------------------------------------------------

def figure2_put_get(
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    clock_transport: str = "roundtrip",
) -> DSMRuntime:
    """P2 writes into P1's memory then reads it back (Figure 2).

    The two operations are issued by the same process, so no race exists; the
    benchmark checks the message decomposition instead: the put generates one
    data message, the get generates two.
    """
    runtime = DSMRuntime(_base_config(3, seed, detector, clock_transport))
    runtime.declare_scalar("x", owner=1, initial=0)

    def p2(api):
        yield from api.put("x", 42)
        value = yield from api.get("x")
        api.private.write("observed", value)

    runtime.set_program(0, _idle)
    runtime.set_program(1, _idle)
    runtime.set_program(2, p2)
    return runtime


# ---------------------------------------------------------------------------
# Figure 3 — a put is delayed until the end of a get on the same data
# ---------------------------------------------------------------------------

def figure3_lock_serialization(
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    clock_transport: str = "roundtrip",
) -> DSMRuntime:
    """P2 gets a datum of P1 while P0 tries to put into it (Figure 3).

    P2's get acquires the NIC lock on the datum first (it starts immediately;
    P0 waits a little before issuing the put), so P0's put is queued behind it
    and only takes effect after the get completes.  The test asserts the lock
    table saw contention and the final value is P0's (the put lands last).
    """
    runtime = DSMRuntime(_base_config(3, seed, detector, clock_transport))
    runtime.declare_scalar("d", owner=1, initial="initial")

    def p2_reader(api):
        value = yield from api.get("d")
        api.private.write("read", value)

    def p0_writer(api):
        # Start after P2's lock request is in flight but before it releases.
        yield from api.compute(1.5)
        yield from api.put("d", "from-P0")

    runtime.set_program(0, p0_writer)
    runtime.set_program(1, _idle)
    runtime.set_program(2, p2_reader)
    return runtime


# ---------------------------------------------------------------------------
# Figure 4 — two concurrent get operations are not a race
# ---------------------------------------------------------------------------

def figure4_concurrent_reads(
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    clock_transport: str = "roundtrip",
) -> DSMRuntime:
    """P0 and P2 concurrently get variable ``a`` initialized to ``A`` (Figure 4).

    Neither operation modifies the value, so the dual-clock detector must not
    signal anything; both readers must observe the initial value ``"A"``.
    """
    runtime = DSMRuntime(_base_config(3, seed, detector, clock_transport))
    runtime.declare_scalar("a", owner=1, initial="A")

    def reader(api):
        value = yield from api.get("a")
        api.private.write("a", value)

    runtime.set_program(0, reader)
    runtime.set_program(1, _idle)
    runtime.set_program(2, reader)
    return runtime


# ---------------------------------------------------------------------------
# Figure 5a — race between two concurrent puts
# ---------------------------------------------------------------------------

def figure5a_concurrent_puts(
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    clock_transport: str = "roundtrip",
) -> DSMRuntime:
    """P0 and P2 both put into P1's datum without synchronization (Figure 5a).

    The two writes carry incomparable clocks (paper: ``110 × 001``), so the
    detector must signal a race on reception of the second one.
    """
    runtime = DSMRuntime(_base_config(3, seed, detector, clock_transport))
    runtime.declare_scalar("a", owner=1, initial=0)

    def writer(api):
        # Stagger slightly so the message order is deterministic; the clocks
        # are incomparable regardless of which write lands first.
        yield from api.compute(0.25 * api.rank)
        yield from api.put("a", f"m-from-P{api.rank}")

    runtime.set_program(0, writer)
    runtime.set_program(1, _idle)
    runtime.set_program(2, writer)
    return runtime


# ---------------------------------------------------------------------------
# Figure 5b — causally chained accesses: no race
# ---------------------------------------------------------------------------

def figure5b_causal_chain(
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    clock_transport: str = "roundtrip",
) -> DSMRuntime:
    """The causal chain of Figure 5b: get1, m1, m2, m3 — no race.

    * ``get1`` — P1 reads ``a`` (owned by P0);
    * ``m1``  — P0 puts into ``b`` (owned by P1);
    * ``m2``  — P1, after reading ``b``, puts into ``c`` (owned by P2);
    * ``m3``  — P2, after reading ``c``, puts into ``a`` (owned by P0).

    Every access is causally ordered with the previous one through the data
    that flows along the chain, so the detector must stay silent even though
    four different processes touch ``a``, ``b`` and ``c``.
    """
    runtime = DSMRuntime(_base_config(3, seed, detector, clock_transport))
    runtime.declare_scalar("a", owner=0, initial="A0")
    runtime.declare_scalar("b", owner=1, initial=None)
    runtime.declare_scalar("c", owner=2, initial=None)

    # The stages are staggered with fixed local-compute delays chosen well past
    # the (deterministic, constant-latency) completion time of the previous
    # stage, so each process reads the chained value only after it has arrived;
    # polling loops would add extra reads that are themselves unsynchronized
    # with the incoming writes and would (correctly) be reported as races,
    # which is not the scenario the figure depicts.
    def p0(api):
        yield from api.compute(10.0)
        yield from api.put("b", "m1")          # m1

    def p1(api):
        value = yield from api.get("a")        # get1
        api.private.write("a", value)
        yield from api.compute(30.0)
        observed = yield from api.get("b")     # read m1's payload
        yield from api.put("c", ("m2", observed))   # m2

    def p2(api):
        yield from api.compute(60.0)
        observed = yield from api.get("c")     # read m2's payload
        yield from api.put("a", ("m3", observed))   # m3

    runtime.set_program(0, p0)
    runtime.set_program(1, p1)
    runtime.set_program(2, p2)
    return runtime


# ---------------------------------------------------------------------------
# Figure 5c — four processes, race between m1 and m3
# ---------------------------------------------------------------------------

def figure5c_four_process_chain(
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    clock_transport: str = "roundtrip",
) -> DSMRuntime:
    """Figure 5c: the arrivals of ``m1`` and ``m3`` at the same datum race.

    * ``m1`` — P0 puts into ``a`` (owned by P1);
    * ``m2`` — P0 then puts into ``t`` (owned by P2);
    * ``m3`` — P2, after seeing ``m2`` in its own public memory, puts into the
      *same* datum ``a``;
    * ``m4`` — P2 notifies P3 (completing the figure's fourth process).

    Although ``m1`` happens-before ``m3`` at the issuing processes (P0's
    program order plus the data flow of ``m2``), nothing orders their
    *arrivals* at P1's memory: on a fabric with independent channels ``m3``
    can land before ``m1``, so the final value of ``a`` depends on timing.
    The detector signals the race because the datum clock carries P1's
    owner tick from ``m1``, which P2 cannot know without communicating with
    P1 (paper: "race condition detected between m1 (put) and m3 (put)").
    """
    runtime = DSMRuntime(_base_config(4, seed, detector, clock_transport))
    runtime.declare_scalar("a", owner=1, initial=0)
    runtime.declare_scalar("t", owner=2, initial=None)
    runtime.declare_scalar("done", owner=3, initial=None)

    def p0(api):
        yield from api.put("a", "m1")       # m1
        yield from api.put("t", "m2")       # m2

    def p2(api):
        # Wait past m2's deterministic arrival, then read it from local public
        # memory and issue m3 (see figure5b_causal_chain for why a polling
        # loop is avoided).
        yield from api.compute(30.0)
        observed = yield from api.get("t")
        api.private.write("t", observed)
        yield from api.put("a", "m3")       # m3
        yield from api.put("done", "m4")    # m4

    def p3(api):
        yield from api.compute(60.0)
        observed = yield from api.get("done")   # m4's payload
        api.private.write("done", observed)

    runtime.set_program(0, p0)
    runtime.set_program(1, _idle)
    runtime.set_program(2, p2)
    runtime.set_program(3, p3)
    return runtime
