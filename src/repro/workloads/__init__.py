"""Workload generators and the paper's figure scenarios.

Every benchmark and most integration tests drive the runtime through one of
these generators rather than hand-rolling programs:

* :mod:`repro.workloads.figures` — executable versions of Figures 2, 3, 4 and
  5a/5b/5c, with the expected detection outcome attached;
* :mod:`repro.workloads.random_access` — synthetic random put/get traffic with
  tunable conflict probability (scalability and accuracy experiments);
* :mod:`repro.workloads.master_worker` — the master/worker pattern the paper
  uses as its example of an *intentional* race (Section IV-D);
* :mod:`repro.workloads.stencil` — 1-D halo exchange, with and without the
  barriers that make it race-free;
* :mod:`repro.workloads.verbs_stencil` — the same stencil with *overlapped*
  halo exchange through the asynchronous verbs layer (posted puts, interior
  compute hiding the communication);
* :mod:`repro.workloads.send_recv_stencil` — a multi-plane stencil moving
  whole boundary planes as single gathered SENDs into posted receive
  buffers, with a per-cell-puts transport mode for the message-count
  comparison (benchmark ``bench_send_gather``);
* :mod:`repro.workloads.rpc_echo` — a completion-driven RPC echo server
  over SEND/RECV, a shared receive queue and an event channel, with an
  injectable receive-buffer reuse race;
* :mod:`repro.workloads.atomic_counter` — a lock-free shared counter over
  one-sided ``fetch_add``, with a lossy get-then-put mode for contrast;
* :mod:`repro.workloads.work_stealing` — decentralized task shards popped
  with ``fetch_add`` and stolen with ``compare_and_swap``;
* :mod:`repro.workloads.reduction` — the one-sided, non-collective reduction
  of the paper's future work (Section V-B);
* :mod:`repro.workloads.producer_consumer` — an unsynchronized flag/buffer
  hand-off, the textbook true race;
* :mod:`repro.workloads.racy_patterns` — a labelled corpus of small racy and
  race-free kernels used to score detector accuracy (benchmark E13).
"""

from repro.workloads.base import WorkloadResult, WorkloadScenario
from repro.workloads.figures import (
    figure2_put_get,
    figure3_lock_serialization,
    figure4_concurrent_reads,
    figure5a_concurrent_puts,
    figure5b_causal_chain,
    figure5c_four_process_chain,
)
from repro.workloads.random_access import RandomAccessWorkload
from repro.workloads.master_worker import MasterWorkerWorkload
from repro.workloads.stencil import StencilWorkload
from repro.workloads.verbs_stencil import VerbsStencilWorkload
from repro.workloads.send_recv_stencil import SendRecvStencilWorkload
from repro.workloads.rpc_echo import RPCEchoWorkload
from repro.workloads.atomic_counter import LockFreeCounterWorkload
from repro.workloads.work_stealing import AtomicWorkStealingWorkload
from repro.workloads.reduction import OneSidedReductionWorkload
from repro.workloads.producer_consumer import ProducerConsumerWorkload
from repro.workloads.racy_patterns import LabelledPattern, pattern_corpus

__all__ = [
    "WorkloadResult",
    "WorkloadScenario",
    "figure2_put_get",
    "figure3_lock_serialization",
    "figure4_concurrent_reads",
    "figure5a_concurrent_puts",
    "figure5b_causal_chain",
    "figure5c_four_process_chain",
    "RandomAccessWorkload",
    "MasterWorkerWorkload",
    "StencilWorkload",
    "VerbsStencilWorkload",
    "SendRecvStencilWorkload",
    "RPCEchoWorkload",
    "LockFreeCounterWorkload",
    "AtomicWorkStealingWorkload",
    "OneSidedReductionWorkload",
    "ProducerConsumerWorkload",
    "LabelledPattern",
    "pattern_corpus",
]
