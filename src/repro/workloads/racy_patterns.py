"""A labelled corpus of small racy and race-free kernels.

The detector-accuracy experiment (E13) needs programs whose ground truth is
known *by construction*, independently of the seed-varying oracle.  Each
:class:`LabelledPattern` bundles a scenario builder with the author's label
(racy or not) and the shared symbols expected to be involved.  The corpus
mixes:

* the paper's own figure scenarios (Figures 4, 5a, 5b, 5c);
* the parameterized workloads in both their synchronized (race-free) and
  unsynchronized (racy) configurations;
* a handful of additional hand-written kernels covering access shapes the
  above do not: write-after-read without sync, read-modify-write through a
  barrier, and disjoint-cell "false sharing" that must never be flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.atomic_counter import LockFreeCounterWorkload
from repro.workloads.figures import (
    figure4_concurrent_reads,
    figure5a_concurrent_puts,
    figure5b_causal_chain,
    figure5c_four_process_chain,
)
from repro.workloads.master_worker import MasterWorkerWorkload
from repro.workloads.producer_consumer import ProducerConsumerWorkload
from repro.workloads.reduction import OneSidedReductionWorkload
from repro.workloads.stencil import StencilWorkload
from repro.workloads.work_stealing import AtomicWorkStealingWorkload


@dataclass(frozen=True)
class LabelledPattern:
    """One corpus entry: a builder plus its ground-truth label."""

    name: str
    build: Callable[[int], DSMRuntime]
    racy: bool
    racy_symbols: frozenset
    description: str

    def run(self, seed: int = 0):
        """Build and run the pattern once; returns the :class:`RunResult`."""
        return self.build(seed).run()


# ---------------------------------------------------------------------------
# Hand-written kernels
# ---------------------------------------------------------------------------

def _disjoint_cells(seed: int = 0) -> DSMRuntime:
    """Every rank writes its own element of a shared array: never a race."""
    runtime = DSMRuntime(RuntimeConfig(world_size=4, seed=seed, latency="uniform"))
    runtime.declare_array("slots", 4, policy=PlacementPolicy.OWNER, owner=0, initial=0)

    def program(api):
        yield from api.put("slots", api.rank * 100, index=api.rank)
        value = yield from api.get("slots", index=api.rank)
        api.private.write("mine", value)

    runtime.set_spmd_program(program)
    return runtime


def _write_after_read_unsynchronized(seed: int = 0) -> DSMRuntime:
    """Rank 1 reads a datum while rank 2 overwrites it, with no ordering."""
    runtime = DSMRuntime(RuntimeConfig(world_size=3, seed=seed, latency="uniform"))
    runtime.declare_scalar("shared", owner=0, initial="original")

    def reader(api):
        value = yield from api.get("shared")
        api.private.write("observed", value)

    def writer(api):
        yield from api.compute(0.5)
        yield from api.put("shared", "overwritten")

    def idle(api):
        yield from api.compute(0.0)

    runtime.set_program(0, idle)
    runtime.set_program(1, reader)
    runtime.set_program(2, writer)
    return runtime


def _read_modify_write_with_barrier(seed: int = 0) -> DSMRuntime:
    """Each rank increments a shared counter in its own barrier-delimited phase.

    Rank ``k`` performs its read-modify-write between barriers ``k`` and
    ``k+1``, so every access is ordered: no race, and the final value is
    exactly ``world_size``.
    """
    world_size = 4
    runtime = DSMRuntime(RuntimeConfig(world_size=world_size, seed=seed, latency="uniform"))
    runtime.declare_scalar("counter", owner=0, initial=0)

    def program(api):
        for phase in range(api.world_size):
            if phase == api.rank:
                value = yield from api.get("counter")
                yield from api.put("counter", (value or 0) + 1)
            yield from api.barrier()
        final = yield from api.get("counter")
        api.private.write("final", final)
        yield from api.barrier()

    runtime.set_spmd_program(program)
    return runtime


def _unsynchronized_counter(seed: int = 0) -> DSMRuntime:
    """All ranks increment a shared counter concurrently: the classic lost update."""
    world_size = 4
    runtime = DSMRuntime(RuntimeConfig(world_size=world_size, seed=seed, latency="uniform"))
    runtime.declare_scalar("counter", owner=0, initial=0)

    def program(api):
        rng = runtime.sim.rng.stream(f"pattern.counter.P{api.rank}")
        yield from api.compute(float(rng.uniform()))
        value = yield from api.get("counter")
        yield from api.put("counter", (value or 0) + 1)

    runtime.set_spmd_program(program)
    return runtime


def _cas_flag_claim(seed: int = 0) -> DSMRuntime:
    """Ranks race to claim a flag with CAS; exactly one wins, observably.

    Every rank attempts ``CAS(flag, 0, 1)``; the single winner deposits a
    constant into ``prize``.  The outcome is deterministic on every schedule
    (flag ends 1, prize ends 42, the CAS observations form the same multiset
    — one 0, the rest 1) even though *which* rank wins varies freely: the
    canonical benign pure-RMW contention the
    ``treat_rmw_pairs_as_ordered`` knob exists to silence.
    """
    runtime = DSMRuntime(RuntimeConfig(world_size=3, seed=seed, latency="uniform"))
    runtime.declare_scalar("flag", owner=0, initial=0)
    runtime.declare_scalar("prize", owner=0, initial=0)

    def program(api):
        rng = runtime.sim.rng.stream(f"pattern.casflag.P{api.rank}")
        yield from api.compute(float(rng.uniform()))
        prior = yield from api.compare_and_swap("flag", 0, 1)
        if prior == 0:
            yield from api.put("prize", 42)

    runtime.set_spmd_program(program)
    return runtime


# ---------------------------------------------------------------------------
# The corpus
# ---------------------------------------------------------------------------

def pattern_corpus() -> List[LabelledPattern]:
    """Return the full labelled corpus used by the accuracy experiments."""
    return [
        LabelledPattern(
            name="fig4-concurrent-reads",
            build=lambda seed=0: figure4_concurrent_reads(seed=seed),
            racy=False,
            racy_symbols=frozenset(),
            description="two concurrent reads of an initialized variable (paper Fig. 4)",
        ),
        LabelledPattern(
            name="fig5a-concurrent-puts",
            build=lambda seed=0: figure5a_concurrent_puts(seed=seed),
            racy=True,
            racy_symbols=frozenset({"a"}),
            description="two unsynchronized writes to the same datum (paper Fig. 5a)",
        ),
        LabelledPattern(
            name="fig5b-causal-chain",
            build=lambda seed=0: figure5b_causal_chain(seed=seed),
            racy=False,
            racy_symbols=frozenset(),
            description="causally chained get/put sequence (paper Fig. 5b)",
        ),
        LabelledPattern(
            name="fig5c-arrival-race",
            build=lambda seed=0: figure5c_four_process_chain(seed=seed),
            racy=True,
            racy_symbols=frozenset({"a"}),
            description="writes ordered at the issuers but not at the target memory (paper Fig. 5c)",
        ),
        LabelledPattern(
            name="disjoint-cells",
            build=_disjoint_cells,
            racy=False,
            racy_symbols=frozenset(),
            description="each rank touches only its own array element",
        ),
        LabelledPattern(
            name="write-after-read-unsync",
            build=_write_after_read_unsynchronized,
            racy=True,
            racy_symbols=frozenset({"shared"}),
            description="a read and an overwrite of the same datum with no ordering",
        ),
        LabelledPattern(
            name="rmw-with-barriers",
            build=_read_modify_write_with_barrier,
            racy=False,
            racy_symbols=frozenset(),
            description="read-modify-write phases separated by barriers",
        ),
        LabelledPattern(
            name="unsynchronized-counter",
            build=_unsynchronized_counter,
            racy=True,
            racy_symbols=frozenset({"counter"}),
            description="concurrent increments of a shared counter (lost updates)",
        ),
        LabelledPattern(
            name="producer-consumer-unsync",
            build=ProducerConsumerWorkload(synchronized=False).build,
            racy=True,
            racy_symbols=frozenset({"flag", "buffer"}),
            description="flag/buffer hand-off without synchronization",
        ),
        LabelledPattern(
            name="producer-consumer-barrier",
            build=ProducerConsumerWorkload(synchronized=True).build,
            racy=False,
            racy_symbols=frozenset(),
            description="flag/buffer hand-off ordered by a barrier",
        ),
        LabelledPattern(
            name="stencil-with-barriers",
            build=StencilWorkload(world_size=4, iterations=2, use_barriers=True).build,
            racy=False,
            racy_symbols=frozenset(),
            description="halo exchange correctly separated by barriers",
        ),
        LabelledPattern(
            name="stencil-no-barriers",
            build=StencilWorkload(world_size=4, iterations=2, use_barriers=False).build,
            racy=True,
            racy_symbols=frozenset({f"halo{r}" for r in range(4)}),
            description="halo exchange with the barriers removed",
        ),
        LabelledPattern(
            name="reduction-synchronized",
            build=OneSidedReductionWorkload(world_size=5, synchronize=True).build,
            racy=False,
            racy_symbols=frozenset(),
            description="one-sided reduction after a barrier",
        ),
        LabelledPattern(
            name="reduction-unsynchronized",
            build=OneSidedReductionWorkload(world_size=5, synchronize=False).build,
            racy=True,
            racy_symbols=frozenset({"contrib"}),
            description="one-sided reduction racing with the contributions",
        ),
        LabelledPattern(
            name="master-worker",
            build=MasterWorkerWorkload(world_size=4, tasks=6).build,
            racy=True,
            racy_symbols=frozenset({"ticket", "completed", "results"}),
            description="self-scheduling master/worker with intentionally racy coordination",
        ),
    ]


def rmw_pattern_corpus() -> List[LabelledPattern]:
    """The atomic-aware (RMW) corpus for the ``treat_rmw_pairs_as_ordered`` sweep.

    Labels follow the paper's *operational* race definition — observable
    behaviour diverging between executions — which is exactly where atomics
    differ from plain accesses: a lock-free algorithm's RMW traffic is
    causally unordered yet its outcome never diverges.  The patterns span
    the three regimes the sweep needs:

    * pure-RMW contention with a deterministic outcome (atomic counter, CAS
      flag claim): flagged only while the knob is off — the knob's
      precision win;
    * the same counter with the get-then-put idiom: a true race under both
      knob settings — the knob must not cost recall;
    * mixed RMW-and-plain-read contention (work stealing: thieves *scan*
      victims' heads with plain gets before the CAS): the head cells'
      observable read streams genuinely diverge across schedules, and an
      RMW unordered with a plain read stays a race under either setting.
    """
    return [
        LabelledPattern(
            name="rmw-counter-atomic",
            build=LockFreeCounterWorkload(
                world_size=3, increments=3, use_atomics=True
            ).build,
            racy=False,
            racy_symbols=frozenset(),
            description="fetch_add counter: unordered RMW pairs, outcome never diverges",
        ),
        LabelledPattern(
            name="rmw-counter-getput",
            build=LockFreeCounterWorkload(
                world_size=3, increments=3, use_atomics=False
            ).build,
            racy=True,
            racy_symbols=frozenset({"counter"}),
            description="get-then-put counter: the same traffic as plain accesses, lost updates",
        ),
        LabelledPattern(
            name="rmw-cas-flag",
            build=_cas_flag_claim,
            racy=False,
            racy_symbols=frozenset(),
            description="CAS flag claim: contended RMWs, deterministic winner effect",
        ),
        LabelledPattern(
            name="rmw-work-stealing",
            build=AtomicWorkStealingWorkload(world_size=3, tasks_per_rank=2).build,
            racy=True,
            # Only the heads that stay *contended* race: rank 0 is the
            # fastest (cost scales with rank), so it drains head0 before any
            # thief scans it, and the shared done counter's clock gossip
            # orders every later read — verified against the schedule-space
            # ground truth.  head1/head2 see plain thief scans racing with
            # owner RMWs under either knob setting.
            racy_symbols=frozenset({"head1", "head2"}),
            description="work stealing: plain head scans race with CAS claims on every knob setting",
        ),
    ]
