"""RPC echo server over SEND/RECV, a shared receive queue and an event channel.

The reactive-server workload the one-sided model cannot express: rank 0 never
polls specific peers and never names their memory.  It posts a pool of
receive slots to an SRQ, attaches its receive *and* send completion queues to
one event channel, and sits in a completion-driven loop — every handled
receive reposts the consumed slot (the canonical SRQ replenish pattern) and
answers with a SEND into whatever reply buffer the client posted.  Clients
issue ``requests_per_client`` RPCs each: post the reply buffer, SEND the
request, wait for both completions, check the echo.

This is the programming model of the hybrid runtimes (MPI-over-verbs style)
the ROADMAP names: two-sided matching for control flow, with the detector
observing every landed payload cell as an ordinary write plus the matching
happens-before edge.

``srq_replenish="bulk"`` switches the server from per-completion reposting
to the low-watermark pattern of real SRQ deployments: consumed slots are
parked until the armed ``IBV_EVENT_SRQ_LIMIT_REACHED`` analogue fires, then
reposted in one burst and the limit re-armed.

``racy_buffer_reuse`` injects the classic two-sided bug: after posting its
reply buffer and firing the request, the client computes for ``reuse_delay``
— roughly a round trip, so the timing straddles the reply's arrival — and
then scribbles a sentinel into the buffer's first cell instead of waiting
for the reply completion.  The server's reply scatter and the client's local
write are causally unordered in *every* schedule (two-sided delivery only
synchronizes the receiver when it retires the completion, which the buggy
client has not done yet), the final cell value genuinely depends on which
write lands last, and the dual-clock detector must flag it with no false
negatives.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.util.validation import require_positive
from repro.verbs.work import Opcode
from repro.workloads.base import WorkloadScenario


class RPCEchoWorkload(WorkloadScenario):
    """Completion-driven RPC echo: SRQ server, SEND/RECV clients."""

    name = "rpc-echo-srq"

    def __init__(
        self,
        num_clients: int = 3,
        requests_per_client: int = 2,
        payload_cells: int = 2,
        compute_between: float = 1.0,
        racy_buffer_reuse: bool = False,
        reuse_delay: float = 12.0,
        srq_replenish: str = "per-completion",
        srq_limit: Optional[int] = None,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(num_clients, "num_clients")
        require_positive(requests_per_client, "requests_per_client")
        require_positive(payload_cells, "payload_cells")
        if srq_replenish not in ("per-completion", "bulk"):
            raise ValueError(
                f"srq_replenish must be 'per-completion' or 'bulk', "
                f"got {srq_replenish!r}"
            )
        self.num_clients = num_clients
        self.requests_per_client = requests_per_client
        self.payload_cells = payload_cells
        self.compute_between = compute_between
        self.racy_buffer_reuse = racy_buffer_reuse
        self.reuse_delay = reuse_delay
        #: How the server refills its SRQ: ``"per-completion"`` reposts each
        #: consumed slot from the handler (the PR-2 behaviour); ``"bulk"``
        #: parks consumed slots and reposts them all when the SRQ's
        #: low-watermark limit event fires (the
        #: ``IBV_EVENT_SRQ_LIMIT_REACHED`` replenish pattern).
        self.srq_replenish = srq_replenish
        #: The armed low watermark in bulk mode (default: half the pool,
        #: at least one).
        self.srq_limit = srq_limit if srq_limit is not None else max(1, num_clients // 2)
        self.world_size = num_clients + 1
        self.total_requests = num_clients * requests_per_client
        self.expected_racy = racy_buffer_reuse
        self.expected_racy_symbols: Set[str] = (
            {f"reply{rank}" for rank in range(1, self.world_size)}
            if racy_buffer_reuse
            else set()
        )

    def build(self, seed: int = 0) -> DSMRuntime:
        """Server = rank 0; every other rank is a client with its own reply buffer."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
                # A small RNR backoff keeps a late-posted reply buffer cheap.
                verbs_rnr_backoff=0.25,
            )
        )
        # One request slot per client is enough: each consumed slot is
        # reposted from inside the completion handler before the reply goes
        # out, so the pool never drains below num_clients - in_flight.
        slots = self.num_clients
        runtime.declare_array(
            "rpc_slots", slots * self.payload_cells, owner=0, initial=0
        )
        for rank in range(1, self.world_size):
            runtime.declare_array(
                f"reply{rank}", self.payload_cells, owner=rank, initial=0
            )
        workload = self

        def server(api):
            api.create_srq()
            for slot in range(slots):
                api.post_srq_recv(
                    "rpc_slots",
                    indices=range(
                        slot * workload.payload_cells,
                        (slot + 1) * workload.payload_cells,
                    ),
                )
            bulk = workload.srq_replenish == "bulk"
            if bulk:
                api.arm_srq_limit(workload.srq_limit)
            channel = api.verbs.create_event_channel()
            channel.attach(api.verbs.recv_cq)
            channel.attach(api.verbs.cq)
            progress = {"served": 0, "echoed": 0, "bulk_replenishes": 0}
            free_slots = []

            def handle(completion):
                if completion.opcode is Opcode.RECV:
                    if bulk:
                        # Park the consumed slot; the SRQ limit event is the
                        # replenish trigger.  A drained pool in the meantime
                        # is absorbed by the senders' RNR retry protocol.
                        free_slots.append(completion.addresses)
                        if api.take_srq_limit_event():
                            for addresses in free_slots:
                                api.verbs.post_srq_recv(
                                    addresses, symbol="rpc_slots"
                                )
                            free_slots.clear()
                            progress["bulk_replenishes"] += 1
                            api.arm_srq_limit(workload.srq_limit)
                    else:
                        # Replenish the consumed slot first: the next request
                        # may already be in flight (RNR otherwise).
                        api.verbs.post_srq_recv(
                            completion.addresses, symbol="rpc_slots"
                        )
                    api.isend(
                        completion.peer,
                        [value * 2 for value in completion.value],
                        symbol=f"reply{completion.peer}",
                    )
                    progress["served"] += 1
                else:  # the echo SEND retired on the send CQ
                    progress["echoed"] += 1

            handled = yield from channel.serve(
                handle,
                stop=lambda: progress["echoed"] >= workload.total_requests,
            )
            api.private.write("served", progress["served"])
            api.private.write("echoed", progress["echoed"])
            api.private.write("events_handled", handled)
            api.private.write("bulk_replenishes", progress["bulk_replenishes"])

        def client(api):
            replies = []
            for i in range(workload.requests_per_client):
                api.irecv(
                    0, f"reply{api.rank}", indices=range(workload.payload_cells)
                )
                request_payload = [
                    api.rank * 100 + i * 10 + cell
                    for cell in range(workload.payload_cells)
                ]
                send_request = api.isend(0, request_payload, symbol="rpc_slots")
                if workload.racy_buffer_reuse:
                    # The bug: reuse the posted reply buffer before the reply
                    # completion retires.  The delay makes the scribble land
                    # before the reply in some schedules and after it in
                    # others — the outcome genuinely diverges, and the
                    # detector must flag the pair either way.
                    yield from api.compute(workload.reuse_delay)
                    yield from api.put(f"reply{api.rank}", -1, index=0)
                yield from api.wait(send_request)
                (reply,) = yield from api.wait_recv(1)
                replies.append(list(reply.value))
                yield from api.compute(workload.compute_between)
            api.private.write("replies", replies)
            api.private.write(
                "all_echoed",
                all(
                    reply == [(api.rank * 100 + i * 10 + cell) * 2
                              for cell in range(workload.payload_cells)]
                    for i, reply in enumerate(replies)
                ),
            )

        runtime.set_program(0, server)
        for rank in range(1, self.world_size):
            runtime.set_program(rank, client)
        return runtime
