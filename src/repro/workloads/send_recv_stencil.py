"""Multi-plane stencil: whole boundary planes moved as one gathered SEND.

The scatter/gather payoff the ROADMAP asked for.  Each rank owns a tile of
``plane_width`` independent rows, ``cells_per_rank`` columns each; every
iteration it exchanges its boundary *plane* (one cell per row —
``plane_width`` cells) with each neighbour, relaxes the interior while the
exchange is in flight, then folds the ghost planes in.  The same numerics run
under two transports:

* ``transport="puts"`` — one posted put per plane cell, the only option the
  one-sided layer offers: ``plane_width`` messages (and, when detection
  traffic is charged, ``plane_width`` clock round trips) per neighbour per
  iteration;
* ``transport="send"`` — the receiver posts its ghost plane as one receive
  buffer (scatter list), the sender moves the whole plane as one gathered
  SEND: one message carrying ``plane_width * cell_bytes`` payload bytes, and
  one batched clock round trip.

Same bytes moved, fewer messages — ``benchmarks/bench_send_gather.py`` holds
the two transports side by side and asserts exactly that, plus identical
final tiles.  Barriers close each iteration in both modes, so neither is
expected to race (the send mode's matching alone orders receiver reads after
the landing scatter, but not the *next* iteration's scatter after this
iteration's ghost reads).
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.util.validation import require_positive
from repro.workloads.base import WorkloadScenario


class SendRecvStencilWorkload(WorkloadScenario):
    """Jacobi plane stencil with gathered-SEND (or per-cell put) halo exchange."""

    name = "stencil-planes"

    def __init__(
        self,
        world_size: int = 4,
        cells_per_rank: int = 6,
        plane_width: int = 4,
        iterations: int = 3,
        compute_cost: float = 1.0,
        interior_fraction: float = 0.8,
        transport: str = "send",
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_positive(cells_per_rank, "cells_per_rank")
        require_positive(plane_width, "plane_width")
        require_positive(iterations, "iterations")
        if transport not in ("send", "puts"):
            raise ValueError(f"transport must be 'send' or 'puts', got {transport!r}")
        if not (0.0 <= interior_fraction <= 1.0):
            raise ValueError(
                f"interior_fraction must be in [0, 1], got {interior_fraction}"
            )
        self.world_size = world_size
        self.cells_per_rank = cells_per_rank
        self.plane_width = plane_width
        self.iterations = iterations
        self.compute_cost = compute_cost
        self.interior_fraction = interior_fraction
        self.transport = transport
        self.name = f"stencil-planes-{transport}"
        self.expected_racy = False

    def build(self, seed: int = 0) -> DSMRuntime:
        """Each rank's halo: ``2 * plane_width`` cells — left then right ghost plane."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                # Constant latency keeps the two transports byte-comparable:
                # every receive is posted at the barrier instant, strictly
                # before any same-iteration send can arrive, so no RNR
                # retransmissions inflate the send mode's message count.
                latency="constant",
                public_memory_cells=max(64, 4 * self.plane_width + 8),
            )
        )
        k = self.plane_width
        for rank in range(self.world_size):
            runtime.declare_array(
                f"halo{rank}", 2 * k, policy=PlacementPolicy.OWNER,
                owner=rank, initial=0.0,
            )
        workload = self

        def program(api):
            rank = api.rank
            n = workload.cells_per_rank
            left = rank - 1 if rank > 0 else None
            right = rank + 1 if rank + 1 < workload.world_size else None
            # plane_width independent rows of cells_per_rank columns.
            tile: List[List[float]] = [
                [float(rank * n + column + row * 0.5) for column in range(n)]
                for row in range(k)
            ]
            interior_cost = workload.compute_cost * workload.interior_fraction
            boundary_cost = workload.compute_cost - interior_cost

            def post_ghost_recvs():
                # The ghost planes are the scatter lists the neighbours'
                # gathered sends land in.
                if left is not None:
                    api.irecv(left, f"halo{rank}", indices=range(k))
                if right is not None:
                    api.irecv(right, f"halo{rank}", indices=range(k, 2 * k))

            if workload.transport == "send":
                # Pre-post the first iteration's receives: a buffer is always
                # in place before the matching send can arrive, so the
                # exchange never pays an RNR retransmission.
                post_ghost_recvs()
            for iteration in range(workload.iterations):
                posted = []
                if workload.transport == "send":
                    # One gathered SEND per neighbour: the whole boundary
                    # plane in one message.
                    if left is not None:
                        posted.append(
                            api.isend(
                                left, [tile[row][0] for row in range(k)],
                                symbol=f"halo{left}",
                            )
                        )
                    if right is not None:
                        posted.append(
                            api.isend(
                                right, [tile[row][-1] for row in range(k)],
                                symbol=f"halo{right}",
                            )
                        )
                else:
                    # One posted put per plane cell: k messages per neighbour.
                    for row in range(k):
                        if left is not None:
                            posted.append(
                                api.iput(f"halo{left}", tile[row][0], index=k + row)
                            )
                        if right is not None:
                            posted.append(
                                api.iput(f"halo{right}", tile[row][-1], index=row)
                            )
                yield from api.compute(interior_cost)
                if posted:
                    yield from api.wait(*posted)
                if workload.transport == "send":
                    expected = (left is not None) + (right is not None)
                    if expected:
                        yield from api.wait_recv(expected)
                yield from api.barrier()
                ghosts_left = []
                ghosts_right = []
                for row in range(k):
                    ghost = yield from api.get(f"halo{rank}", index=row)
                    ghosts_left.append(float(ghost or 0.0))
                    ghost = yield from api.get(f"halo{rank}", index=k + row)
                    ghosts_right.append(float(ghost or 0.0))
                yield from api.compute(boundary_cost)
                for row in range(k):
                    padded = [ghosts_left[row]] + tile[row] + [ghosts_right[row]]
                    tile[row] = [
                        (padded[i - 1] + padded[i] + padded[i + 1]) / 3.0
                        for i in range(1, n + 1)
                    ]
                if workload.transport == "send" and iteration + 1 < workload.iterations:
                    # Pre-post the next iteration's receives before the
                    # closing barrier: the post-time snapshot also orders the
                    # next scatter after this iteration's ghost reads.
                    post_ghost_recvs()
                yield from api.barrier()
            api.private.write("tile", tile)

        runtime.set_spmd_program(program)
        return runtime
