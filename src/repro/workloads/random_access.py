"""Synthetic random put/get traffic.

The scalability and accuracy experiments need workloads whose size (number of
processes, number of accesses) and conflict level can be dialled freely.  Each
rank performs ``operations_per_rank`` accesses; each access picks a cell of a
shared array and is a write with probability ``write_fraction``.  Conflict
pressure is controlled by ``hotspot_fraction``: that fraction of the accesses
goes to a small "hot" prefix of the array, the rest spreads over a per-rank
private slice (which never conflicts).

With ``synchronize=True`` a barrier separates every round of accesses, turning
most conflicts into ordered accesses; with ``synchronize=False`` (the default)
conflicting accesses are unordered and the workload is genuinely racy.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.memory.directory import PlacementPolicy
from repro.runtime.runtime import DSMRuntime, RuntimeConfig
from repro.workloads.base import WorkloadScenario
from repro.util.validation import require_in_range, require_positive


class RandomAccessWorkload(WorkloadScenario):
    """Randomized shared-array traffic with tunable conflict probability."""

    name = "random-access"

    def __init__(
        self,
        world_size: int = 8,
        operations_per_rank: int = 20,
        array_length: Optional[int] = None,
        hot_cells: int = 4,
        hotspot_fraction: float = 0.3,
        write_fraction: float = 0.5,
        synchronize: bool = False,
        rounds: int = 1,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        super().__init__(config)
        require_positive(world_size, "world_size")
        require_positive(operations_per_rank, "operations_per_rank")
        require_positive(hot_cells, "hot_cells")
        require_in_range(hotspot_fraction, 0.0, 1.0, "hotspot_fraction")
        require_in_range(write_fraction, 0.0, 1.0, "write_fraction")
        require_positive(rounds, "rounds")
        self.world_size = world_size
        self.operations_per_rank = operations_per_rank
        self.array_length = array_length or max(world_size * 8, hot_cells + world_size)
        self.hot_cells = min(hot_cells, self.array_length)
        self.hotspot_fraction = hotspot_fraction
        self.write_fraction = write_fraction
        self.synchronize = synchronize
        self.rounds = rounds
        # Whether the workload is expected to race depends on its parameters.
        self.expected_racy = (not synchronize) and hotspot_fraction > 0 and write_fraction > 0
        self.expected_racy_symbols = {"data"} if self.expected_racy else set()

    def build(self, seed: int = 0) -> DSMRuntime:
        """Declare the shared array and register one program per rank."""
        runtime = DSMRuntime(
            self._config_for_seed(
                seed,
                world_size=self.world_size,
                latency="uniform",
                public_memory_cells=max(256, self.array_length + 8),
            )
        )
        runtime.declare_array(
            "data", self.array_length, policy=PlacementPolicy.BLOCK, initial=0
        )
        ops_per_round = max(1, self.operations_per_rank // self.rounds)
        workload = self

        def program(api, rank_seed: int = 0):
            rng = runtime.sim.rng.stream(f"workload.random_access.P{api.rank}")
            counter = 0
            for _round in range(workload.rounds):
                for _op in range(ops_per_round):
                    if float(rng.uniform()) < workload.hotspot_fraction:
                        index = int(rng.integers(0, workload.hot_cells))
                    else:
                        # A per-rank slice of the cold region: never conflicts.
                        cold = workload.array_length - workload.hot_cells
                        per_rank = max(1, cold // workload.world_size)
                        base = workload.hot_cells + (api.rank * per_rank) % max(cold, 1)
                        index = min(
                            workload.array_length - 1,
                            base + int(rng.integers(0, per_rank)),
                        )
                    if float(rng.uniform()) < workload.write_fraction:
                        counter += 1
                        yield from api.put("data", (api.rank, counter), index=index)
                    else:
                        value = yield from api.get("data", index=index)
                        api.private.write(f"last-read-{index}", value)
                    yield from api.compute(float(rng.uniform()) * 0.5)
                if workload.synchronize:
                    yield from api.barrier()

        runtime.set_spmd_program(program)
        return runtime
