"""Detector hot-path profiler: per-check-type attribution.

The detection hot path is dominated by O(n) vector-clock operations: the
directional compares inside ``clocks_unordered`` / ``reference_unknown`` and
the merges/observes that fold clock knowledge into process and datum clocks.
This profiler attributes those costs per check type — the cross product of
access kind (``read`` / ``write`` / ``rmw``) and clock provenance (``live``
post-check vs ``carried`` post-time snapshot) — which is exactly the
breakdown an epoch-optimised hot path (ROADMAP item 2) must improve without
changing verdicts.

Counts (checks, compares, joins) are deterministic and feed benchmark
artifacts gated by ``tools/perf_gate.py``.  Wall time is optional and
excluded from snapshots unless explicitly enabled, because it is
nondeterministic and would break byte-identical artifacts.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Optional, Tuple

#: All check types, in canonical order: (kind, provenance).
CHECK_TYPES: Tuple[Tuple[str, str], ...] = tuple(
    (kind, provenance)
    for kind in ("read", "write", "rmw")
    for provenance in ("live", "carried")
)


class _Bucket:
    __slots__ = ("checks", "compares", "joins", "epoch_hits", "wall_ns")

    def __init__(self) -> None:
        self.checks = 0
        self.compares = 0
        self.joins = 0
        self.epoch_hits = 0
        self.wall_ns = 0


class DetectionProfiler:
    """Aggregates per-check-type costs for one detector."""

    def __init__(self, wall_clock: bool = False) -> None:
        self.wall_clock = wall_clock
        self._buckets: Dict[Tuple[str, str], _Bucket] = {
            check_type: _Bucket() for check_type in CHECK_TYPES
        }

    def start(self) -> Optional[int]:
        """Start-of-check marker; pass the return value to :meth:`record`."""
        return _time.perf_counter_ns() if self.wall_clock else None

    def record(
        self,
        kind: str,
        live: bool,
        started: Optional[int] = None,
        compares: int = 0,
        joins: int = 0,
        epoch_hits: int = 0,
    ) -> None:
        """Account one finished check of *kind* with *live*/carried provenance.

        ``epoch_hits`` counts full vector compares replaced by O(1) epoch
        probes; it is always reported (zero when the fast path is off) so
        snapshot shapes do not depend on configuration.
        """
        bucket = self._buckets[(kind, "live" if live else "carried")]
        bucket.checks += 1
        bucket.compares += compares
        bucket.joins += joins
        bucket.epoch_hits += epoch_hits
        if started is not None:
            bucket.wall_ns += _time.perf_counter_ns() - started

    # -- aggregation ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Deterministic per-check-type summary (sorted keys, counts only).

        ``wall_ns`` appears only when wall-clock profiling is enabled, so the
        default snapshot stays byte-identical across reruns.
        """
        out: Dict[str, Dict[str, int]] = {}
        for (kind, provenance), bucket in sorted(self._buckets.items()):
            entry: Dict[str, int] = {
                "checks": bucket.checks,
                "compares": bucket.compares,
                "joins": bucket.joins,
                "epoch_hits": bucket.epoch_hits,
            }
            if self.wall_clock:
                entry["wall_ns"] = bucket.wall_ns
            out[f"{kind}_{provenance}"] = entry
        return out

    def totals(self) -> Dict[str, int]:
        """Summed counts across every check type."""
        totals = {"checks": 0, "compares": 0, "joins": 0, "epoch_hits": 0}
        for bucket in self._buckets.values():
            totals["checks"] += bucket.checks
            totals["compares"] += bucket.compares
            totals["joins"] += bucket.joins
            totals["epoch_hits"] += bucket.epoch_hits
        return totals

    def merge(self, other: "DetectionProfiler") -> "DetectionProfiler":
        """Fold *other*'s buckets into this profiler (returns self)."""
        for check_type, bucket in other._buckets.items():
            mine = self._buckets[check_type]
            mine.checks += bucket.checks
            mine.compares += bucket.compares
            mine.joins += bucket.joins
            mine.epoch_hits += bucket.epoch_hits
            mine.wall_ns += bucket.wall_ns
        return self

    def reset(self) -> None:
        """Zero every bucket."""
        for bucket in self._buckets.values():
            bucket.checks = 0
            bucket.compares = 0
            bucket.joins = 0
            bucket.epoch_hits = 0
            bucket.wall_ns = 0
