"""A deterministic metrics registry: counters, gauges, histograms.

The registry is the single place run-time accounting lives.  Subsystems either
use it directly (``registry.counter("nic.rnr_retries", rank="0").inc()``) or
through thin legacy views (``FabricStats``, ``ClockTransportStats``) whose
fields are properties over registry instruments — one source of truth, two
spellings.

Design constraints, in priority order:

* **Determinism.**  :meth:`MetricsRegistry.snapshot` returns a plain dict with
  sorted keys and only int/float values; :meth:`MetricsRegistry.to_json` is
  ``json.dumps(..., sort_keys=True)``.  Two runs with equal seeds and knobs
  produce byte-identical snapshots.
* **Cheapness.**  Instruments are memoized by ``(name, labels)``; the hot path
  is one dict hit plus an integer add.  No wall-clock, no locks, no I/O.
* **Zero behavioural footprint.**  Nothing in here touches simulation clocks,
  scheduling order, or randomness — metrics on/off cannot change verdicts.

Instrument identity is ``name{label=value,...}`` with labels sorted by key,
the same spelling used as snapshot keys, e.g.
``fabric.messages{category=data}`` or ``nic.puts_issued{rank=2}``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Version of the exported metrics-file layout (the ``export()`` wrapper).
#: Bumped on incompatible changes so loaders fail loudly instead of
#: misreading a snapshot from a different era.
METRICS_SCHEMA_VERSION = 1

#: Named fixed bucket layouts for histograms.  Fixed layouts (rather than
#: data-driven ones) keep snapshots byte-identical across runs and make
#: baselines comparable across commits.
BUCKET_LAYOUTS: Dict[str, Tuple[float, ...]] = {
    # Simulated-time durations (latency-model units).
    "sim_time": (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0),
    # Queue depths / occupancies.
    "depth": (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
    # Message / payload sizes in bytes.
    "bytes": (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0),
}


def _label_suffix(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing integer.

    ``value`` is a plain public attribute on purpose: the legacy stats views
    implement ``stats.field += n`` through property setters that assign it
    directly, and ``merge`` needs read-modify-write.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Sequence[Tuple[str, str]] = ()) -> None:
        self.name = name
        self.labels = tuple(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1)."""
        self.value += amount

    @property
    def key(self) -> str:
        """Snapshot key: ``name{label=value,...}``."""
        return self.name + _label_suffix(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.key}={self.value}>"


class Gauge:
    """A value that can go up and down (queue depth, outstanding requests)."""

    __slots__ = ("name", "labels", "value", "high_watermark")

    def __init__(self, name: str, labels: Sequence[Tuple[str, str]] = ()) -> None:
        self.name = name
        self.labels = tuple(labels)
        self.value = 0
        self.high_watermark = 0

    def set(self, value: int) -> None:
        """Set the current value, tracking the high watermark."""
        self.value = value
        if value > self.high_watermark:
            self.high_watermark = value

    def inc(self, amount: int = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: int = 1) -> None:
        self.value -= amount

    @property
    def key(self) -> str:
        return self.name + _label_suffix(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.key}={self.value} high={self.high_watermark}>"


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets plus sum/count).

    Bucket upper bounds come from a named layout in :data:`BUCKET_LAYOUTS`;
    values above the last bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self,
        name: str,
        labels: Sequence[Tuple[str, str]] = (),
        layout: str = "sim_time",
    ) -> None:
        self.name = name
        self.labels = tuple(labels)
        self.bounds: Tuple[float, ...] = BUCKET_LAYOUTS[layout]
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 <= q <= 1) by bucket interpolation.

        Prometheus-style: find the bucket holding the target rank and
        interpolate linearly inside it (the overflow bucket clamps to its
        lower bound — there is no upper edge to interpolate towards).
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]

    @property
    def key(self) -> str:
        return self.name + _label_suffix(self.labels)

    def as_dict(self) -> Dict[str, object]:
        """Deterministic flat summary of this histogram."""
        buckets: Dict[str, int] = {}
        for bound, count in zip(self.bounds, self.bucket_counts):
            buckets[f"le_{bound:g}"] = count
        buckets["le_inf"] = self.bucket_counts[-1]
        return {"buckets": buckets, "count": self.count, "sum": self.total}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.key} count={self.count} sum={self.total:g}>"


class MetricsRegistry:
    """Memoizing factory and snapshot point for all instruments."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], Histogram
        ] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + *labels*, created on first use."""
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + *labels*, created on first use."""
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self, name: str, layout: str = "sim_time", **labels: object
    ) -> Histogram:
        """The histogram for ``name`` + *labels*, created on first use."""
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], layout)
        return instrument

    # -- snapshots -----------------------------------------------------------------

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """All instruments as one sorted flat dict.

        Counters map to their value; gauges to ``{"value", "high_watermark"}``;
        histograms to ``{"buckets", "count", "sum"}``.  Zero-valued counters
        that were merely *created* (e.g. by a stats view's property getters)
        are included — creation order does not matter because keys are sorted.
        With *prefix*, only instruments whose name starts with it are
        included (e.g. ``"nic."`` for one subsystem).
        """
        out: Dict[str, object] = {}
        for counter in self._counters.values():
            if prefix is not None and not counter.name.startswith(prefix):
                continue
            out[counter.key] = counter.value
        for gauge in self._gauges.values():
            if prefix is not None and not gauge.name.startswith(prefix):
                continue
            out[gauge.key] = {
                "high_watermark": gauge.high_watermark,
                "value": gauge.value,
            }
        for histogram in self._histograms.values():
            if prefix is not None and not histogram.name.startswith(prefix):
                continue
            out[histogram.key] = histogram.as_dict()
        return {key: out[key] for key in sorted(out)}

    def snapshot_for_rank(self, rank: int) -> Dict[str, object]:
        """The slice of the snapshot labelled with ``rank=<rank>``."""
        needle = f"rank={rank}"
        return {
            key: value
            for key, value in self.snapshot().items()
            if "{" in key
            and needle in key[key.index("{") :].strip("{}").split(",")
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of :meth:`snapshot` — byte-identical for equal runs."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def export(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """The snapshot wrapped in the versioned file envelope.

        This is what metrics *files* should contain; :func:`load_snapshot`
        is the matching reader.  :meth:`snapshot` itself stays bare for
        in-process use.
        """
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": self.snapshot(prefix),
        }

    @staticmethod
    def diff(
        before: Dict[str, object], after: Dict[str, object]
    ) -> Dict[str, Dict[str, object]]:
        """Structural diff of two snapshots.

        Returns ``{"added": {...}, "removed": {...}, "changed": {key:
        {"before": ..., "after": ...}}}`` with sorted keys throughout.
        """
        added = {k: after[k] for k in sorted(set(after) - set(before))}
        removed = {k: before[k] for k in sorted(set(before) - set(after))}
        changed = {
            k: {"after": after[k], "before": before[k]}
            for k in sorted(set(before) & set(after))
            if before[k] != after[k]
        }
        return {"added": added, "changed": changed, "removed": removed}

    def reset(self) -> None:
        """Zero every instrument in place (identities survive, so views keep
        working after e.g. ``Fabric.reset_stats``)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
            gauge.high_watermark = 0
        for histogram in self._histograms.values():
            histogram.bucket_counts = [0] * (len(histogram.bounds) + 1)
            histogram.count = 0
            histogram.total = 0.0

    def instruments(self) -> Iterable[object]:
        """All instruments (tests use this for well-formedness checks)."""
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()


def load_snapshot(payload: Dict[str, object]) -> Dict[str, object]:
    """Unwrap a metrics file payload into a bare snapshot dict.

    Accepts both the versioned envelope (``{"schema_version": 1, "metrics":
    {...}}``) and a bare pre-versioning snapshot.  Raises :class:`ValueError`
    on an envelope whose version this reader does not understand.
    """
    if isinstance(payload, dict) and "schema_version" in payload:
        version = payload["schema_version"]
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics schema_version {version!r} is not supported "
                f"(this reader understands version {METRICS_SCHEMA_VERSION})"
            )
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("versioned metrics file has no 'metrics' object")
        return metrics
    return payload
