"""Sim-time span tracing with Chrome trace-event (Perfetto) export.

Spans are recorded against *simulated* time: one trace "process" per rank plus
one per NIC engine, each a Perfetto track.  Sim time maps to trace
microseconds as ``sim_time * 1000.0`` — one simulated time unit renders as one
millisecond, which keeps sub-unit latencies visible.

Event kinds emitted (Chrome trace-event ``ph`` codes):

* ``X`` — complete spans with explicit duration (the common case: a WR's
  service interval, a lock wait, a barrier wait, a drain burst);
* ``B``/``E`` — open/close pairs for spans whose end is only known later;
* ``i`` — instants (RNR retry, SRQ limit event, detector race signal);
* ``s``/``f`` — flow events stitching a WR's post on the origin rank to its
  retirement, across tracks;
* ``M`` — metadata naming the tracks.

The tracer is disabled by default and every recording method is a cheap no-op
then; enabling it (``RuntimeConfig.trace_spans``) must not change simulation
behaviour, only record it.  Optional wall-clock profiling attaches
``wall_ns`` arguments to spans for hot-path attribution; it is off by default
because wall time is nondeterministic and would break byte-identical traces.
"""

from __future__ import annotations

import json
import time as _time
from typing import Dict, List, Optional, Tuple

#: One simulated time unit == this many trace microseconds.
SIM_TIME_TO_US = 1000.0

#: Version of the exported span-trace layout.  Bumped whenever the event
#: vocabulary or the ``otherData`` contract changes incompatibly, so loaders
#: (the schema validator, :class:`~repro.obs.critical_path.CriticalPathAnalyzer`)
#: fail loudly on a trace from a different era instead of misreading it.
TRACE_SCHEMA_VERSION = 1


class SpanHandle:
    """Returned by :meth:`SpanTracer.begin`; pass back to :meth:`SpanTracer.end`."""

    __slots__ = ("track", "name", "start", "args", "wall_start")

    def __init__(
        self,
        track: str,
        name: str,
        start: float,
        args: Optional[Dict[str, object]],
        wall_start: Optional[int],
    ) -> None:
        self.track = track
        self.name = name
        self.start = start
        self.args = args
        self.wall_start = wall_start


class SpanTracer:
    """Records spans/instants/flows and exports Chrome trace-event JSON."""

    def __init__(self, enabled: bool = False, wall_clock: bool = False) -> None:
        self.enabled = enabled
        self.wall_clock = wall_clock
        self._events: List[Dict[str, object]] = []
        #: First-seen track name -> deterministic (pid, tid).
        self._tracks: Dict[str, Tuple[int, int]] = {}
        self._flow_ids: Dict[object, int] = {}
        self._next_flow_id = 1
        self._open_spans: List[SpanHandle] = []

    # -- track bookkeeping -------------------------------------------------------

    def _track(self, track: str) -> Tuple[int, int]:
        ids = self._tracks.get(track)
        if ids is None:
            pid = len(self._tracks) + 1
            ids = self._tracks[track] = (pid, 1)
            self._events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": track},
                }
            )
        return ids

    def _wall(self) -> Optional[int]:
        return _time.perf_counter_ns() if self.wall_clock else None

    # -- recording ---------------------------------------------------------------

    def begin(
        self,
        track: str,
        name: str,
        sim_time: float,
        **args: object,
    ) -> Optional[SpanHandle]:
        """Open a span on *track*; close it with :meth:`end`.

        Returns ``None`` when tracing is disabled (and :meth:`end` accepts
        ``None`` as a no-op), so call sites need no enabled-guard.
        """
        if not self.enabled:
            return None
        handle = SpanHandle(track, name, sim_time, dict(args) or None, self._wall())
        self._open_spans.append(handle)
        return handle

    def end(self, handle: Optional[SpanHandle], sim_time: float) -> None:
        """Close a span opened by :meth:`begin` (no-op on ``None``)."""
        if handle is None or not self.enabled:
            return
        try:
            self._open_spans.remove(handle)
        except ValueError:  # pragma: no cover - double close; keep the event
            pass
        args = dict(handle.args or {})
        if handle.wall_start is not None:
            args["wall_ns"] = _time.perf_counter_ns() - handle.wall_start
        self.complete(
            handle.track, handle.name, handle.start, sim_time, **args
        )

    def complete(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        **args: object,
    ) -> None:
        """Record a complete (``ph: X``) span from *start* to *end* sim time."""
        if not self.enabled:
            return
        pid, tid = self._track(track)
        # Stored in *sim* time; converted to trace microseconds at export.
        # Analysis (the critical-path analyzer) reads the sim-native record,
        # so its arithmetic never round-trips through the us scaling.
        event: Dict[str, object] = {
            "ph": "X",
            "name": name,
            "pid": pid,
            "tid": tid,
            "ts": start,
            "dur": max(0.0, end - start),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, track: str, name: str, sim_time: float, **args: object) -> None:
        """Record an instant (``ph: i``) event."""
        if not self.enabled:
            return
        pid, tid = self._track(track)
        event: Dict[str, object] = {
            "ph": "i",
            "s": "t",
            "name": name,
            "pid": pid,
            "tid": tid,
            "ts": sim_time,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def _flow_id(self, key: object) -> int:
        flow_id = self._flow_ids.get(key)
        if flow_id is None:
            flow_id = self._flow_ids[key] = self._next_flow_id
            self._next_flow_id += 1
        return flow_id

    def flow_start(self, track: str, name: str, sim_time: float, key: object) -> None:
        """Open a flow (``ph: s``) — e.g. a WR's post on the origin rank."""
        if not self.enabled:
            return
        pid, tid = self._track(track)
        self._events.append(
            {
                "ph": "s",
                "name": name,
                "cat": "flow",
                "id": self._flow_id(key),
                "pid": pid,
                "tid": tid,
                "ts": sim_time,
            }
        )

    def flow_end(self, track: str, name: str, sim_time: float, key: object) -> None:
        """Close a flow (``ph: f``) — e.g. the WR's retirement."""
        if not self.enabled:
            return
        pid, tid = self._track(track)
        self._events.append(
            {
                "ph": "f",
                "bp": "e",
                "name": name,
                "cat": "flow",
                "id": self._flow_id(key),
                "pid": pid,
                "tid": tid,
                "ts": sim_time,
            }
        )

    # -- introspection / export ---------------------------------------------------

    def open_spans(self) -> List[SpanHandle]:
        """Spans begun but not yet ended (tests assert this drains to [])."""
        return list(self._open_spans)

    @staticmethod
    def _to_us(event: Dict[str, object]) -> Dict[str, object]:
        """One internal (sim-time) event as its exported (microsecond) twin."""
        if "ts" not in event:
            return dict(event)
        out = dict(event)
        out["ts"] = out["ts"] * SIM_TIME_TO_US
        if "dur" in out:
            out["dur"] = out["dur"] * SIM_TIME_TO_US
        return out

    def events(self) -> List[Dict[str, object]]:
        """The recorded events in recording order, timestamps in trace us."""
        return [self._to_us(event) for event in self._events]

    def sim_events(self) -> List[Dict[str, object]]:
        """The recorded events with ``ts``/``dur`` in *sim time*.

        This is the lossless view the critical-path analyzer consumes: sim
        times never round-trip through the microsecond scaling, so interval
        arithmetic on them reproduces the simulator's own timestamps exactly.
        """
        return [dict(event) for event in self._events]

    def tracks(self) -> List[str]:
        """Track names in first-seen (deterministic) order."""
        return list(self._tracks)

    def to_chrome_trace(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object (``{"traceEvents": [...]}``)."""
        return {
            "displayTimeUnit": "ms",
            "otherData": {"time_base": "simulated", "sim_time_to_us": SIM_TIME_TO_US},
            "schema_version": TRACE_SCHEMA_VERSION,
            "traceEvents": self.events(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of :meth:`to_chrome_trace`."""
        return json.dumps(self.to_chrome_trace(), indent=indent, sort_keys=True)

    def clear(self) -> None:
        """Drop all recorded events and track bindings."""
        self._events.clear()
        self._tracks.clear()
        self._flow_ids.clear()
        self._next_flow_id = 1
        self._open_spans.clear()
