"""Dependency-free validation of Chrome trace-event JSON.

A deliberately small checker for the subset of the trace-event format this
repo emits (the JSON Object Format with a ``traceEvents`` array).  CI runs it
against the exported RPC-echo trace so a malformed exporter cannot land; the
``python -m repro.obs validate`` subcommand exposes it to humans.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.spans import TRACE_SCHEMA_VERSION

#: Phases this repo emits, with the extra keys each requires.
_REQUIRED_BY_PHASE: Dict[str, tuple] = {
    "X": ("ts", "dur"),
    "B": ("ts",),
    "E": ("ts",),
    "i": ("ts",),
    "s": ("ts", "id"),
    "f": ("ts", "id"),
    "M": ("name",),
}

_COMMON_REQUIRED = ("ph", "pid", "tid", "name")


def validate_chrome_trace(trace: object) -> List[str]:
    """Return a list of problems (empty == valid).

    Checks structure only — required keys per phase, numeric timestamps,
    matched flow start/finish ids, and balanced ``B``/``E`` pairs per track.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    # Absent schema_version means a pre-versioning export and stays valid;
    # present-and-wrong means a layout this checker does not understand.
    version = trace.get("schema_version")
    if version is not None and version != TRACE_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version!r} is not supported "
            f"(this validator understands version {TRACE_SCHEMA_VERSION})"
        )
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["top level must contain a 'traceEvents' array"]

    flow_starts: Dict[object, int] = {}
    flow_ends: Dict[object, int] = {}
    open_begins: Dict[tuple, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{index}]: not an object")
            continue
        for key in _COMMON_REQUIRED:
            if key not in event:
                problems.append(f"traceEvents[{index}]: missing required key {key!r}")
        phase = event.get("ph")
        if not isinstance(phase, str):
            continue
        if phase not in _REQUIRED_BY_PHASE:
            problems.append(f"traceEvents[{index}]: unknown phase {phase!r}")
            continue
        for key in _REQUIRED_BY_PHASE[phase]:
            if key not in event:
                problems.append(
                    f"traceEvents[{index}]: phase {phase!r} missing key {key!r}"
                )
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                problems.append(
                    f"traceEvents[{index}]: {key!r} must be numeric, "
                    f"got {type(event[key]).__name__}"
                )
        if phase == "s":
            flow_starts[event.get("id")] = index
        elif phase == "f":
            flow_ends[event.get("id")] = index
        elif phase == "B":
            track = (event.get("pid"), event.get("tid"))
            open_begins[track] = open_begins.get(track, 0) + 1
        elif phase == "E":
            track = (event.get("pid"), event.get("tid"))
            open_begins[track] = open_begins.get(track, 0) - 1

    for flow_id in sorted(set(flow_starts) - set(flow_ends), key=repr):
        problems.append(f"flow id {flow_id!r} started but never finished")
    for flow_id in sorted(set(flow_ends) - set(flow_starts), key=repr):
        problems.append(f"flow id {flow_id!r} finished but never started")
    for track, depth in sorted(open_begins.items(), key=repr):
        if depth != 0:
            problems.append(
                f"track pid={track[0]} tid={track[1]}: "
                f"unbalanced B/E events (depth {depth})"
            )
    return problems
