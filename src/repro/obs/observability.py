"""The per-simulator observability facade.

One :class:`Observability` instance hangs off each
:class:`~repro.sim.engine.Simulator` as ``sim.obs`` and owns the three
instruments: the metrics registry (always on — counting is cheap and
deterministic), the span tracer (off unless ``RuntimeConfig.trace_spans``),
and the detection profiler.  Subsystems reach it with
``Observability.of(sim)``, which tolerates simulators (or test doubles)
created before this layer existed by attaching a fresh instance on demand.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import DetectionProfiler
from repro.obs.spans import SpanTracer


class Observability:
    """Bundle of metrics registry, span tracer and detection profiler."""

    def __init__(
        self,
        trace_spans: bool = False,
        wall_clock: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer(enabled=trace_spans, wall_clock=wall_clock)
        self.profiler = DetectionProfiler(wall_clock=wall_clock)

    @classmethod
    def of(cls, sim: object) -> "Observability":
        """The observability bundle of *sim*, created on first access."""
        obs = getattr(sim, "obs", None)
        if obs is None:
            obs = cls()
            try:
                sim.obs = obs  # type: ignore[attr-defined]
            except AttributeError:  # pragma: no cover - frozen test doubles
                pass
        return obs

    def configure(self, trace_spans: bool, wall_clock: bool = False) -> None:
        """Flip tracing/profiling modes in place (before the run starts)."""
        self.spans.enabled = trace_spans
        self.spans.wall_clock = wall_clock
        self.profiler.wall_clock = wall_clock

    def reset(self) -> None:
        """Clear all recorded state, keeping instrument identities."""
        self.metrics.reset()
        self.spans.clear()
        self.profiler.reset()
