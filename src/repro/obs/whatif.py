"""Causal what-if profiling: rescale path categories without rerunning.

A Coz-style causal profile answers "if X were p% faster, how much faster is
the *run*?" — which is rarely p%, because the critical path shifts onto the
next bottleneck.  :class:`WhatIfEngine` answers it from one recorded trace:

* The **critical path** (:class:`~repro.obs.critical_path.CriticalPath`) is
  rescaled segment-by-segment: each segment's duration multiplies by the
  factor chosen for its category (and/or its provenance name, the "edge
  class"), all in exact rational arithmetic.
* Each rank contributes a **rigid floor**: its own serial partition
  (:meth:`~repro.obs.critical_path.CriticalPathAnalyzer.rank_partition`)
  with pure wait time (:data:`~repro.obs.critical_path.WAIT_CATEGORIES`)
  excluded, rescaled by the same factors.  Shrinking the network cannot make
  the run shorter than the busiest rank's own rescaled work — the Amdahl
  limit the one-dimensional path would otherwise ignore.

The prediction is ``max(rescaled path, max over ranks of rescaled floor)``.
With every factor 1.0 the rescaled path telescopes back to the exact run
time and every floor is a sub-partition of it, so **what-if(1.0) returns the
recorded end time exactly** — the invariant the tests pin down.

This is a *model*, deliberately cheap and deterministic: it does not replay
scheduling decisions, so secondary effects (a shorter lock hold changing who
wins the next race) are out of scope.  Its job is first-order attribution —
"10% faster network ⇒ 2% faster run" — which is exactly what the regression
explainer and campaign reports need.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.critical_path import (
    CATEGORIES,
    WAIT_CATEGORIES,
    CriticalPathAnalyzer,
    PathSegment,
)


def _as_fraction(value: object) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(float(value))


class WhatIfEngine:
    """Predicts end-to-end sim time under virtual per-category speedups."""

    def __init__(self, analyzer: CriticalPathAnalyzer) -> None:
        self.analyzer = analyzer
        self._path = analyzer.critical_path()
        self._floors: Dict[int, List[PathSegment]] = {
            rank: analyzer.rank_partition(rank) for rank in analyzer.ranks()
        }

    # -- scaling -------------------------------------------------------------------

    @staticmethod
    def _factor(
        segment: PathSegment,
        categories: Mapping[str, object],
        names: Mapping[str, object],
    ) -> Fraction:
        factor = Fraction(1)
        if segment.category in categories:
            factor *= _as_fraction(categories[segment.category])
        if segment.name in names:
            factor *= _as_fraction(names[segment.name])
        return factor

    def _scaled_sum(
        self,
        segments: Iterable[PathSegment],
        categories: Mapping[str, object],
        names: Mapping[str, object],
        skip_waits: bool = False,
    ) -> Fraction:
        total = Fraction(0)
        for segment in segments:
            if skip_waits and segment.category in WAIT_CATEGORIES:
                continue
            total += segment.duration_exact * self._factor(segment, categories, names)
        return total

    # -- prediction ----------------------------------------------------------------

    def predict_exact(
        self,
        categories: Optional[Mapping[str, object]] = None,
        names: Optional[Mapping[str, object]] = None,
    ) -> Fraction:
        """Predicted end-to-end sim time as an exact rational.

        *categories* maps category -> factor (0.9 = 10% faster); *names*
        maps span/provenance names -> factor for edge-class scaling.  Both
        compose multiplicatively on a segment.  Omitted entries mean 1.0.
        """
        categories = categories or {}
        names = names or {}
        for key in categories:
            if key not in CATEGORIES:
                raise KeyError(
                    f"unknown category {key!r} (valid: {', '.join(CATEGORIES)})"
                )
        predicted = self._scaled_sum(self._path.segments, categories, names)
        for segments in self._floors.values():
            floor = self._scaled_sum(segments, categories, names, skip_waits=True)
            if floor > predicted:
                predicted = floor
        return predicted

    def predict(
        self,
        categories: Optional[Mapping[str, object]] = None,
        names: Optional[Mapping[str, object]] = None,
    ) -> float:
        """Predicted end-to-end sim time as a float (see :meth:`predict_exact`)."""
        return float(self.predict_exact(categories, names))

    def speedup(
        self,
        categories: Optional[Mapping[str, object]] = None,
        names: Optional[Mapping[str, object]] = None,
    ) -> float:
        """Fractional end-to-end improvement: 0.02 == "2% faster run"."""
        baseline = self._path.length_exact
        if baseline == 0:
            return 0.0
        return float(1 - self.predict_exact(categories, names) / baseline)

    # -- causal-profile curves ------------------------------------------------------

    def curve(
        self,
        category: str,
        factors: Sequence[float] = (0.5, 0.75, 0.9, 0.95, 1.0, 1.1, 1.5),
    ) -> List[Dict[str, float]]:
        """The causal-profile curve for one category across *factors*.

        Each point records the virtual category factor, the predicted run
        time, and the end-to-end speedup — the "10% faster network ⇒ 2%
        faster run" table.
        """
        points = []
        for factor in factors:
            predicted = self.predict_exact({category: factor})
            points.append(
                {
                    "factor": float(factor),
                    "predicted_sim_time": float(predicted),
                    "speedup": self.speedup({category: factor}),
                }
            )
        return points

    def profile(
        self,
        factor: float = 0.9,
        categories: Sequence[str] = CATEGORIES,
    ) -> List[Dict[str, object]]:
        """One what-if per category at a single *factor*, best payoff first.

        This is the ranked "where would optimization effort pay off" table
        the CLI prints: categories whose virtual speedup moves the run most
        come first.
        """
        rows: List[Dict[str, object]] = []
        attribution = self._path.attribution()
        for category in categories:
            rows.append(
                {
                    "category": category,
                    "path_time": attribution.get(category, 0.0),
                    "factor": float(factor),
                    "predicted_sim_time": self.predict({category: factor}),
                    "speedup": self.speedup({category: factor}),
                }
            )
        rows.sort(key=lambda row: (-row["speedup"], row["category"]))
        return rows
