"""``python -m repro.obs`` — observability command line.

Subcommands::

    python -m repro.obs summarize [METRICS.json] [--seed N]
        Print a human-readable summary of a metrics snapshot.  With a file,
        summarize it; without, run the RPC-echo example and summarize that.

    python -m repro.obs diff BEFORE.json AFTER.json
        Structural diff of two metric snapshots (added/removed/changed keys).
        Exits 1 when the snapshots differ, 0 when byte-identical content.

    python -m repro.obs export-trace [--out TRACE.json] [--seed N] [--racy]
                                     [--validate] [--metrics METRICS.json]
        Run the RPC-echo workload with span tracing enabled and write the
        Chrome trace-event JSON (open it at https://ui.perfetto.dev).  With
        ``--metrics`` also write the run's metric snapshot.

    python -m repro.obs validate TRACE.json
        Check a trace file against the Chrome trace-event schema subset.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_chrome_trace


def _run_rpc_echo(seed: int, racy: bool, trace_spans: bool):
    from repro.runtime.runtime import RuntimeConfig
    from repro.workloads import RPCEchoWorkload

    workload = RPCEchoWorkload(
        num_clients=3,
        requests_per_client=2,
        racy_buffer_reuse=racy,
        config=RuntimeConfig(trace_spans=trace_spans),
    )
    return workload.run(seed=seed)


def _print_summary(snapshot: dict, title: str) -> None:
    print(f"== {title} ({len(snapshot)} instruments)")
    counters = {
        key: value for key, value in snapshot.items() if isinstance(value, (int, float))
    }
    gauges = {
        key: value
        for key, value in snapshot.items()
        if isinstance(value, dict) and "high_watermark" in value
    }
    histograms = {
        key: value
        for key, value in snapshot.items()
        if isinstance(value, dict) and "buckets" in value
    }
    if counters:
        print(f"-- counters ({len(counters)})")
        for key, value in counters.items():
            print(f"   {key} = {value}")
    if gauges:
        print(f"-- gauges ({len(gauges)})")
        for key, value in gauges.items():
            print(f"   {key} = {value['value']} (high {value['high_watermark']})")
    if histograms:
        print(f"-- histograms ({len(histograms)})")
        for key, value in histograms.items():
            print(f"   {key}: count={value['count']} sum={value['sum']:g}")


def cmd_summarize(args: argparse.Namespace) -> int:
    if args.metrics_file:
        with open(args.metrics_file) as handle:
            snapshot = json.load(handle)
        _print_summary(snapshot, args.metrics_file)
        return 0
    result = _run_rpc_echo(args.seed, racy=False, trace_spans=False)
    _print_summary(
        result.run.metrics, f"rpc-echo seed={args.seed}"
    )
    print(f"-- races detected: {result.run.race_count}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    with open(args.before) as handle:
        before = json.load(handle)
    with open(args.after) as handle:
        after = json.load(handle)
    delta = MetricsRegistry.diff(before, after)
    identical = not (delta["added"] or delta["removed"] or delta["changed"])
    if identical:
        print("snapshots are identical")
        return 0
    for key, value in delta["added"].items():
        print(f"ADDED    {key} = {value}")
    for key, value in delta["removed"].items():
        print(f"REMOVED  {key} (was {value})")
    for key, value in delta["changed"].items():
        print(f"CHANGED  {key}: {value['before']} -> {value['after']}")
    return 1


def cmd_export_trace(args: argparse.Namespace) -> int:
    result = _run_rpc_echo(args.seed, racy=args.racy, trace_spans=True)
    tracer = result.runtime.sim.obs.spans
    trace = tracer.to_chrome_trace()
    with open(args.out, "w") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)
    print(
        f"wrote {args.out}: {len(trace['traceEvents'])} events on "
        f"{len(tracer.tracks())} tracks "
        f"(open at https://ui.perfetto.dev)"
    )
    if args.metrics:
        with open(args.metrics, "w") as handle:
            handle.write(json.dumps(result.run.metrics, indent=2, sort_keys=True))
        print(f"wrote {args.metrics}: {len(result.run.metrics)} instruments")
    if args.validate:
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print("trace validates against the Chrome trace-event schema subset")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    with open(args.trace) as handle:
        trace = json.load(handle)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    events = trace.get("traceEvents", [])
    print(f"{args.trace}: valid ({len(events)} events)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_sum = subparsers.add_parser(
        "summarize", help="summarize a metrics snapshot (or a fresh RPC-echo run)"
    )
    p_sum.add_argument(
        "metrics_file", nargs="?", default=None, help="metrics JSON to summarize"
    )
    p_sum.add_argument("--seed", type=int, default=0)
    p_sum.set_defaults(func=cmd_summarize)

    p_diff = subparsers.add_parser("diff", help="diff two metric snapshots")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.set_defaults(func=cmd_diff)

    p_export = subparsers.add_parser(
        "export-trace", help="run RPC echo with tracing; write Chrome trace JSON"
    )
    p_export.add_argument("--out", default="trace_rpc_echo.json")
    p_export.add_argument("--seed", type=int, default=0)
    p_export.add_argument(
        "--racy", action="store_true", help="use the racy buffer-reuse variant"
    )
    p_export.add_argument(
        "--validate", action="store_true", help="validate the exported trace"
    )
    p_export.add_argument(
        "--metrics", default=None, help="also write the metric snapshot here"
    )
    p_export.set_defaults(func=cmd_export_trace)

    p_val = subparsers.add_parser(
        "validate", help="validate a Chrome trace-event JSON file"
    )
    p_val.add_argument("trace")
    p_val.set_defaults(func=cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
