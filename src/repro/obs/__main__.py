"""``python -m repro.obs`` — observability command line.

Subcommands::

    python -m repro.obs summarize [METRICS.json] [--seed N]
        Print a human-readable summary of a metrics snapshot.  With a file,
        summarize it; without, run the RPC-echo example and summarize that.

    python -m repro.obs diff BEFORE.json AFTER.json
                             [--trace-before T1.json --trace-after T2.json]
        Structural diff of two metric snapshots (added/removed/changed keys).
        With trace files, also attribute the run delta to critical-path
        categories and print the ranked movement table.  Exits 1 when the
        snapshots differ, 0 when byte-identical content.

    python -m repro.obs export-trace [--out TRACE.json] [--seed N] [--racy]
                                     [--validate] [--metrics METRICS.json]
        Run the RPC-echo workload with span tracing enabled and write the
        Chrome trace-event JSON (open it at https://ui.perfetto.dev).  With
        ``--metrics`` also write the run's metric snapshot (versioned
        envelope).

    python -m repro.obs validate TRACE.json
        Check a trace file against the Chrome trace-event schema subset;
        reports the first failing event's index.

    python -m repro.obs critical-path [--trace TRACE.json] [--seed N] [--racy]
                                      [--top N] [--json OUT.json]
        Extract the critical path (from an exported trace, or from a fresh
        traced RPC-echo run) and print per-category attribution with the
        longest segments.

    python -m repro.obs whatif [--trace TRACE.json] [--seed N] [--racy]
                               [--category CAT] [--factor F] [--curve]
        Causal what-if profiling: predict the end-to-end sim time if one
        category ran F× its recorded speed.  Without ``--category``, print
        the ranked per-category profile (where optimization pays off most).

All file-reading subcommands exit 2 with a one-line message on a missing or
malformed input file — no tracebacks.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

from repro.obs.critical_path import (
    CATEGORIES,
    CriticalPathAnalyzer,
    category_deltas,
)
from repro.obs.metrics import MetricsRegistry, load_snapshot
from repro.obs.schema import validate_chrome_trace
from repro.obs.whatif import WhatIfEngine


class CliError(Exception):
    """A user-facing one-line failure (bad input file, bad arguments)."""


def _load_json(path: str, what: str = "input") -> object:
    """Load a JSON file or raise :class:`CliError` with a one-line reason."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise CliError(f"{what} file not found: {path}")
    except IsADirectoryError:
        raise CliError(f"{what} path is a directory, not a file: {path}")
    except json.JSONDecodeError as error:
        raise CliError(
            f"{what} file {path} is not valid JSON "
            f"(line {error.lineno}, column {error.colno}: {error.msg})"
        )
    except OSError as error:
        raise CliError(f"cannot read {what} file {path}: {error.strerror or error}")


def _load_metrics(path: str) -> dict:
    payload = _load_json(path, "metrics")
    if not isinstance(payload, dict):
        raise CliError(f"metrics file {path} must contain a JSON object")
    try:
        return load_snapshot(payload)
    except ValueError as error:
        raise CliError(f"metrics file {path}: {error}")


def _run_rpc_echo(seed: int, racy: bool, trace_spans: bool):
    from repro.runtime.runtime import RuntimeConfig
    from repro.workloads import RPCEchoWorkload

    workload = RPCEchoWorkload(
        num_clients=3,
        requests_per_client=2,
        racy_buffer_reuse=racy,
        config=RuntimeConfig(trace_spans=trace_spans),
    )
    return workload.run(seed=seed)


def _analyzer_for(args: argparse.Namespace) -> CriticalPathAnalyzer:
    """An analyzer from ``--trace FILE`` or from a fresh traced RPC-echo run."""
    if args.trace:
        payload = _load_json(args.trace, "trace")
        if not isinstance(payload, dict):
            raise CliError(f"trace file {args.trace} must contain a JSON object")
        try:
            return CriticalPathAnalyzer.from_chrome_trace(payload)
        except ValueError as error:
            raise CliError(f"trace file {args.trace}: {error}")
    result = _run_rpc_echo(args.seed, racy=args.racy, trace_spans=True)
    return CriticalPathAnalyzer.from_tracer(
        result.runtime.sim.obs.spans, result.run.elapsed_sim_time
    )


def _print_summary(snapshot: dict, title: str) -> None:
    print(f"== {title} ({len(snapshot)} instruments)")
    counters = {
        key: value for key, value in snapshot.items() if isinstance(value, (int, float))
    }
    gauges = {
        key: value
        for key, value in snapshot.items()
        if isinstance(value, dict) and "high_watermark" in value
    }
    histograms = {
        key: value
        for key, value in snapshot.items()
        if isinstance(value, dict) and "buckets" in value
    }
    if counters:
        print(f"-- counters ({len(counters)})")
        for key, value in counters.items():
            print(f"   {key} = {value}")
    if gauges:
        print(f"-- gauges ({len(gauges)})")
        for key, value in gauges.items():
            print(f"   {key} = {value['value']} (high {value['high_watermark']})")
    if histograms:
        print(f"-- histograms ({len(histograms)})")
        for key, value in histograms.items():
            print(f"   {key}: count={value['count']} sum={value['sum']:g}")


def _print_attribution(summary: dict) -> None:
    total = summary["path_sim_time"]
    print(
        f"critical path: {total:g} sim time over {summary['segments']} segments "
        f"(dominant: {summary['dominant']})"
    )
    print(f"{'category':<18} {'sim time':>12} {'share':>8}")
    for category in CATEGORIES:
        value = summary["categories"].get(category, 0.0)
        if not value:
            continue
        share = summary["fractions"].get(category, 0.0)
        print(f"{category:<18} {value:>12.4f} {share:>7.1%}")


def cmd_summarize(args: argparse.Namespace) -> int:
    if args.metrics_file:
        snapshot = _load_metrics(args.metrics_file)
        _print_summary(snapshot, args.metrics_file)
        return 0
    result = _run_rpc_echo(args.seed, racy=False, trace_spans=False)
    _print_summary(
        result.run.metrics, f"rpc-echo seed={args.seed}"
    )
    print(f"-- races detected: {result.run.race_count}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    before = _load_metrics(args.before)
    after = _load_metrics(args.after)
    delta = MetricsRegistry.diff(before, after)
    identical = not (delta["added"] or delta["removed"] or delta["changed"])
    if identical:
        print("snapshots are identical")
    else:
        for key, value in delta["added"].items():
            print(f"ADDED    {key} = {value}")
        for key, value in delta["removed"].items():
            print(f"REMOVED  {key} (was {value})")
        for key, value in delta["changed"].items():
            print(f"CHANGED  {key}: {value['before']} -> {value['after']}")
    if args.trace_before or args.trace_after:
        if not (args.trace_before and args.trace_after):
            raise CliError("--trace-before and --trace-after must be given together")
        summaries = []
        for path in (args.trace_before, args.trace_after):
            payload = _load_json(path, "trace")
            if not isinstance(payload, dict):
                raise CliError(f"trace file {path} must contain a JSON object")
            try:
                analyzer = CriticalPathAnalyzer.from_chrome_trace(payload)
            except ValueError as error:
                raise CliError(f"trace file {path}: {error}")
            summaries.append(analyzer.summary())
        print("-- critical-path movement (before -> after)")
        rows = category_deltas(summaries[0], summaries[1])
        if not rows:
            print("   no per-category path movement")
        for row in rows:
            print(
                f"   {row['category']:<18} {row['before']:>10.4f} -> "
                f"{row['after']:>10.4f}  ({row['delta']:+.4f})"
            )
    return 0 if identical else 1


def cmd_export_trace(args: argparse.Namespace) -> int:
    result = _run_rpc_echo(args.seed, racy=args.racy, trace_spans=True)
    tracer = result.runtime.sim.obs.spans
    trace = tracer.to_chrome_trace()
    # Record the run length so offline analysis (critical-path, what-if)
    # knows where the path must end without guessing from the last event.
    trace["otherData"]["elapsed_sim_time"] = result.run.elapsed_sim_time
    with open(args.out, "w") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)
    print(
        f"wrote {args.out}: {len(trace['traceEvents'])} events on "
        f"{len(tracer.tracks())} tracks "
        f"(open at https://ui.perfetto.dev)"
    )
    if args.metrics:
        registry = result.runtime.sim.obs.metrics
        with open(args.metrics, "w") as handle:
            handle.write(json.dumps(registry.export(), indent=2, sort_keys=True))
        print(f"wrote {args.metrics}: {len(result.run.metrics)} instruments")
    if args.validate:
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print("trace validates against the Chrome trace-event schema subset")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    trace = _load_json(args.trace, "trace")
    problems = validate_chrome_trace(trace)
    if problems:
        first_index = None
        for problem in problems:
            match = re.match(r"traceEvents\[(\d+)\]", problem)
            if match:
                first_index = int(match.group(1))
                break
        if first_index is not None:
            print(f"first failing event: traceEvents[{first_index}]")
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
    print(f"{args.trace}: valid ({len(events)} events)")
    return 0


def cmd_critical_path(args: argparse.Namespace) -> int:
    analyzer = _analyzer_for(args)
    path = analyzer.critical_path()
    summary = path.summary(top_segments=args.top)
    _print_attribution(summary)
    print(f"-- longest segments (top {min(args.top, len(path))})")
    for segment in summary["top_segments"]:
        print(
            f"   [{segment['start']:>10.4f}, {segment['end']:>10.4f}] "
            f"{segment['duration']:>10.4f}  {segment['category']:<18} "
            f"{segment['name']} (P{segment['rank']})"
        )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    analyzer = _analyzer_for(args)
    engine = WhatIfEngine(analyzer)
    baseline = analyzer.critical_path().length
    if args.category:
        if args.category not in CATEGORIES:
            raise CliError(
                f"unknown category {args.category!r} "
                f"(valid: {', '.join(CATEGORIES)})"
            )
        if args.curve:
            print(f"causal-profile curve for {args.category} (baseline {baseline:g})")
            print(f"{'factor':>8} {'predicted':>12} {'speedup':>9}")
            for point in engine.curve(args.category):
                print(
                    f"{point['factor']:>8.2f} {point['predicted_sim_time']:>12.4f} "
                    f"{point['speedup']:>8.2%}"
                )
            return 0
        predicted = engine.predict({args.category: args.factor})
        speedup = engine.speedup({args.category: args.factor})
        print(
            f"{args.category} x{args.factor:g}: predicted {predicted:g} sim time "
            f"(baseline {baseline:g}, end-to-end speedup {speedup:.2%})"
        )
        return 0
    print(
        f"what-if profile at factor {args.factor:g} (baseline {baseline:g}): "
        f"best payoff first"
    )
    print(f"{'category':<18} {'path time':>12} {'predicted':>12} {'speedup':>9}")
    for row in engine.profile(factor=args.factor):
        print(
            f"{row['category']:<18} {row['path_time']:>12.4f} "
            f"{row['predicted_sim_time']:>12.4f} {row['speedup']:>8.2%}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_sum = subparsers.add_parser(
        "summarize", help="summarize a metrics snapshot (or a fresh RPC-echo run)"
    )
    p_sum.add_argument(
        "metrics_file", nargs="?", default=None, help="metrics JSON to summarize"
    )
    p_sum.add_argument("--seed", type=int, default=0)
    p_sum.set_defaults(func=cmd_summarize)

    p_diff = subparsers.add_parser("diff", help="diff two metric snapshots")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument(
        "--trace-before", default=None,
        help="span trace of the BEFORE run (enables critical-path attribution)",
    )
    p_diff.add_argument(
        "--trace-after", default=None,
        help="span trace of the AFTER run (enables critical-path attribution)",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_export = subparsers.add_parser(
        "export-trace", help="run RPC echo with tracing; write Chrome trace JSON"
    )
    p_export.add_argument("--out", default="trace_rpc_echo.json")
    p_export.add_argument("--seed", type=int, default=0)
    p_export.add_argument(
        "--racy", action="store_true", help="use the racy buffer-reuse variant"
    )
    p_export.add_argument(
        "--validate", action="store_true", help="validate the exported trace"
    )
    p_export.add_argument(
        "--metrics", default=None, help="also write the metric snapshot here"
    )
    p_export.set_defaults(func=cmd_export_trace)

    p_val = subparsers.add_parser(
        "validate", help="validate a Chrome trace-event JSON file"
    )
    p_val.add_argument("trace")
    p_val.set_defaults(func=cmd_validate)

    p_cp = subparsers.add_parser(
        "critical-path",
        help="extract and attribute the critical path of a traced run",
    )
    p_cp.add_argument(
        "--trace", default=None,
        help="exported trace JSON (default: run RPC echo with tracing)",
    )
    p_cp.add_argument("--seed", type=int, default=0)
    p_cp.add_argument("--racy", action="store_true")
    p_cp.add_argument("--top", type=int, default=5, help="longest segments to show")
    p_cp.add_argument("--json", default=None, help="also write the summary JSON here")
    p_cp.set_defaults(func=cmd_critical_path)

    p_wi = subparsers.add_parser(
        "whatif", help="causal what-if: rescale a category, predict the run time"
    )
    p_wi.add_argument(
        "--trace", default=None,
        help="exported trace JSON (default: run RPC echo with tracing)",
    )
    p_wi.add_argument("--seed", type=int, default=0)
    p_wi.add_argument("--racy", action="store_true")
    p_wi.add_argument(
        "--category", default=None, help=f"one of: {', '.join(CATEGORIES)}"
    )
    p_wi.add_argument(
        "--factor", type=float, default=0.9,
        help="virtual speed factor (0.9 = 10%% faster)",
    )
    p_wi.add_argument(
        "--curve", action="store_true",
        help="print the whole causal-profile curve for --category",
    )
    p_wi.set_defaults(func=cmd_whatif)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `... | head`; not an error
        return 0


if __name__ == "__main__":
    sys.exit(main())
