"""Critical-path extraction and attribution over span traces.

The simulator already records the happens-before structure of a run as span
events (:mod:`repro.obs.spans`): WR posts and retirements on the rank tracks,
NIC service spans and drain bursts on the engine tracks, lock waits at the
owner, barrier fan-in, RNR backoffs, CQ/event-channel waits, clock-transport
round trips, and cross-rank flow arrows.  This module turns that record into
the two artefacts a perf investigation actually wants:

* :class:`CriticalPathAnalyzer` reconstructs per-rank dependency timelines
  from the trace and extracts **the critical path**: a gap-free chain of
  :class:`PathSegment` intervals from sim time 0 to the run's end, each
  attributed to one category (:data:`CATEGORIES`) with per-segment
  provenance (the span that explains it, its track and owning rank).  The
  walk runs *backward* from the end of the run, always blaming the innermost
  activity covering the current instant, and hops across ranks where the
  trace names the true blocker (barrier releases hop to the last arriver,
  SEND deliveries hop to the sender).
* :class:`~repro.obs.whatif.WhatIfEngine` (built on the analyzer) virtually
  rescales categories and recomputes the end-to-end time without rerunning.

Exactness contract (tested over the whole workload corpus): the segments
tile ``[0, end_time]`` with shared endpoints, so the path length equals the
simulated run time *exactly* and the per-category attribution sums to the
path length *exactly*.  Because adjacent segments share their boundary
float, the sums are evaluated in exact rational arithmetic
(:class:`fractions.Fraction` — every float is a dyadic rational), never in
accumulated floating point.  The analyzer consumes
:meth:`~repro.obs.spans.SpanTracer.sim_events` (sim-time-native records), so
no timestamp ever round-trips through the Chrome-trace microsecond scaling.

Analysis is pure post-processing of an existing trace: running it (or not)
cannot change verdicts, decision logs or metric snapshots — PR 6's
zero-footprint guarantee extends to this module by construction.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.spans import SIM_TIME_TO_US, TRACE_SCHEMA_VERSION

#: Attribution categories, in reporting order.  ``compute`` is the residual:
#: intervals no instrumented span covers are the process (or analysis-unknown
#: spans) simply executing.
CATEGORIES = (
    "network",
    "nic_serialization",
    "lock_wait",
    "rnr_backoff",
    "credit_stall",
    "resync_wait",
    "cq_wait",
    "timer_wait",
    "clock_transport",
    "barrier_wait",
    "compute",
)

#: Categories that are *waits* — elastic time that exists only because some
#: other activity had not finished yet.  The what-if engine excludes them
#: from the per-rank rigid-work floors.  ``credit_stall`` is a wait (the
#: sender parks until the receiver posts a buffer); ``timer_wait`` is NOT —
#: the moderation timer's accumulation window is a policy delay the what-if
#: engine can rescale directly, like a backoff.
WAIT_CATEGORIES = frozenset({"lock_wait", "cq_wait", "barrier_wait", "credit_stall"})

#: Span name -> category.  Names absent here attribute to ``compute``.
SPAN_CATEGORY: Dict[str, str] = {
    "put": "network",
    "get": "network",
    "send": "network",
    "fetch_add": "network",
    "compare_and_swap": "network",
    "qp_drain": "nic_serialization",
    "lock_wait": "lock_wait",
    "rnr_backoff": "rnr_backoff",
    "credit_stall": "credit_stall",
    "resync_wait": "resync_wait",
    "cq_wait": "cq_wait",
    "evch_wait": "cq_wait",
    "timer_wait": "timer_wait",
    "clock_sync": "clock_transport",
    "barrier_wait": "barrier_wait",
}

#: Tie-break priority between spans *starting at the same instant*: the
#: higher wins.  Work beats waits (a wait overlapping active service is not
#: the binding constraint), and the most specific cause beats the most
#: aggregate one.
_CATEGORY_PRIORITY: Dict[str, int] = {
    "lock_wait": 6,
    "rnr_backoff": 6,
    "credit_stall": 6,
    "resync_wait": 5,
    "clock_transport": 5,
    "network": 4,
    "nic_serialization": 3,
    "barrier_wait": 2,
    "cq_wait": 1,
    "timer_wait": 1,
    "compute": 0,
}


def _parse_rank(label: object) -> Optional[int]:
    """``"P3"`` / ``"rank-P3"`` / ``"nic-P3"`` / ``3`` -> 3 (None if not a rank)."""
    if isinstance(label, int):
        return label
    if not isinstance(label, str):
        return None
    tail = label.rsplit("P", 1)[-1] if "P" in label else label
    try:
        return int(tail)
    except ValueError:
        return None


@dataclass(frozen=True)
class SpanRecord:
    """One complete span, normalized for analysis."""

    track: str
    name: str
    start: float
    end: float
    owner: int
    category: str
    args: Mapping[str, object]


@dataclass(frozen=True)
class PathSegment:
    """One attributed interval of the critical path (or a rank partition)."""

    start: float
    end: float
    category: str
    #: Provenance: the covering span's name, ``"gap"`` for uninstrumented
    #: intervals, ``"barrier_release"`` for the hop across a barrier open,
    #: ``"untraced"`` when the trace was empty.
    name: str
    track: str
    rank: int

    @property
    def duration(self) -> float:
        """Float duration (display only — sums use :meth:`duration_exact`)."""
        return self.end - self.start

    @property
    def duration_exact(self) -> Fraction:
        """Exact duration as a rational: telescopes across shared endpoints."""
        return Fraction(self.end) - Fraction(self.start)

    def as_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "rank": self.rank,
        }


class CriticalPath:
    """The extracted path: chronological segments tiling ``[0, end_time]``."""

    def __init__(self, segments: Sequence[PathSegment], end_time: float) -> None:
        self.segments: Tuple[PathSegment, ...] = tuple(segments)
        self.end_time = end_time

    @property
    def length_exact(self) -> Fraction:
        """Exact path length — equals ``Fraction(end_time)`` by construction."""
        return sum((s.duration_exact for s in self.segments), Fraction(0))

    @property
    def length(self) -> float:
        return float(self.length_exact)

    def attribution_exact(self) -> Dict[str, Fraction]:
        """Per-category exact durations; sums to :attr:`length_exact` exactly."""
        totals: Dict[str, Fraction] = {category: Fraction(0) for category in CATEGORIES}
        for segment in self.segments:
            totals[segment.category] += segment.duration_exact
        return totals

    def attribution(self) -> Dict[str, float]:
        """Per-category durations as floats (for reports and JSON)."""
        return {k: float(v) for k, v in self.attribution_exact().items()}

    def attribution_by_name(self) -> Dict[str, float]:
        """Per-provenance (span-name) durations — the what-if "edge classes"."""
        totals: Dict[str, Fraction] = {}
        for segment in self.segments:
            totals[segment.name] = (
                totals.get(segment.name, Fraction(0)) + segment.duration_exact
            )
        return {name: float(totals[name]) for name in sorted(totals)}

    def dominant_category(self) -> str:
        """The category holding the most path time (ties: reporting order)."""
        attribution = self.attribution_exact()
        return max(CATEGORIES, key=lambda c: (attribution[c], -CATEGORIES.index(c)))

    def summary(self, top_segments: int = 5) -> Dict[str, object]:
        """JSON-safe summary: what schedule outcomes and benchmarks record."""
        attribution = self.attribution()
        total = self.length
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "end_time": self.end_time,
            "path_sim_time": total,
            "segments": len(self.segments),
            "categories": attribution,
            "fractions": {
                category: (value / total if total else 0.0)
                for category, value in attribution.items()
            },
            "dominant": self.dominant_category(),
            "top_segments": [
                segment.as_dict()
                for segment in sorted(
                    self.segments,
                    key=lambda s: (-s.duration, s.start, s.rank, s.name),
                )[:top_segments]
            ],
        }

    def __len__(self) -> int:
        return len(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CriticalPath {len(self.segments)} segments, "
            f"length={self.length:g}, dominant={self.dominant_category()}>"
        )


class CriticalPathAnalyzer:
    """Reconstructs dependency timelines from a span trace; extracts the path.

    Construct from a live tracer (:meth:`from_tracer` — lossless sim times)
    or from an exported Chrome trace file (:meth:`from_chrome_trace` — sim
    times recovered through the microsecond scaling, so exactness holds only
    for the live path).  ``end_time`` is the simulated run time the path
    must reach back from (``RunResult.elapsed_sim_time``).
    """

    def __init__(
        self, events: Sequence[Mapping[str, object]], end_time: float
    ) -> None:
        self.end_time = float(end_time)
        self._spans: Dict[int, List[SpanRecord]] = {}
        self._span_starts: Dict[int, List[float]] = {}
        self._span_maxend: Dict[int, List[float]] = {}
        self._points: Dict[int, List[float]] = {}
        self._deliveries: Dict[int, Dict[float, int]] = {}
        self._last_activity: Dict[int, float] = {}
        self._path: Optional[CriticalPath] = None
        self._parse(events)

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer, end_time: float) -> "CriticalPathAnalyzer":
        """Analyze a live :class:`~repro.obs.spans.SpanTracer` (exact)."""
        return cls(tracer.sim_events(), end_time)

    @classmethod
    def from_chrome_trace(
        cls, trace: Mapping[str, object], end_time: Optional[float] = None
    ) -> "CriticalPathAnalyzer":
        """Analyze an exported trace object (``{"traceEvents": [...]}``).

        Rejects a trace whose ``schema_version`` names a layout this analyzer
        does not understand (absent means a pre-versioning export and is
        accepted).  ``end_time`` defaults to ``otherData.elapsed_sim_time``
        when the exporter recorded it, else the latest event end.
        """
        version = trace.get("schema_version")
        if version is not None and version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema_version {version!r} is not supported "
                f"(this analyzer reads version {TRACE_SCHEMA_VERSION})"
            )
        other = trace.get("otherData") or {}
        scale = float(other.get("sim_time_to_us", SIM_TIME_TO_US)) or SIM_TIME_TO_US
        events = []
        latest = 0.0
        for event in trace.get("traceEvents", []):
            if not isinstance(event, dict):
                continue
            converted = dict(event)
            if "ts" in converted:
                converted["ts"] = float(converted["ts"]) / scale
                if "dur" in converted:
                    converted["dur"] = float(converted["dur"]) / scale
                latest = max(
                    latest, converted["ts"] + converted.get("dur", 0.0)
                )
            events.append(converted)
        if end_time is None:
            end_time = other.get("elapsed_sim_time", latest)
        return cls(events, float(end_time))

    @classmethod
    def from_trace_file(cls, path: str) -> "CriticalPathAnalyzer":
        """Load and analyze an exported trace JSON file."""
        with open(path) as handle:
            return cls.from_chrome_trace(json.load(handle))

    # -- parsing --------------------------------------------------------------------

    def _parse(self, events: Sequence[Mapping[str, object]]) -> None:
        track_names: Dict[object, str] = {}
        spans: Dict[int, List[SpanRecord]] = {}
        points: Dict[int, set] = {}
        for event in events:
            phase = event.get("ph")
            if phase == "M":
                args = event.get("args") or {}
                if event.get("name") == "process_name" and "name" in args:
                    track_names[event.get("pid")] = str(args["name"])
                continue
            track = track_names.get(event.get("pid"), "")
            track_rank = _parse_rank(track)
            args = event.get("args") or {}
            if phase == "X":
                start = float(event.get("ts", 0.0))
                end = start + float(event.get("dur", 0.0))
                name = str(event.get("name", ""))
                # A lock wait is charged to the *requester* — the rank whose
                # operation stalled at the owner's lock table — not to the
                # track (the owner's NIC) it is drawn on.
                owner = track_rank
                if name == "lock_wait":
                    owner = _parse_rank(args.get("requester"))
                    if owner is None:
                        owner = track_rank
                if owner is None:
                    continue
                record = SpanRecord(
                    track=track,
                    name=name,
                    start=start,
                    end=end,
                    owner=owner,
                    category=SPAN_CATEGORY.get(name, "compute"),
                    args=args,
                )
                spans.setdefault(owner, []).append(record)
                rank_points = points.setdefault(owner, set())
                rank_points.add(start)
                rank_points.add(end)
            elif phase in ("i", "s", "f"):
                if track_rank is None:
                    continue
                when = float(event.get("ts", 0.0))
                points.setdefault(track_rank, set()).add(when)
                if phase == "i" and event.get("name") == "send_delivered":
                    source = _parse_rank(args.get("source"))
                    if source is not None:
                        self._deliveries.setdefault(track_rank, {})[when] = source

        for rank, records in spans.items():
            # Sort by start; equal starts break by the tie priority then span
            # extent, so a backward scan meets the preferred cover first.
            records.sort(
                key=lambda r: (
                    r.start,
                    _CATEGORY_PRIORITY.get(r.category, 0),
                    r.end,
                    r.name,
                    r.track,
                )
            )
            self._spans[rank] = records
            self._span_starts[rank] = [r.start for r in records]
            maxend: List[float] = []
            running = float("-inf")
            for record in records:
                running = max(running, record.end)
                maxend.append(running)
            self._span_maxend[rank] = maxend
        for rank, rank_points in points.items():
            self._points[rank] = sorted(rank_points)
            self._last_activity[rank] = self._points[rank][-1]

    # -- timeline queries -----------------------------------------------------------

    def ranks(self) -> List[int]:
        """Ranks with any recorded activity, ascending."""
        return sorted(set(self._points) | set(self._spans))

    def last_activity(self, rank: int) -> float:
        """The rank's latest recorded event time (0.0 when untraced)."""
        return self._last_activity.get(rank, 0.0)

    def _covering(self, rank: int, t: float) -> Optional[SpanRecord]:
        """The innermost span of *rank* with ``start < t <= end``.

        Innermost = maximal start; equal starts resolved by the category
        priority (work beats waits), then by extent — exactly the sort order,
        so the backward scan's first hit in the final tie group wins.
        """
        records = self._spans.get(rank)
        if not records:
            return None
        starts = self._span_starts[rank]
        maxend = self._span_maxend[rank]
        index = bisect.bisect_left(starts, t) - 1
        while index >= 0:
            if maxend[index] < t:
                return None  # nothing at or before this start reaches t
            record = records[index]
            if record.end >= t:
                return record
            index -= 1
        return None

    def _previous_point(self, rank: int, t: float) -> float:
        """The latest recorded event time of *rank* strictly before *t*."""
        rank_points = self._points.get(rank)
        if not rank_points:
            return 0.0
        index = bisect.bisect_left(rank_points, t) - 1
        return rank_points[index] if index >= 0 else 0.0

    def _delivery_source(self, rank: int, t: float) -> Optional[int]:
        """The sender rank of a SEND delivered to *rank* at exactly *t*."""
        return self._deliveries.get(rank, {}).get(t)

    # -- the walk -------------------------------------------------------------------

    def _start_rank(self) -> int:
        """The rank whose activity ends latest (ties: lowest rank)."""
        best = -1
        best_time = float("-inf")
        for rank in self.ranks():
            last = self.last_activity(rank)
            if last > best_time:
                best, best_time = rank, last
        return best

    def critical_path(self) -> CriticalPath:
        """Extract (and cache) the critical path of the traced run."""
        if self._path is None:
            self._path = CriticalPath(self._walk(), self.end_time)
        return self._path

    def _walk(self) -> List[PathSegment]:
        segments: List[PathSegment] = []
        t = self.end_time
        if t <= 0.0:
            return segments
        rank = self._start_rank()
        if rank < 0:
            return [PathSegment(0.0, t, "compute", "untraced", "", -1)]
        hops_taken: set = set()
        while t > 0.0:
            span = self._covering(rank, t)
            if span is not None:
                hop = self._hop(span, rank, t, hops_taken)
                if hop is not None:
                    segment, rank, t = hop
                    if segment is not None:
                        segments.append(segment)
                    continue
                seg_start = max(span.start, 0.0)
                segments.append(
                    PathSegment(seg_start, t, span.category, span.name, span.track, rank)
                )
                t = seg_start
                continue
            previous = self._previous_point(rank, t)
            segments.append(
                PathSegment(previous, t, "compute", "gap", f"rank-P{rank}", rank)
            )
            t = previous
        segments.reverse()
        return segments

    def _hop(
        self, span: SpanRecord, rank: int, t: float, hops_taken: set
    ) -> Optional[Tuple[Optional[PathSegment], int, float]]:
        """Cross-rank continuation at a wait whose unblocker the trace names.

        Returns ``(segment_or_None, next_rank, next_time)`` when the walk
        should jump to the true blocker, else ``None`` (attribute the wait
        locally).  Each hop site fires at most once, so a trace with
        surprising timestamps can never cycle the walk.
        """
        if span.name == "barrier_wait":
            opened_at = span.args.get("opened_at")
            opener = _parse_rank(span.args.get("opener"))
            if (
                isinstance(opened_at, (int, float))
                and opener is not None
                and opener != rank
                and span.start <= float(opened_at) < t
                and ("barrier", rank, t) not in hops_taken
            ):
                hops_taken.add(("barrier", rank, t))
                # The release flight from the open to this rank's resume is
                # real network time; the wait before the open belongs to the
                # rank that opened the barrier last.
                segment = PathSegment(
                    float(opened_at), t, "network", "barrier_release", span.track, rank
                )
                return segment, opener, float(opened_at)
        if span.category == "cq_wait" and t == span.end:
            source = self._delivery_source(rank, t)
            if (
                source is not None
                and source != rank
                and ("delivery", rank, t) not in hops_taken
            ):
                hops_taken.add(("delivery", rank, t))
                return None, source, t
        return None

    # -- per-rank partitions (what-if floors) ----------------------------------------

    def rank_partition(self, rank: int) -> List[PathSegment]:
        """Partition ``[0, last_activity(rank)]`` of one rank's own timeline.

        The same innermost-cover attribution as the critical path, restricted
        to one rank and with no cross-rank hops: this is the rank's serial
        story, which the what-if engine uses as a rigid-work floor (waits
        excluded).  Time after the rank's last recorded event is dropped —
        the rank is done, not busy.
        """
        segments: List[PathSegment] = []
        t = min(self.last_activity(rank), self.end_time)
        while t > 0.0:
            span = self._covering(rank, t)
            if span is not None:
                seg_start = max(span.start, 0.0)
                segments.append(
                    PathSegment(seg_start, t, span.category, span.name, span.track, rank)
                )
                t = seg_start
                continue
            previous = self._previous_point(rank, t)
            segments.append(
                PathSegment(previous, t, "compute", "gap", f"rank-P{rank}", rank)
            )
            t = previous
        segments.reverse()
        return segments

    def summary(self, top_segments: int = 5) -> Dict[str, object]:
        """Shorthand for ``critical_path().summary(...)``."""
        return self.critical_path().summary(top_segments=top_segments)


def category_deltas(
    before: Mapping[str, object], after: Mapping[str, object]
) -> List[Dict[str, object]]:
    """Rank the per-category path-time movement between two summaries.

    *before*/*after* are :meth:`CriticalPath.summary` dicts.  Returns one row
    per category with a nonzero delta, largest absolute delta first — the
    table the regression explainer prints.
    """
    rows: List[Dict[str, object]] = []
    before_cats = before.get("categories", {}) if isinstance(before, Mapping) else {}
    after_cats = after.get("categories", {}) if isinstance(after, Mapping) else {}
    for category in CATEGORIES:
        b = float(before_cats.get(category, 0.0) or 0.0)
        a = float(after_cats.get(category, 0.0) or 0.0)
        if a != b:
            rows.append(
                {
                    "category": category,
                    "before": b,
                    "after": a,
                    "delta": a - b,
                    "pct": ((a - b) / b * 100.0) if b else float("inf"),
                }
            )
    rows.sort(key=lambda row: (-abs(row["delta"]), row["category"]))
    return rows
