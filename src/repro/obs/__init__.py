"""Deterministic, sim-time-native observability for the simulator.

Three cooperating pieces, all owned by one :class:`Observability` facade that
hangs off the simulator (``sim.obs``):

* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters, gauges and fixed-bucket histograms.  It is the single source of
  truth behind the per-subsystem stats views (``FabricStats``,
  ``ClockTransportStats``, NIC tallies) and snapshots to canonical sorted
  JSON, so equal seeds yield byte-identical snapshots.
* :mod:`repro.obs.spans` — a :class:`~repro.obs.spans.SpanTracer` recording
  sim-time spans (WR post→transfer→retire, QP drain bursts, lock
  request→grant, barrier fan-in, detector checks) and exporting Chrome
  trace-event JSON loadable in Perfetto, one track per rank and per NIC
  engine, with flow events linking a WR's post to its retirement.
* :mod:`repro.obs.profiler` — a
  :class:`~repro.obs.profiler.DetectionProfiler` attributing compare/join
  counts (and optional wall time) per check type (read/write/rmw ×
  live/carried), the before/after baseline for hot-path optimisation work.

On top of the span data sit two pure post-processors:
:mod:`repro.obs.critical_path` (critical-path extraction with exact
per-category attribution) and :mod:`repro.obs.whatif` (causal what-if
profiling — rescale a category, recompute the end-to-end time without
rerunning).

The hard rule, enforced by tests: observability never touches clocks,
scheduling, or randomness — detector verdicts and decision logs are
byte-identical with it on or off.
"""

from repro.obs.critical_path import CriticalPath, CriticalPathAnalyzer, PathSegment
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observability import Observability
from repro.obs.profiler import DetectionProfiler
from repro.obs.spans import SpanTracer
from repro.obs.whatif import WhatIfEngine

__all__ = [
    "Counter",
    "CriticalPath",
    "CriticalPathAnalyzer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "DetectionProfiler",
    "PathSegment",
    "SpanTracer",
    "WhatIfEngine",
]
