"""Global addresses in the partitioned global address space.

The paper's addressing system for shared data is the couple
``(processor_name, local_address)`` (Section III-A).  We represent processor
names as integer ranks and local addresses as non-negative integer offsets
into the owning rank's public memory segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.validation import require_non_negative, require_type


@dataclass(frozen=True, order=True)
class GlobalAddress:
    """An address in the global address space: ``(rank, offset)``.

    Instances are immutable, hashable and totally ordered (lexicographically
    by rank then offset) so they can serve as dictionary keys for clock
    storage and as stable sort keys in race reports.
    """

    rank: int
    offset: int

    def __post_init__(self) -> None:
        require_type(self.rank, int, "rank")
        require_type(self.offset, int, "offset")
        if isinstance(self.rank, bool) or isinstance(self.offset, bool):
            raise TypeError("rank and offset must be plain integers")
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")

    def shifted(self, delta: int) -> "GlobalAddress":
        """Return the address *delta* cells further into the same rank's memory."""
        return GlobalAddress(self.rank, self.offset + delta)

    def __str__(self) -> str:
        return f"P{self.rank}[{self.offset}]"


@dataclass(frozen=True)
class AddressRange:
    """A contiguous range of cells ``[start, start + length)`` on one rank.

    Used to describe memory regions and to express bulk transfers.
    """

    start: GlobalAddress
    length: int

    def __post_init__(self) -> None:
        require_type(self.start, GlobalAddress, "start")
        require_non_negative(self.length, "length")
        require_type(self.length, int, "length")

    @property
    def rank(self) -> int:
        """Rank whose public memory holds this range."""
        return self.start.rank

    @property
    def end_offset(self) -> int:
        """One past the last offset in the range."""
        return self.start.offset + self.length

    def contains(self, address: GlobalAddress) -> bool:
        """True when *address* falls inside this range."""
        return (
            address.rank == self.start.rank
            and self.start.offset <= address.offset < self.end_offset
        )

    def overlaps(self, other: "AddressRange") -> bool:
        """True when the two ranges share at least one cell."""
        if self.rank != other.rank:
            return False
        return self.start.offset < other.end_offset and other.start.offset < self.end_offset

    def addresses(self) -> Iterator[GlobalAddress]:
        """Iterate over every cell address in the range."""
        for delta in range(self.length):
            yield self.start.shifted(delta)

    def __len__(self) -> int:
        return self.length

    def __str__(self) -> str:
        return f"P{self.rank}[{self.start.offset}:{self.end_offset}]"
