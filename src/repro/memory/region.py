"""Registered memory regions.

RDMA NICs only allow remote access to memory that has been explicitly
*registered* (pinned) with them; the paper's public memory area corresponds
to the union of registered regions on a rank.  A :class:`MemoryRegion` records
the symbolic name, the owning rank, the base offset and the length of one such
registration, and is the granularity at which the NIC lock table can also
operate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.address import AddressRange, GlobalAddress
from repro.util.validation import require_positive, require_type


@dataclass(frozen=True)
class MemoryRegion:
    """A named, registered window of one rank's public memory.

    Attributes
    ----------
    name:
        Symbolic name assigned by the symbol directory ("the compiler").
    owner:
        Rank whose public memory physically holds the region.
    base:
        First offset of the region in the owner's public memory.
    length:
        Number of cells in the region.
    element_label:
        Optional free-form description of what one cell holds (for reports).
    """

    name: str
    owner: int
    base: int
    length: int
    element_label: Optional[str] = None

    def __post_init__(self) -> None:
        require_type(self.name, str, "name")
        if not self.name:
            raise ValueError("region name must be non-empty")
        require_type(self.owner, int, "owner")
        if self.owner < 0:
            raise ValueError(f"owner rank must be non-negative, got {self.owner}")
        require_type(self.base, int, "base")
        if self.base < 0:
            raise ValueError(f"base offset must be non-negative, got {self.base}")
        require_type(self.length, int, "length")
        require_positive(self.length, "length")

    @property
    def range(self) -> AddressRange:
        """The address range covered by this region."""
        return AddressRange(GlobalAddress(self.owner, self.base), self.length)

    def address_of(self, index: int) -> GlobalAddress:
        """Global address of element *index* of the region.

        Raises :class:`IndexError` when *index* falls outside the region, so
        out-of-bounds shared-array accesses in user programs fail loudly.
        """
        if not isinstance(index, int) or isinstance(index, bool):
            raise TypeError(f"index must be an int, got {index!r}")
        if not (0 <= index < self.length):
            raise IndexError(
                f"index {index} out of bounds for region {self.name!r} of length {self.length}"
            )
        return GlobalAddress(self.owner, self.base + index)

    def index_of(self, address: GlobalAddress) -> int:
        """Inverse of :meth:`address_of`; raises ``ValueError`` if outside."""
        if not self.range.contains(address):
            raise ValueError(f"{address} is not inside region {self.name!r}")
        return address.offset - self.base

    def contains(self, address: GlobalAddress) -> bool:
        """True when *address* belongs to this region."""
        return self.range.contains(address)

    def __len__(self) -> int:
        return self.length

    def __str__(self) -> str:
        return f"{self.name}@P{self.owner}[{self.base}:{self.base + self.length}]"
