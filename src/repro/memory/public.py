"""Per-rank public memory segments.

The public memory of a rank is the part of its physical memory that remote
NICs may read and write without involving the local CPU or OS (paper, Section
III).  We model it as an array of :class:`MemoryCell` objects.  Each cell
stores a value plus the per-datum metadata the race-detection algorithm needs:
the general-purpose access clock ``V`` and the write clock ``W`` (paper,
Section IV-A), along with simple access counters used by the overhead
benchmarks (experiment E11).

The clocks are stored *with the data they protect*, on the rank that owns the
data — exactly as the paper prescribes ("a clock must be used for each shared
piece of data", Section V-A) — and are read/updated remotely by the NIC during
instrumented ``put``/``get`` operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.clocks import VectorClock
from repro.memory.address import GlobalAddress
from repro.memory.region import MemoryRegion
from repro.util.validation import require_positive, require_type


@dataclass
class MemoryCell:
    """One addressable unit of public memory and its detection metadata."""

    value: Any = None
    access_clock: Optional[VectorClock] = None
    write_clock: Optional[VectorClock] = None
    read_count: int = 0
    write_count: int = 0
    last_writer: Optional[int] = None

    def clock_storage_entries(self) -> int:
        """Number of vector-clock entries stored with this cell.

        Used by the §IV-C / §V-A overhead accounting: with the dual-clock
        scheme each shared cell stores up to ``2 n`` clock entries.
        """
        total = 0
        if self.access_clock is not None:
            total += self.access_clock.size
        if self.write_clock is not None:
            total += self.write_clock.size
        return total


class PublicMemory:
    """The remotely accessible memory segment of one rank."""

    def __init__(self, rank: int, size: int) -> None:
        require_type(rank, int, "rank")
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        require_type(size, int, "size")
        require_positive(size, "size")
        self._rank = rank
        self._size = size
        self._cells: List[MemoryCell] = [MemoryCell() for _ in range(size)]
        self._regions: Dict[str, MemoryRegion] = {}
        self._next_free = 0

    # -- identity -------------------------------------------------------------

    @property
    def rank(self) -> int:
        """Owning rank."""
        return self._rank

    @property
    def size(self) -> int:
        """Total number of cells in the segment."""
        return self._size

    @property
    def allocated(self) -> int:
        """Number of cells currently covered by registered regions."""
        return self._next_free

    # -- region management ------------------------------------------------------

    def register_region(self, name: str, length: int, element_label: Optional[str] = None) -> MemoryRegion:
        """Allocate *length* cells and register them as a named region.

        Allocation is a simple bump pointer: regions are never freed during a
        run, matching the static placement a PGAS compiler performs.
        """
        require_type(name, str, "name")
        if name in self._regions:
            raise ValueError(f"region {name!r} already registered on rank {self._rank}")
        require_positive(length, "length")
        if self._next_free + length > self._size:
            raise MemoryError(
                f"public memory of rank {self._rank} exhausted: need {length} cells, "
                f"{self._size - self._next_free} free"
            )
        region = MemoryRegion(
            name=name,
            owner=self._rank,
            base=self._next_free,
            length=length,
            element_label=element_label,
        )
        self._regions[name] = region
        self._next_free += length
        return region

    def region(self, name: str) -> MemoryRegion:
        """Return the region registered under *name* (``KeyError`` if absent)."""
        return self._regions[name]

    def regions(self) -> Iterator[MemoryRegion]:
        """Iterate over registered regions in registration order."""
        return iter(self._regions.values())

    def region_containing(self, address: GlobalAddress) -> Optional[MemoryRegion]:
        """Return the region that contains *address*, or ``None``."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None

    # -- cell access --------------------------------------------------------------

    def _check_address(self, address: GlobalAddress) -> int:
        require_type(address, GlobalAddress, "address")
        if address.rank != self._rank:
            raise ValueError(
                f"address {address} does not belong to rank {self._rank}'s public memory"
            )
        if not (0 <= address.offset < self._size):
            raise IndexError(
                f"offset {address.offset} out of bounds for public memory of size {self._size}"
            )
        return address.offset

    def cell(self, address: GlobalAddress) -> MemoryCell:
        """Return the cell object at *address* (metadata included)."""
        return self._cells[self._check_address(address)]

    def read(self, address: GlobalAddress) -> Any:
        """Read the value stored at *address* and bump the read counter."""
        cell = self.cell(address)
        cell.read_count += 1
        return cell.value

    def write(self, address: GlobalAddress, value: Any, writer: Optional[int] = None) -> None:
        """Write *value* at *address* and bump the write counter."""
        cell = self.cell(address)
        cell.value = value
        cell.write_count += 1
        cell.last_writer = writer

    def peek(self, address: GlobalAddress) -> Any:
        """Read without touching access counters (for assertions in tests)."""
        return self.cell(address).value

    # -- accounting ---------------------------------------------------------------

    def total_reads(self) -> int:
        """Sum of read counters over all cells."""
        return sum(c.read_count for c in self._cells)

    def total_writes(self) -> int:
        """Sum of write counters over all cells."""
        return sum(c.write_count for c in self._cells)

    def clock_storage_entries(self) -> int:
        """Total number of vector-clock entries held by this segment.

        This is the quantity the paper's Section V-A overhead discussion is
        about: clock storage grows with the number of shared data and with
        the number of processes.
        """
        return sum(c.clock_storage_entries() for c in self._cells)

    def snapshot_values(self) -> List[Any]:
        """Return the raw values of every cell (for whole-memory assertions)."""
        return [c.value for c in self._cells]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PublicMemory rank={self._rank} size={self._size} "
            f"regions={len(self._regions)}>"
        )
