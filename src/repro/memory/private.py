"""Per-rank private memory.

The private memory area can only be accessed by the owning process (paper,
Section III-A); it never carries clocks and never participates in race
detection, but the runtime uses it as the source/destination of every remote
``put``/``get`` (a ``put`` copies *from* private memory *to* a remote public
area, a ``get`` copies the other way).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.util.validation import require_type


class PrivateMemory:
    """A simple named store local to one rank.

    Cells are addressed by string names rather than numeric offsets: private
    memory corresponds to a program's local variables, which the paper never
    needs to address numerically.
    """

    def __init__(self, rank: int) -> None:
        require_type(rank, int, "rank")
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        self._rank = rank
        self._cells: Dict[str, Any] = {}
        self._reads = 0
        self._writes = 0

    @property
    def rank(self) -> int:
        """Owning rank."""
        return self._rank

    # -- access ----------------------------------------------------------------

    def write(self, name: str, value: Any) -> None:
        """Store *value* under *name*."""
        require_type(name, str, "name")
        self._cells[name] = value
        self._writes += 1

    def read(self, name: str, default: Any = None) -> Any:
        """Return the value stored under *name*, or *default* when absent."""
        require_type(name, str, "name")
        self._reads += 1
        return self._cells.get(name, default)

    def read_required(self, name: str) -> Any:
        """Return the value stored under *name*; raise ``KeyError`` when absent."""
        require_type(name, str, "name")
        if name not in self._cells:
            raise KeyError(f"private variable {name!r} not set on rank {self._rank}")
        self._reads += 1
        return self._cells[name]

    def delete(self, name: str) -> None:
        """Remove *name* from the store (no error if absent)."""
        self._cells.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> Iterator[str]:
        """Iterate over variable names in insertion order."""
        return iter(self._cells)

    # -- accounting --------------------------------------------------------------

    @property
    def read_count(self) -> int:
        """Number of local reads performed."""
        return self._reads

    @property
    def write_count(self) -> int:
        """Number of local writes performed."""
        return self._writes

    def snapshot(self) -> Dict[str, Any]:
        """Return a shallow copy of the current contents (for assertions)."""
        return dict(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PrivateMemory rank={self._rank} cells={len(self._cells)}>"
