"""Symbol directory: the "compiler" of the paper's model.

In UPC, Titanium or Co-Array Fortran, the compiler decides where each shared
variable physically lives and translates symbolic accesses into
``(processor, address)`` pairs (paper, Sections I and III-A).  The
:class:`SymbolDirectory` performs that job at program-construction time: user
programs declare shared scalars and arrays, a placement policy assigns them to
ranks, and at run time the runtime resolves ``("x", index)`` into a
:class:`~repro.memory.address.GlobalAddress`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.memory.address import GlobalAddress
from repro.memory.public import PublicMemory
from repro.memory.region import MemoryRegion
from repro.util.validation import require_positive, require_rank, require_type


class PlacementPolicy(enum.Enum):
    """How shared objects are distributed over ranks.

    * ``ROUND_ROBIN`` — successive declarations go to successive ranks
      (cyclic distribution, the UPC default for blocking factor 1).
    * ``BLOCK`` — array elements are split into contiguous blocks, one block
      per rank (block distribution).
    * ``OWNER`` — the declaration names the owning rank explicitly.
    """

    ROUND_ROBIN = "round_robin"
    BLOCK = "block"
    OWNER = "owner"


@dataclass(frozen=True)
class SharedSymbol:
    """Metadata for one declared shared object (scalar or array)."""

    name: str
    length: int
    regions: tuple
    policy: PlacementPolicy

    @property
    def is_scalar(self) -> bool:
        """True when the symbol was declared with length 1."""
        return self.length == 1


class SymbolDirectory:
    """Declares shared symbols and resolves them to global addresses."""

    def __init__(self, memories: Sequence[PublicMemory]) -> None:
        if not memories:
            raise ValueError("SymbolDirectory requires at least one public memory")
        ranks = [m.rank for m in memories]
        if ranks != list(range(len(memories))):
            raise ValueError(
                f"public memories must be supplied in rank order 0..n-1, got ranks {ranks}"
            )
        self._memories: List[PublicMemory] = list(memories)
        self._symbols: Dict[str, SharedSymbol] = {}
        self._round_robin_next = 0

    @property
    def world_size(self) -> int:
        """Number of ranks in the global address space."""
        return len(self._memories)

    # -- declaration ----------------------------------------------------------

    def declare_scalar(
        self,
        name: str,
        owner: Optional[int] = None,
        initial: object = None,
    ) -> SharedSymbol:
        """Declare a shared scalar, optionally pinned to *owner*.

        When *owner* is omitted the scalar is placed round-robin, mimicking a
        compiler's default layout.  The initial value, if given, is written
        directly into the owner's memory (this models initialized shared
        variables and does not count as a remote access).
        """
        if owner is None:
            owner = self._round_robin_next % self.world_size
            self._round_robin_next += 1
            policy = PlacementPolicy.ROUND_ROBIN
        else:
            require_rank(owner, self.world_size, "owner")
            policy = PlacementPolicy.OWNER
        region = self._memories[owner].register_region(name, 1)
        symbol = SharedSymbol(name=name, length=1, regions=(region,), policy=policy)
        self._register(symbol)
        if initial is not None:
            self._memories[owner].write(region.address_of(0), initial, writer=None)
        return symbol

    def declare_array(
        self,
        name: str,
        length: int,
        policy: PlacementPolicy = PlacementPolicy.BLOCK,
        owner: Optional[int] = None,
        initial: object = None,
    ) -> SharedSymbol:
        """Declare a shared array of *length* cells distributed per *policy*.

        ``BLOCK`` splits the array into ``world_size`` nearly equal contiguous
        chunks; ``ROUND_ROBIN`` deals elements out cyclically; ``OWNER`` puts
        the whole array on one rank.  Passing an explicit *owner* selects the
        ``OWNER`` placement regardless of *policy* — naming an owner and
        distributing the data elsewhere would always be a mistake.
        """
        require_type(name, str, "name")
        require_positive(length, "length")
        if owner is not None:
            policy = PlacementPolicy.OWNER
        regions: List[MemoryRegion] = []
        if policy is PlacementPolicy.OWNER:
            if owner is None:
                raise ValueError("OWNER placement requires an explicit owner rank")
            require_rank(owner, self.world_size, "owner")
            regions.append(self._memories[owner].register_region(name, length))
        elif policy is PlacementPolicy.BLOCK:
            base = 0
            for rank in range(self.world_size):
                chunk = self._block_size(length, rank)
                if chunk == 0:
                    continue
                regions.append(
                    self._memories[rank].register_region(f"{name}#blk{rank}", chunk)
                )
                base += chunk
        elif policy is PlacementPolicy.ROUND_ROBIN:
            # One region per rank holding that rank's cyclic share.
            for rank in range(self.world_size):
                chunk = len(range(rank, length, self.world_size))
                if chunk == 0:
                    continue
                regions.append(
                    self._memories[rank].register_region(f"{name}#cyc{rank}", chunk)
                )
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown placement policy {policy!r}")
        symbol = SharedSymbol(name=name, length=length, regions=tuple(regions), policy=policy)
        self._register(symbol)
        if initial is not None:
            for index in range(length):
                address = self.resolve(name, index)
                self._memories[address.rank].write(address, initial, writer=None)
        return symbol

    def _register(self, symbol: SharedSymbol) -> None:
        if symbol.name in self._symbols:
            raise ValueError(f"shared symbol {symbol.name!r} already declared")
        self._symbols[symbol.name] = symbol

    def _block_size(self, length: int, rank: int) -> int:
        base, remainder = divmod(length, self.world_size)
        return base + (1 if rank < remainder else 0)

    # -- resolution -------------------------------------------------------------

    def symbol(self, name: str) -> SharedSymbol:
        """Return the declaration record for *name* (``KeyError`` if unknown)."""
        return self._symbols[name]

    def symbols(self) -> List[SharedSymbol]:
        """All declared symbols in declaration order."""
        return list(self._symbols.values())

    def resolve(self, name: str, index: int = 0) -> GlobalAddress:
        """Translate ``name[index]`` into its global address.

        This is the compile-time address resolution of the paper; the runtime
        calls it before issuing the corresponding NIC operation.
        """
        symbol = self.symbol(name)
        if not isinstance(index, int) or isinstance(index, bool):
            raise TypeError(f"index must be an int, got {index!r}")
        if not (0 <= index < symbol.length):
            raise IndexError(
                f"index {index} out of bounds for shared symbol {name!r} of length {symbol.length}"
            )
        if symbol.policy is PlacementPolicy.OWNER or symbol.length == 1 or len(symbol.regions) == 1:
            return symbol.regions[0].address_of(index)
        if symbol.policy is PlacementPolicy.BLOCK:
            remaining = index
            for region in symbol.regions:
                if remaining < region.length:
                    return region.address_of(remaining)
                remaining -= region.length
            raise IndexError(f"index {index} not covered by regions of {name!r}")
        # ROUND_ROBIN: element i lives on rank i % world_size at position i // world_size.
        rank = index % self.world_size
        position = index // self.world_size
        for region in symbol.regions:
            if region.owner == rank:
                return region.address_of(position)
        raise IndexError(f"index {index} not covered by regions of {name!r}")

    def owner_of(self, name: str, index: int = 0) -> int:
        """Rank that physically holds ``name[index]``."""
        return self.resolve(name, index).rank

    def locality_map(self, name: str) -> Dict[int, int]:
        """Return ``{rank: element_count}`` describing where *name* lives."""
        symbol = self.symbol(name)
        counts: Dict[int, int] = {}
        for region in symbol.regions:
            counts[region.owner] = counts.get(region.owner, 0) + region.length
        return counts
