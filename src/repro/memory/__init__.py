"""Distributed shared memory substrate.

This package models the memory organization of Figure 1 of the paper: every
process (rank) maps a *private* memory area, visible only to itself, and a
*public* memory area that any other rank can read or write remotely through
its NIC.  The set of all public areas forms the Global Address Space; an
address in that space is the pair ``(rank, offset)``
(:class:`~repro.memory.address.GlobalAddress`).

The :class:`~repro.memory.directory.SymbolDirectory` plays the role the paper
assigns to the compiler: it decides on which rank each shared variable lives
and resolves a symbolic name to its global address.

NIC-provided locks on memory areas (paper, Section III-A and Figure 3) are
modelled by :class:`~repro.memory.locks.MemoryLockTable`.
"""

from repro.memory.address import GlobalAddress, AddressRange
from repro.memory.region import MemoryRegion
from repro.memory.private import PrivateMemory
from repro.memory.public import PublicMemory, MemoryCell
from repro.memory.directory import SymbolDirectory, PlacementPolicy
from repro.memory.locks import MemoryLockTable, LockRequest, LockState
from repro.memory.consistency import (
    AccessKind,
    MemoryAccess,
    SequentialConsistencyChecker,
    ConsistencyViolation,
)

__all__ = [
    "GlobalAddress",
    "AddressRange",
    "MemoryRegion",
    "PrivateMemory",
    "PublicMemory",
    "MemoryCell",
    "SymbolDirectory",
    "PlacementPolicy",
    "MemoryLockTable",
    "LockRequest",
    "LockState",
    "AccessKind",
    "MemoryAccess",
    "SequentialConsistencyChecker",
    "ConsistencyViolation",
]
