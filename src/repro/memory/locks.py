"""NIC-provided locks on public memory areas.

The paper (Section III-A) states that since NICs manage the public memory
space, they can provide locks on memory areas guaranteeing exclusive access:
"when a lock is taken by a process, other processes must wait for the release
of this lock before they can access the data".  Figure 3 shows the observable
consequence: a ``put`` on a datum is delayed until a concurrent ``get`` on the
same datum completes.

:class:`MemoryLockTable` implements per-address FIFO mutual exclusion
integrated with the simulation kernel: ``acquire`` returns an
:class:`~repro.sim.events.Event` that fires when the lock is granted, so NIC
operations simply ``yield`` it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.address import GlobalAddress
from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.sim.events import Event, SimulationError
from repro.util.ids import IdAllocator
from repro.util.validation import require_type


class LockState(enum.Enum):
    """State of one lock request."""

    QUEUED = "queued"
    GRANTED = "granted"
    RELEASED = "released"


@dataclass
class LockRequest:
    """One pending or granted request for exclusive access to an address."""

    request_id: int
    address: GlobalAddress
    requester: int
    purpose: str
    event: Event
    state: LockState = LockState.QUEUED
    granted_at: Optional[float] = None
    released_at: Optional[float] = None

    @property
    def wait_time(self) -> Optional[float]:
        """Time spent queued before the grant, if granted."""
        if self.granted_at is None:
            return None
        return self.granted_at - self.queued_at

    queued_at: float = 0.0


class MemoryLockTable:
    """Per-address FIFO locks for one rank's public memory segment."""

    def __init__(self, sim: Simulator, rank: int) -> None:
        require_type(rank, int, "rank")
        self._sim = sim
        self._rank = rank
        self._holders: Dict[GlobalAddress, LockRequest] = {}
        self._queues: Dict[GlobalAddress, List[LockRequest]] = {}
        self._ids = IdAllocator(f"lock-P{rank}")
        self._history: List[LockRequest] = []
        self._contended_acquisitions = 0
        self._obs = Observability.of(sim)

    @property
    def rank(self) -> int:
        """Rank whose public memory this table protects."""
        return self._rank

    # -- acquisition ----------------------------------------------------------

    def acquire(self, address: GlobalAddress, requester: int, purpose: str = "") -> LockRequest:
        """Request exclusive access to *address*.

        Returns a :class:`LockRequest` whose ``event`` fires (with the request
        itself as value) once the lock is granted.  Grants are strictly FIFO
        per address, which is what serializes the put behind the get in
        Figure 3 of the paper.
        """
        require_type(address, GlobalAddress, "address")
        if address.rank != self._rank:
            raise ValueError(
                f"lock table of rank {self._rank} cannot lock {address} owned by rank {address.rank}"
            )
        request = LockRequest(
            request_id=self._ids.next_int(),
            address=address,
            requester=requester,
            purpose=purpose,
            event=self._sim.event(name=f"lock({address})byP{requester}"),
            queued_at=self._sim.now,
        )
        self._history.append(request)
        self._obs.metrics.counter("memory.lock_requests", rank=self._rank).inc()
        if address not in self._holders:
            self._grant(request)
        else:
            self._contended_acquisitions += 1
            self._obs.metrics.counter("memory.lock_contended", rank=self._rank).inc()
            self._queues.setdefault(address, []).append(request)
        return request

    def _grant(self, request: LockRequest) -> None:
        self._holders[request.address] = request
        request.state = LockState.GRANTED
        request.granted_at = self._sim.now
        request.event.succeed(request)
        wait = request.granted_at - request.queued_at
        self._obs.metrics.histogram(
            "memory.lock_wait_time", layout="sim_time", rank=self._rank
        ).observe(wait)
        # The request→grant interval as a span on the owner's NIC track —
        # zero-length for uncontended grants, the Figure 3 serialization
        # otherwise.
        self._obs.spans.complete(
            f"nic-P{self._rank}",
            "lock_wait",
            request.queued_at,
            request.granted_at,
            address=str(request.address),
            requester=f"P{request.requester}",
            purpose=request.purpose,
        )

    # -- release ----------------------------------------------------------------

    def release(self, request: LockRequest) -> None:
        """Release a previously granted lock and grant the next waiter, if any."""
        require_type(request, LockRequest, "request")
        holder = self._holders.get(request.address)
        if holder is not request:
            raise SimulationError(
                f"release of {request.address} by P{request.requester} "
                f"but the lock is held by "
                f"{'nobody' if holder is None else f'P{holder.requester}'}"
            )
        request.state = LockState.RELEASED
        request.released_at = self._sim.now
        del self._holders[request.address]
        queue = self._queues.get(request.address)
        if queue:
            nxt = queue.pop(0)
            if not queue:
                del self._queues[request.address]
            self._grant(nxt)

    # -- inspection ---------------------------------------------------------------

    def holder(self, address: GlobalAddress) -> Optional[LockRequest]:
        """The currently granted request for *address*, or ``None``."""
        return self._holders.get(address)

    def is_locked(self, address: GlobalAddress) -> bool:
        """True when some process currently holds the lock on *address*."""
        return address in self._holders

    def queue_length(self, address: GlobalAddress) -> int:
        """Number of requests waiting behind the holder for *address*."""
        return len(self._queues.get(address, []))

    def outstanding(self) -> int:
        """Total number of granted-but-unreleased locks."""
        return len(self._holders)

    @property
    def contended_acquisitions(self) -> int:
        """How many acquisitions had to wait behind another holder."""
        return self._contended_acquisitions

    def history(self) -> List[LockRequest]:
        """All requests ever made, in request order (for tests and analysis)."""
        return list(self._history)

    def assert_quiescent(self) -> None:
        """Raise :class:`SimulationError` unless every lock has been released.

        The runtime calls this at the end of a run: a held lock at completion
        indicates an unbalanced lock/unlock in a NIC operation.
        """
        if self._holders:
            held = ", ".join(
                f"{addr} by P{req.requester}" for addr, req in self._holders.items()
            )
            raise SimulationError(f"locks still held on rank {self._rank}: {held}")
