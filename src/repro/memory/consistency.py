"""Memory-access bookkeeping and a sequential-consistency reference checker.

The paper motivates race detection by the weak consistency of PGAS languages:
the memory model "does not define a global order of execution of the
operations on the public memory area" (Section I), and Lamport's sequential
consistency [13] is recalled as the strong reference point.

This module provides:

* :class:`MemoryAccess` — the canonical record of one shared-memory access
  (who, what, read/write, value, when), shared by the tracer, the detectors
  and the analysis code;
* :class:`SequentialConsistencyChecker` — an oracle that checks whether an
  observed per-cell history could have been produced by *some* interleaving
  of the per-process programs in which every read returns the most recent
  write (used by integration tests to validate the simulator itself, and by
  the ground-truth race oracle to compare executions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.memory.address import GlobalAddress


class AccessKind(enum.Enum):
    """Kind of shared-memory access, from the accessing process's viewpoint."""

    READ = "read"     # remote get, or local read of own public memory
    WRITE = "write"   # remote put, or local write of own public memory
    RMW = "rmw"       # one-sided atomic read-modify-write (fetch_add, CAS)

    @property
    def is_write(self) -> bool:
        """Convenience flag used by every detector.

        A read-modify-write counts as a write: it deposits a new value, so it
        conflicts with every other access to the same cell.
        """
        return self in (AccessKind.WRITE, AccessKind.RMW)

    @property
    def is_read(self) -> bool:
        """True when the access observes the cell's previous value."""
        return self in (AccessKind.READ, AccessKind.RMW)


@dataclass(frozen=True)
class MemoryAccess:
    """One access to one cell of the global address space.

    Attributes
    ----------
    access_id:
        Globally unique, monotonically increasing id (assigned by the tracer).
    rank:
        The process *performing* the access (the origin of the put/get).
    address:
        The cell accessed.
    kind:
        Read or write.
    value:
        The value written (for writes) or observed (for reads).
    time:
        Simulated time at which the access took effect at the target memory.
    symbol:
        Symbolic name of the shared variable, when known.
    operation:
        The high-level operation that caused the access ("put", "get",
        "local_read", "local_write", "fetch_add", "compare_and_swap",
        "collective", ...).
    observed:
        For read-modify-write accesses only: the value the atomic *read*
        before depositing ``value``.  ``None`` for plain reads and writes.
    """

    access_id: int
    rank: int
    address: GlobalAddress
    kind: AccessKind
    value: object = None
    time: float = 0.0
    symbol: Optional[str] = None
    operation: str = ""
    observed: object = None

    def conflicts_with(self, other: "MemoryAccess") -> bool:
        """Two accesses conflict when they touch the same cell and at least one writes.

        This is exactly the paper's condition for a *potential* race
        (Section III-C); whether it is an actual race additionally requires
        the two accesses to be causally unordered.
        """
        if self.address != other.address:
            return False
        return self.kind.is_write or other.kind.is_write


class ConsistencyViolation(Exception):
    """Raised when an execution cannot be explained by sequential consistency."""


class SequentialConsistencyChecker:
    """Checks read values against the per-cell write history.

    The checker is deliberately simple (per-location coherence rather than a
    full SC search): a read must return either the initial value or the value
    of some write to the same cell that is not followed by another write
    before the read in the observed global (simulated-time) order.  The
    simulator serializes each cell's accesses under the NIC lock, so this
    property must hold for every run; the integration tests use the checker to
    catch simulator bugs.
    """

    def __init__(self, initial_values: Optional[Dict[GlobalAddress, object]] = None) -> None:
        self._initial: Dict[GlobalAddress, object] = dict(initial_values or {})

    def check(self, accesses: Iterable[MemoryAccess]) -> List[str]:
        """Validate *accesses*; return a list of human-readable violations.

        The list is empty for a coherent execution.  Accesses are considered
        in increasing ``(time, access_id)`` order.
        """
        ordered = sorted(accesses, key=lambda a: (a.time, a.access_id))
        last_write: Dict[GlobalAddress, Tuple[object, Optional[int]]] = {}
        violations: List[str] = []
        for access in ordered:
            if access.kind is AccessKind.WRITE:
                last_write[access.address] = (access.value, access.rank)
                continue
            expected, writer = last_write.get(
                access.address, (self._initial.get(access.address), None)
            )
            # An RMW validates like a read (its observed old value must be the
            # latest write) and then updates the cell like a write.
            seen = access.observed if access.kind is AccessKind.RMW else access.value
            if seen != expected:
                violations.append(
                    f"{access.kind.value} by P{access.rank} of {access.address} "
                    f"at t={access.time} observed {seen!r}, expected {expected!r} "
                    f"(last writer: {'initial' if writer is None else f'P{writer}'})"
                )
            if access.kind is AccessKind.RMW:
                last_write[access.address] = (access.value, access.rank)
        return violations

    def check_or_raise(self, accesses: Iterable[MemoryAccess]) -> None:
        """Like :meth:`check`, but raise :class:`ConsistencyViolation` on failure."""
        violations = self.check(accesses)
        if violations:
            raise ConsistencyViolation("; ".join(violations))

    @staticmethod
    def final_values(accesses: Iterable[MemoryAccess]) -> Dict[GlobalAddress, object]:
        """Return the last written value per cell, in observed order.

        Two executions of the same program that end with different final
        values demonstrate an *observable* race — the definition used by the
        ground-truth oracle (the paper: "a race condition is observed when
        the result of a computation differs between executions").
        """
        ordered = sorted(accesses, key=lambda a: (a.time, a.access_id))
        finals: Dict[GlobalAddress, object] = {}
        for access in ordered:
            if access.kind.is_write:
                finals[access.address] = access.value
        return finals
