"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot future: it is *pending* until the simulator
(or another component) triggers it with :meth:`Event.succeed` or
:meth:`Event.fail`, at which point every registered callback runs at the
current simulated time.  Processes (see :mod:`repro.sim.process`) are
generators that ``yield`` events and are resumed when the event fires.

Composite events (:class:`AllOf`, :class:`AnyOf`) are provided because the
NIC model waits for e.g. "lock granted AND payload delivered".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulator


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries an arbitrary, caller-supplied payload
    explaining why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name or self.__class__.__name__
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self._ok: Optional[bool] = None
        self._value: Any = None

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self._triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed`, or the exception from :meth:`fail`."""
        if not self._triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event as successful and schedule its callbacks now."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event as failed; waiting processes receive *exception*."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._enqueue_triggered(self)
        return self

    # -- internal ------------------------------------------------------------

    def _mark_processed(self) -> None:
        self._processed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{self.__class__.__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed simulated delay."""

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        name: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be non-negative, got {delay}")
        super().__init__(sim, name or f"Timeout({delay})")
        self.delay = delay
        self._value = value
        sim._schedule_timeout(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # noqa: D102
        raise SimulationError("Timeout events are triggered by the simulator only")

    def fail(self, exception: BaseException) -> "Event":  # noqa: D102
        raise SimulationError("Timeout events are triggered by the simulator only")

    def _auto_trigger(self) -> None:
        """Called by the simulator when the delay has elapsed."""
        self._triggered = True
        self._ok = True


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    def __init__(self, sim: "Simulator", events: Sequence[Event], name: str) -> None:
        super().__init__(sim, name)
        self.events: List[Event] = list(events)
        if not self.events:
            # An empty condition is immediately satisfied.
            self.succeed({})
            return
        self._pending = len(self.events)
        for event in self.events:
            if event.triggered:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        return {e: e.value for e in self.events if e.triggered and e.ok}


class AllOf(_Condition):
    """Fires when *all* child events have fired.

    The value is a dict mapping each child event to its value.  If any child
    fails, the condition fails with that child's exception.
    """

    def __init__(self, sim: "Simulator", events: Sequence[Event], name: Optional[str] = None) -> None:
        super().__init__(sim, events, name or f"AllOf({len(list(events))})")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Fires when *any* child event has fired (with that child's outcome)."""

    def __init__(self, sim: "Simulator", events: Sequence[Event], name: Optional[str] = None) -> None:
        super().__init__(sim, events, name or f"AnyOf({len(list(events))})")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed({event: event.value})
        else:
            self.fail(event.value)
