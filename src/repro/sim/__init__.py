"""Discrete-event simulation kernel.

The paper's model is an asynchronous distributed system: processes connected
by point-to-point channels, with no global clock, exchanging one-sided memory
operations.  We do not have a physical cluster, so this package provides the
execution substrate: a deterministic discrete-event simulator in the style of
SimPy, on which the network (:mod:`repro.net`), the memory system
(:mod:`repro.memory`) and the PGAS runtime (:mod:`repro.runtime`) are built.

Determinism matters: a fixed seed yields one legal interleaving of the
distributed execution; different seeds perturb message latencies and therefore
produce *different* legal interleavings, which is exactly how the ground-truth
oracle in :mod:`repro.detectors.ground_truth` decides whether a set of
accesses truly constitutes a race (the computation's outcome differs between
executions).
"""

from repro.sim.events import (
    Event,
    Timeout,
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
)
from repro.sim.process import Process, ProcessState
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Process",
    "ProcessState",
    "Simulator",
    "RandomStreams",
]
