"""The discrete-event simulation engine.

:class:`Simulator` owns the event calendar (a binary heap keyed on
``(time, sequence)``) and the simulated clock.  Components schedule
:class:`~repro.sim.events.Event` objects; the engine pops them in time order
and runs their callbacks.  Ties are broken by insertion order so that a run is
a pure function of the seed and the program — a property the tests rely on.

A :dfn:`schedule controller` (see :mod:`repro.explore.controller`) may be
installed with :meth:`Simulator.install_controller` *before* the run starts.
The controller then owns the engine's one scheduling choice point — which of
several events ready at the same simulated time runs first — and, through the
network layer's latency hook, every message-delivery timing choice.  With no
controller installed the engine behaves exactly as before (insertion-order
ties), so ordinary runs pay a single attribute check per step.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.obs.observability import Observability
from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.util.logging import SimLogger
from repro.util.validation import require_non_negative


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for all random streams used by attached components (latency
        models, workload generators).  Two simulators with the same seed and
        the same program produce byte-identical traces.
    logger:
        Optional :class:`~repro.util.logging.SimLogger`; a fresh one is
        created when omitted.
    """

    def __init__(self, seed: Optional[int] = 0, logger: Optional[SimLogger] = None) -> None:
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._processes: List[Process] = []
        self._failures: List[Tuple[Process, BaseException]] = []
        self._events_processed = 0
        #: Optional schedule controller owning nondeterministic choice points
        #: (see :meth:`install_controller`); ``None`` means default behaviour.
        self.controller = None
        self.rng = RandomStreams(seed)
        # Note: an empty SimLogger is falsy (len == 0), so test for None explicitly.
        self.logger = logger if logger is not None else SimLogger()
        self.logger.bind_clock(lambda: self._now)
        #: The observability bundle (metrics registry, span tracer, detection
        #: profiler) every attached component records into.  Always present;
        #: metrics collection is unconditional, span tracing is opt-in.
        self.obs = Observability()

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been executed so far."""
        return self._events_processed

    # -- event construction --------------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create a pending event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: Optional[str] = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        require_non_negative(delay, "delay")
        return Timeout(self, delay, value=value, name=name)

    def all_of(self, events: Sequence[Event], name: Optional[str] = None) -> AllOf:
        """Create an event that fires when all of *events* have fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Sequence[Event], name: Optional[str] = None) -> AnyOf:
        """Create an event that fires when any of *events* has fired."""
        return AnyOf(self, events, name=name)

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        """Register *generator* as a simulated process and start it at ``now``."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def call_at(self, time: float, callback: Callable[[], None], name: Optional[str] = None) -> Event:
        """Run *callback* (a plain callable) at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule callback in the past: {time} < now={self._now}"
            )
        event = Event(self, name=name or "call_at")
        event.callbacks.append(lambda _ev: callback())
        self._push(time, event)
        event._triggered = True
        event._ok = True
        return event

    def call_after(self, delay: float, callback: Callable[[], None], name: Optional[str] = None) -> Event:
        """Run *callback* after *delay* time units."""
        require_non_negative(delay, "delay")
        return self.call_at(self._now + delay, callback, name=name)

    # -- schedule control ------------------------------------------------------

    def install_controller(self, controller: Any) -> None:
        """Install a schedule controller owning this run's choice points.

        The *controller* must provide ``pick_next(queue)`` (called by
        :meth:`step` with the live event heap; must pop and return one
        ``(time, sequence, event)`` entry) and ``on_message_latency(...)``
        (called by the network layer).  At most one controller per simulator,
        installed before any event is processed — a schedule is only
        replayable when every choice point was controlled from the start.
        """
        if self.controller is not None:
            raise SimulationError("a schedule controller is already installed")
        if self._events_processed:
            raise SimulationError(
                "install_controller() must be called before the run starts "
                f"({self._events_processed} events already processed)"
            )
        self.controller = controller
        bind = getattr(controller, "bind", None)
        if bind is not None:
            bind(self)

    # -- scheduling internals ------------------------------------------------

    def _push(self, time: float, event: Event) -> None:
        heapq.heappush(self._queue, (time, self._sequence, event))
        self._sequence += 1

    def _enqueue_triggered(self, event: Event) -> None:
        """Schedule an already-triggered event's callbacks at the current time."""
        self._push(self._now, event)

    def _schedule_timeout(self, timeout: Timeout, delay: float) -> None:
        self._push(self._now + delay, timeout)

    def _record_process_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append((process, exc))

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Return the time of the next scheduled event, or ``inf`` if idle."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        if not self._queue:
            raise SimulationError("step() called on an empty event queue")
        if self.controller is not None:
            time, _seq, event = self.controller.pick_next(self._queue)
        else:
            time, _seq, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError(
                f"event calendar corrupted: popped t={time} < now={self._now}"
            )
        self._now = time
        if isinstance(event, Timeout) and not event.triggered:
            event._auto_trigger()
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()
        for callback in callbacks:
            callback(event)
        self._events_processed += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        raise_process_errors: bool = True,
    ) -> float:
        """Run until the calendar is empty, *until* is reached, or *max_events*.

        Returns the simulated time at which the run stopped.  If any process
        raised an unhandled exception and *raise_process_errors* is true, the
        first such exception is re-raised after the loop stops (so an error in
        rank 3's program fails the test that launched it).
        """
        processed = 0
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if raise_process_errors and self._failures:
            process, exc = self._failures[0]
            raise SimulationError(
                f"process {process.name!r} failed at t={self._now}: {exc!r}"
            ) from exc
        return self._now

    # -- inspection ----------------------------------------------------------

    @property
    def processes(self) -> List[Process]:
        """All processes ever registered with :meth:`process`."""
        return list(self._processes)

    @property
    def failures(self) -> List[Tuple[Process, BaseException]]:
        """(process, exception) pairs for processes that died with an error."""
        return list(self._failures)

    def all_finished(self) -> bool:
        """True when every registered process has run to completion."""
        return all(not p.is_alive for p in self._processes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now} queued={len(self._queue)} "
            f"processes={len(self._processes)}>"
        )
