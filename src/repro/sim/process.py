"""Generator-based simulated processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  When the yielded event triggers, the simulator resumes the generator
with the event's value (or throws the event's exception into it).  This is the
classic SimPy execution model; it lets user programs in
:mod:`repro.runtime.program` express one-sided memory operations as ordinary
sequential code (``value = yield from api.get(x)``).

A process is itself an :class:`Event`: it triggers when the generator returns,
with the generator's return value, so other processes can wait on it (used by
the runtime's barrier/join machinery).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    CREATED = "created"
    RUNNING = "running"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"


class Process(Event):
    """Wraps a generator and steps it through the event loop.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        A generator yielding :class:`Event` instances.
    name:
        Human-readable name (e.g. ``"rank-3"``).
    """

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name or "process")
        self._generator = generator
        self._state = ProcessState.CREATED
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current simulated time.
        start = Event(sim, name=f"{self.name}:start")
        start.callbacks.append(self._resume)
        start.succeed(None)

    # -- inspection ----------------------------------------------------------

    @property
    def state(self) -> ProcessState:
        """Current lifecycle state."""
        return self._state

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently blocked on, if any."""
        return self._waiting_on

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished or failed."""
        return self._state not in (ProcessState.FINISHED, ProcessState.FAILED)

    # -- control -------------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait point.

        Interrupting a finished process is an error; interrupting a process
        that is not currently waiting is deferred until it next yields.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        wakeup = Event(self.sim, name=f"{self.name}:interrupt")
        wakeup.callbacks.append(lambda _ev: self._throw_in(Interrupt(cause)))
        wakeup.succeed(None)

    # -- stepping ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        if not self.is_alive:
            return
        self._waiting_on = None
        self._state = ProcessState.RUNNING
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via the event
            self._fail(exc)
            return
        self._wait_for(target)

    def _throw_in(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._state = ProcessState.RUNNING
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self._fail(raised)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
                )
            )
            return
        self._state = ProcessState.WAITING
        self._waiting_on = target
        if target.triggered:
            # Already fired: resume on the next simulator step at the same time.
            bounce = Event(self.sim, name=f"{self.name}:bounce")
            bounce.callbacks.append(lambda _ev: self._resume(target))
            bounce.succeed(None)
        else:
            target.callbacks.append(self._resume)

    def _finish(self, value: Any) -> None:
        self._state = ProcessState.FINISHED
        self._waiting_on = None
        if not self.triggered:
            self.succeed(value)

    def _fail(self, exc: BaseException) -> None:
        self._state = ProcessState.FAILED
        self._waiting_on = None
        self.sim._record_process_failure(self, exc)
        if not self.triggered:
            self.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {self._state.value}>"
