"""Named, reproducible random streams.

Different components of the simulation (the latency model, each workload
generator, failure injection) must not share a single RNG: consuming a random
number in one component would otherwise perturb every other component and make
seeds fragile.  :class:`RandomStreams` derives an independent
:class:`numpy.random.Generator` per *named* stream from a single root seed
using NumPy's ``SeedSequence.spawn`` machinery, so

* the same root seed always yields the same per-stream sequences, and
* adding a new stream never changes existing streams' draws.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class RandomStreams:
    """A registry of named, independently seeded NumPy generators."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*.

        The generator for a given ``(root seed, name)`` pair is always the
        same sequence, regardless of creation order of other streams.
        """
        if not isinstance(name, str) or not name:
            raise TypeError(f"stream name must be a non-empty string, got {name!r}")
        if name not in self._streams:
            # Derive a child seed deterministically from (root, name): hash the
            # name into integers and fold them into a child SeedSequence.
            name_words = [ord(c) for c in name]
            child = np.random.SeedSequence(
                entropy=self._root.entropy if self._root.entropy is not None else 0,
                spawn_key=tuple(name_words),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw one uniform sample in ``[low, high)`` from stream *name*."""
        if high < low:
            raise ValueError(f"uniform bounds reversed: [{low}, {high})")
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential sample with the given *mean* from stream *name*."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)`` from stream *name*."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, options):
        """Pick one element of *options* uniformly from stream *name*."""
        options = list(options)
        if not options:
            raise ValueError("choice() requires a non-empty sequence")
        index = int(self.stream(name).integers(0, len(options)))
        return options[index]

    def names(self):
        """Return the names of streams created so far."""
        return sorted(self._streams)
