"""The DSM runtime: construction, launch and results.

:class:`DSMRuntime` assembles the whole simulated machine described by the
paper — processes, private/public memories, NICs, the interconnect, the symbol
directory, the race detector and the tracer — runs the per-rank programs to
completion, and returns a :class:`RunResult` containing everything the
examples, tests and benchmarks inspect: the race report, the trace, message
and overhead statistics, and the final contents of shared memory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Union

from repro.core.detector import DetectorConfig, DualClockRaceDetector
from repro.core.races import RaceRecord, RaceReport, SignalPolicy
from repro.memory.address import GlobalAddress
from repro.memory.consistency import SequentialConsistencyChecker
from repro.memory.directory import PlacementPolicy, SymbolDirectory
from repro.memory.locks import MemoryLockTable
from repro.memory.private import PrivateMemory
from repro.memory.public import PublicMemory
from repro.net.clock_transport import (
    ClockTransportStats,
    validate_clock_transport,
    validate_clock_wire,
    validate_clock_wire_resync,
)
from repro.net.fabric import Fabric, FabricStats
from repro.net.flow_control import validate_flow_control
from repro.net.latency import ConstantLatency, LatencyModel, LogGPLatency, UniformLatency
from repro.net.nic import NIC, NICConfig
from repro.net.topology import Topology
from repro.net.ud_transport import validate_transport
from repro.runtime.api import ProcessAPI
from repro.runtime.collectives import Barrier
from repro.runtime.program import ProcessProgram, ProgramFunction, replicate_program
from repro.sim.engine import Simulator
from repro.trace.events import TraceSummary
from repro.trace.recorder import TraceRecorder
from repro.util.logging import SimLogger
from repro.util.validation import require_positive
from repro.verbs.completion_queue import validate_cq_moderation_timer
from repro.verbs.context import VerbsContext


@dataclass
class RuntimeConfig:
    """Configuration of one simulated DSM machine.

    Attributes
    ----------
    world_size:
        Number of processes.  The paper targets debugging-scale runs
        ("typically, about 10 processes", Section V-A).
    public_memory_cells:
        Size of each rank's public memory segment, in cells.
    seed:
        Root seed; controls every random stream (latency jitter, workloads).
    topology:
        Name of a built-in topology (``"complete"``, ``"ring"``, ``"star"``,
        ``"mesh"``, ``"torus"``, ``"hypercube"``) or a :class:`Topology`.
    latency:
        ``"constant"``, ``"uniform"``, ``"loggp"`` or a :class:`LatencyModel`.
    latency_scale:
        Multiplier applied to the default parameters of the named models.
    detector:
        The race-detector configuration (set ``detector.enabled = False`` for
        an uninstrumented run).
    nic:
        NIC behaviour (lock and clock message charging).
    clock_transport:
        How causal clocks travel with verbs traffic (see
        :mod:`repro.net.clock_transport`): ``"roundtrip"`` charges
        Algorithm 5's explicit CLOCK_FETCH/CLOCK_UPDATE pair per
        instrumented remote access; ``"piggyback"`` rides the clock on the
        data messages themselves (no dedicated clock traffic, a vector
        clock of extra payload per data message) and batches origin-side
        clock joins per queue-pair drain.  Detector verdicts are identical
        in both modes; only traffic and join counts differ.  ``None`` (the
        default) follows ``nic.clock_transport`` — effectively
        ``"roundtrip"`` unless the NIC config names a mode; naming
        *conflicting* modes here and on the NIC config is an error.
    clock_wire:
        How each clock is encoded when it crosses the wire (see
        :mod:`repro.net.clock_transport`): ``"full"`` ships the whole
        vector per rider (``world_size × 8`` bytes — linear in world size),
        ``"delta"`` ships per-channel increments of the components that
        changed since the last clock on that channel, ``"truncated"``
        ships their absolute values; both sparse formats resync with a
        full frame every ``clock_wire_resync`` messages.  Every format
        decodes to the exact clock (verified on every frame), so detector
        verdicts never depend on this knob — only bytes do.  ``None``
        (the default) follows ``nic.clock_wire``; naming *conflicting*
        formats here and on the NIC config is an error.
    clock_wire_resync:
        Channel messages between full-clock resync frames under the sparse
        wire formats: a positive count for a fixed cadence, or
        ``"adaptive"`` to let each directed channel tune its own period
        from the realized sparse/full byte ratio (doubling when sparse
        frames stay cheap, halving when they bloat; see
        :mod:`repro.net.clock_transport`).  Every format decodes to the
        exact clock regardless of cadence, so verdicts never depend on
        this knob.  ``None`` keeps ``nic.clock_wire_resync``.
    transport:
        The service level clock-carrying data messages ride on (see
        :mod:`repro.net.ud_transport`): ``"rc"`` (reliable connected —
        per-pair FIFO delivery, no loss; the paper's implicit model) or
        ``"ud"`` (unreliable datagrams — each data message becomes a
        sequence-numbered datagram the explored schedule may drop,
        duplicate or reorder, with receiver-driven clock resync repairing
        sequence gaps so a stale clock is never stamped).  Detector
        verdicts never depend on this knob — only traffic, latency and
        resync accounting do.  ``None`` (the default) follows
        ``nic.transport``; naming *conflicting* modes here and on the NIC
        config is an error.
    detector_epochs:
        The FastTrack-style epoch fast path of the detector (see
        ``DetectorConfig.epochs``): ``"on"`` replaces full O(n) vector
        compares with O(1) ``(rank, scalar)`` epoch probes wherever the
        per-datum clock carries a valid annotation, falling back to the
        full path on genuine read-share; ``"off"`` always runs the full
        vector compares.  Verdicts, clock contents, metrics, and join
        counts are identical in both modes — only ``compares`` vs
        ``epoch_hits`` in the detection profile differ.  ``None`` (the
        default) follows the ``REPRO_DETECTOR_EPOCHS`` environment
        variable if set, else ``detector.epochs`` (on).
    cq_moderation:
        Completion coalescing: when true, each queue pair drain delivers
        its burst of work completions as ONE CQE event (as real NICs do
        with CQ moderation), and the batched retirement clock the event
        carries is charged once per burst instead of once per completion.
        Consumer semantics (wait/wait_all/poll, backpressure, event
        channels) are unchanged, so verdicts cannot depend on it; only the
        completion-traffic accounting and CQ visibility timing do.
    cq_moderation_timer:
        InfiniBand-style ``(cq_count, cq_usec)`` interrupt moderation of
        each rank's send CQ (see
        :class:`~repro.verbs.completion_queue.CqModerationTimer`):
        completions accumulate and flush as one CQE event on whichever
        bound trips first — the count, or a timer armed when the batch
        opened.  Coalesces *across* drain bursts (unlike ``cq_moderation``)
        and bounds the added retirement latency by ``cq_usec``.  Takes
        precedence over ``cq_moderation`` when both are set.  ``None``
        (the default) disables the timer.
    flow_control:
        Admission protocol for two-sided SENDs: ``"rnr"`` (the default RC
        retry protocol — transmit, discover the empty receive queue, back
        off, retransmit) or ``"credit"`` (claim a posted receive buffer
        *before* transmitting and stall locally until one is granted, so
        every payload crosses the wire exactly once and no RNR traffic
        exists).  Both protocols admit sends in the same FIFO order, so
        detector verdicts are byte-identical; only message counts, RNR
        retries and stall accounting differ.  See
        :mod:`repro.net.flow_control`.
    signal_policy:
        What to do when a race is signalled (collect / warn / abort).
    trace_values:
        Whether the trace keeps the transferred values (turn off for very
        large scalability runs).
    trace_spans:
        Record sim-time spans (WR post→retire, drain bursts, lock waits,
        barrier fan-in) on ``sim.obs.spans`` for Chrome trace-event export
        (``python -m repro.obs export-trace``).  Off by default: tracing is
        observe-only and cannot change verdicts, but it allocates.
    obs_wall_clock:
        Additionally record host wall time on spans and in the detection
        profiler.  Off by default because wall time is nondeterministic and
        would break byte-identical artifacts.
    echo_log:
        Print structured log records as they are emitted.
    verbs_cq_capacity:
        Capacity of each rank's default completion queues (``None`` =
        unbounded); a bounded queue overflows when completions outpace
        retirement, as on real hardware.
    verbs_max_send_wr:
        Send-queue depth of each queue pair (posting beyond it raises
        :class:`~repro.verbs.queue_pair.SendQueueFull`).
    verbs_max_recv_wr:
        Receive-queue depth of each queue pair and the default SRQ depth
        (posting beyond it raises
        :class:`~repro.verbs.receive_queue.ReceiveQueueFull`).
    verbs_rnr_backoff:
        Simulated time a SEND waits before retransmitting after finding the
        target's receive queue empty (the RNR timer).
    verbs_rnr_retry_limit:
        RNR retries before a SEND fails with an RNR_RETRY_EXCEEDED
        completion; ``None`` retries forever (the InfiniBand ``rnr_retry=7``
        encoding).
    verbs_backpressure:
        What a throttled post does when the send queue is full:
        ``"raise"`` (default) raises
        :class:`~repro.verbs.queue_pair.SendQueueFull` at the post site;
        ``"block"`` yields the posting process until a completion frees a
        slot (the blocking-post mode of many runtime libraries, which keeps
        saturation benchmarks free of exception plumbing).  Applies to the
        ``*_throttled`` posting surface; the plain ``iput``/``isend`` posts
        always raise, since they cannot yield.
    """

    world_size: int = 4
    public_memory_cells: int = 256
    seed: int = 0
    topology: Union[str, Topology] = "complete"
    latency: Union[str, LatencyModel] = "constant"
    latency_scale: float = 1.0
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    nic: NICConfig = field(default_factory=NICConfig)
    clock_transport: Optional[str] = None
    clock_wire: Optional[str] = None
    clock_wire_resync: Optional[Union[int, str]] = None
    transport: Optional[str] = None
    detector_epochs: Optional[str] = None
    cq_moderation: bool = False
    cq_moderation_timer: Optional[Any] = None
    flow_control: str = "rnr"
    signal_policy: SignalPolicy = SignalPolicy.COLLECT
    trace_values: bool = True
    trace_spans: bool = False
    obs_wall_clock: bool = False
    echo_log: bool = False
    verbs_cq_capacity: Optional[int] = None
    verbs_max_send_wr: int = 128
    verbs_max_recv_wr: int = 128
    verbs_rnr_backoff: float = 1.0
    verbs_rnr_retry_limit: Optional[int] = None
    verbs_backpressure: str = "raise"

    def with_overrides(self, **kwargs: Any) -> "RuntimeConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class RunResult:
    """Everything a completed run exposes for inspection."""

    config: RuntimeConfig
    races: RaceReport
    trace_summary: TraceSummary
    fabric_stats: FabricStats
    elapsed_sim_time: float
    detection_control_messages: int
    detection_clock_bytes: int
    clock_storage_entries: int
    final_shared_values: Dict[str, List[Any]]
    per_rank_private: Dict[int, Dict[str, Any]]
    #: Which clock transport the run used (``"roundtrip"`` / ``"piggyback"``).
    clock_transport: str = "roundtrip"
    #: Whole-machine clock-transport accounting (round trips charged,
    #: piggybacked clocks, wire frames, completion events, retirement joins
    #: performed/elided).
    clock_transport_stats: Dict[str, int] = field(default_factory=dict)
    #: Which clock wire format sized the riders (``full``/``delta``/``truncated``).
    clock_wire: str = "full"
    #: Whether completion coalescing (one CQE per drain burst) was active.
    cq_moderation: bool = False
    #: The ``(cq_count, cq_usec)`` moderation timer, if one was active.
    cq_moderation_timer: Optional[Any] = None
    #: Which two-sided admission protocol the run used (``"rnr"``/``"credit"``).
    flow_control: str = "rnr"
    #: The clock-wire resync cadence (message count or ``"adaptive"``).
    clock_wire_resync: Union[int, str] = 64
    #: Which service level data messages rode on (``"rc"``/``"ud"``).
    transport: str = "rc"
    #: Whether the detector's epoch fast path was active (``"on"``/``"off"``).
    detector_epochs: str = "on"
    #: Canonical metric snapshot of the run (``sim.obs.metrics``): every
    #: counter/gauge/histogram keyed ``name{label=value,...}``, sorted.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Detection hot-path costs per check type (``read_live`` ... ``rmw_carried``),
    #: each with checks/compares/joins counts (``sim.obs.profiler``).
    detection_profile: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def race_count(self) -> int:
        """Number of race signals emitted during the run."""
        return len(self.races)

    @property
    def distinct_race_count(self) -> int:
        """Number of distinct races after deduplication."""
        return len(self.races.distinct())

    def race_records(self) -> List[RaceRecord]:
        """All race records."""
        return self.races.records()

    def shared_value(self, symbol: str, index: int = 0) -> Any:
        """Final value of ``symbol[index]``."""
        return self.final_shared_values[symbol][index]


class DSMRuntime:
    """Builds and runs one simulated distributed-shared-memory machine."""

    def __init__(self, config: Optional[RuntimeConfig] = None, **overrides: Any) -> None:
        base = config or RuntimeConfig()
        self.config = base.with_overrides(**overrides) if overrides else base
        require_positive(self.config.world_size, "world_size")

        self.logger = SimLogger(echo=self.config.echo_log)
        self.sim = Simulator(seed=self.config.seed, logger=self.logger)
        self.sim.obs.configure(
            trace_spans=self.config.trace_spans,
            wall_clock=self.config.obs_wall_clock,
        )
        self.topology = self._build_topology(self.config.topology, self.config.world_size)
        self.latency_model = self._build_latency(self.config.latency)
        self.fabric = Fabric(self.sim, self.topology, self.latency_model)
        self.recorder = TraceRecorder(self.config.world_size, keep_values=self.config.trace_values)
        self.report = RaceReport(self.config.signal_policy, logger=self.logger)
        self.detector = DualClockRaceDetector(
            self.config.world_size, config=self.config.detector, report=self.report
        )
        self.detector.bind_observability(self.sim.obs)
        self.public_memories: List[PublicMemory] = [
            PublicMemory(rank, self.config.public_memory_cells)
            for rank in range(self.config.world_size)
        ]
        self.private_memories: List[PrivateMemory] = [
            PrivateMemory(rank) for rank in range(self.config.world_size)
        ]
        self.lock_tables: List[MemoryLockTable] = [
            MemoryLockTable(self.sim, rank) for rank in range(self.config.world_size)
        ]
        self.directory = SymbolDirectory(self.public_memories)
        self.nics: List[NIC] = [
            NIC(
                self.sim,
                rank,
                self.fabric,
                self.public_memories[rank],
                self.lock_tables[rank],
                detector=self.detector,
                config=self.config.nic,
                recorder=self.recorder,
            )
            for rank in range(self.config.world_size)
        ]
        for nic in self.nics:
            for peer in self.nics:
                if peer is not nic:
                    nic.register_peer(peer)
        self.verbs_contexts: List[VerbsContext] = [
            VerbsContext(
                self.sim,
                self.nics[rank],
                cq_capacity=self.config.verbs_cq_capacity,
                max_send_wr=self.config.verbs_max_send_wr,
                max_recv_wr=self.config.verbs_max_recv_wr,
                rnr_backoff=self.config.verbs_rnr_backoff,
                rnr_retry_limit=self.config.verbs_rnr_retry_limit,
                backpressure=self.config.verbs_backpressure,
                cq_moderation=self.config.cq_moderation,
                cq_moderation_timer=self.config.cq_moderation_timer,
                flow_control=self.config.flow_control,
            )
            for rank in range(self.config.world_size)
        ]
        for context in self.verbs_contexts:
            for peer in self.verbs_contexts:
                if peer is not context:
                    context.register_peer(peer)
        self.barrier = Barrier(
            self.sim,
            self.config.world_size,
            fabric=self.fabric,
            detector=self.detector,
            charge_messages=True,
            recorder=self.recorder,
        )
        self._programs: Dict[int, ProcessProgram] = {}
        self._apis: Dict[int, ProcessAPI] = {}
        self._initial_values: Dict[GlobalAddress, Any] = {}
        self._ran = False
        self._control_messages_before_piggyback: Optional[int] = None
        # Resolve the two places the transport can be named.  ``None`` on
        # the runtime knob means "follow the NIC config"; naming two
        # *different* modes explicitly is a configuration error, not a
        # precedence puzzle.
        if self.config.clock_transport is None:
            mode = validate_clock_transport(self.config.nic.clock_transport)
        else:
            mode = validate_clock_transport(self.config.clock_transport)
            if (
                self.config.nic.clock_transport != "roundtrip"
                and self.config.nic.clock_transport != mode
            ):
                raise ValueError(
                    f"conflicting clock transports: RuntimeConfig says {mode!r} "
                    f"but NICConfig says {self.config.nic.clock_transport!r}"
                )
        # Route through set_clock_transport so the detector's per-check
        # control accounting matches the mode however it was requested —
        # except for plain roundtrip, where there is nothing to adjust and
        # a user-supplied DetectorConfig must be left exactly as given.
        if mode != "roundtrip":
            self.set_clock_transport(mode)
        else:
            self.config.clock_transport = mode
        # Resolve the clock wire format the same way: ``None`` follows the
        # NIC config; naming two different formats explicitly is an error.
        if self.config.clock_wire is None:
            wire = validate_clock_wire(self.config.nic.clock_wire)
        else:
            wire = validate_clock_wire(self.config.clock_wire)
            if (
                self.config.nic.clock_wire != "full"
                and self.config.nic.clock_wire != wire
            ):
                raise ValueError(
                    f"conflicting clock wire formats: RuntimeConfig says {wire!r} "
                    f"but NICConfig says {self.config.nic.clock_wire!r}"
                )
        self.set_clock_wire(wire)
        # Resolve the transport service level the same way: ``None``
        # follows the NIC config; naming two different modes is an error.
        if self.config.transport is None:
            service = validate_transport(self.config.nic.transport)
        else:
            service = validate_transport(self.config.transport)
            if (
                self.config.nic.transport != "rc"
                and self.config.nic.transport != service
            ):
                raise ValueError(
                    f"conflicting transports: RuntimeConfig says {service!r} "
                    f"but NICConfig says {self.config.nic.transport!r}"
                )
        self.set_transport(service)
        if self.config.clock_wire_resync is not None:
            self.set_clock_wire_resync(self.config.clock_wire_resync)
        else:
            self.config.clock_wire_resync = validate_clock_wire_resync(
                self.config.nic.clock_wire_resync
            )
        # Validate the control-plane knobs even when they arrived through
        # the config rather than a set_* call.
        validate_flow_control(self.config.flow_control)
        self.config.cq_moderation_timer = validate_cq_moderation_timer(
            self.config.cq_moderation_timer
        )
        # Resolve the detector epoch fast path: an explicit runtime knob
        # wins, else the REPRO_DETECTOR_EPOCHS environment variable (the CI
        # matrix leg), else whatever the DetectorConfig already says.
        if self.config.detector_epochs is None:
            env_epochs = os.environ.get("REPRO_DETECTOR_EPOCHS")
            if env_epochs is not None:
                self.set_detector_epochs(env_epochs)
            else:
                self.config.detector_epochs = (
                    "on" if self.config.detector.epochs else "off"
                )
        else:
            self.set_detector_epochs(self.config.detector_epochs)

    # -- clock transport ----------------------------------------------------------------

    def set_clock_transport(self, mode: str) -> None:
        """Select how clocks travel with verbs traffic (before :meth:`run`).

        ``"roundtrip"`` or ``"piggyback"`` — see
        :mod:`repro.net.clock_transport`.  Piggybacking zeroes the
        detector's per-check control-message accounting (the clocks ride on
        messages the application sends anyway, Algorithm 5's dedicated pair
        disappears); switching back restores the previous figure (a custom
        ``control_messages_per_check`` is preserved, not reset).  The
        campaign runner's configure hook uses this to sweep the knob on an
        already-built runtime.
        """
        validate_clock_transport(mode)
        if self._ran:
            raise RuntimeError("set_clock_transport() must be called before run()")
        detector_config = self.config.detector
        if mode == "piggyback":
            if detector_config.control_messages_per_check != 0:
                self._control_messages_before_piggyback = (
                    detector_config.control_messages_per_check
                )
            detector_config.control_messages_per_check = 0
        elif detector_config.control_messages_per_check == 0:
            # Only undo what a previous switch to piggyback zeroed.
            restored = self._control_messages_before_piggyback
            detector_config.control_messages_per_check = (
                restored if restored is not None else 2
            )
        self.config.clock_transport = mode
        self.config.nic.clock_transport = mode

    def set_clock_wire(self, wire_format: str) -> None:
        """Select the clock wire encoding (before :meth:`run`).

        ``"full"``, ``"delta"`` or ``"truncated"`` — see
        :mod:`repro.net.clock_transport`.  Purely a byte-accounting policy:
        every format decodes to the exact clock, so switching it can never
        change a verdict.  The campaign runner's configure hook uses this
        to sweep the knob on an already-built runtime.
        """
        validate_clock_wire(wire_format)
        if self._ran:
            raise RuntimeError("set_clock_wire() must be called before run()")
        self.config.clock_wire = wire_format
        self.config.nic.clock_wire = wire_format

    def set_detector_epochs(self, mode: str) -> None:
        """Enable/disable the detector's epoch fast path (before :meth:`run`).

        ``"on"`` or ``"off"`` — see ``RuntimeConfig.detector_epochs``.  The
        fast path is an exact shortcut (verdicts and clock contents cannot
        depend on it), so the knob exists for the differential harness and
        the CI slow-path matrix leg, not for semantics.  The campaign
        runner's configure hook uses this to sweep the knob on an
        already-built runtime.
        """
        if mode not in ("on", "off"):
            raise ValueError(
                f"detector_epochs must be 'on' or 'off', got {mode!r}"
            )
        if self._ran:
            raise RuntimeError("set_detector_epochs() must be called before run()")
        self.config.detector_epochs = mode
        # The detector shares this config object; no rebuild needed.
        self.config.detector.epochs = mode == "on"

    def set_cq_moderation(self, enabled: bool) -> None:
        """Enable/disable completion coalescing (before :meth:`run`).

        One CQE per queue-pair drain burst instead of one per completion —
        see :class:`RuntimeConfig`.  The campaign runner's configure hook
        uses this to sweep the knob on an already-built runtime.
        """
        if self._ran:
            raise RuntimeError("set_cq_moderation() must be called before run()")
        self.config.cq_moderation = bool(enabled)
        for context in self.verbs_contexts:
            context.cq_moderation = bool(enabled)

    def set_cq_moderation_timer(self, value: Optional[Any]) -> None:
        """Install ``(cq_count, cq_usec)`` CQ moderation (before :meth:`run`).

        ``None`` removes the timer — see ``RuntimeConfig.cq_moderation_timer``
        and :class:`~repro.verbs.completion_queue.CqModerationTimer`.  Pure
        delivery-timing policy: every completion still reaches the CQ and
        every retirement merges the same clock, so verdicts cannot depend on
        it.  The campaign runner's configure hook uses this to sweep the
        knob on an already-built runtime.
        """
        value = validate_cq_moderation_timer(value)
        if self._ran:
            raise RuntimeError(
                "set_cq_moderation_timer() must be called before run()"
            )
        self.config.cq_moderation_timer = value
        for context in self.verbs_contexts:
            context.set_cq_moderation_timer(value)

    def set_flow_control(self, mode: str) -> None:
        """Select the two-sided admission protocol (before :meth:`run`).

        ``"rnr"`` or ``"credit"`` — see ``RuntimeConfig.flow_control`` and
        :mod:`repro.net.flow_control`.  Both protocols admit sends in the
        same FIFO order, so verdicts are byte-identical; only the message
        and retry accounting differ.  The campaign runner's configure hook
        uses this to sweep the knob on an already-built runtime.
        """
        mode = validate_flow_control(mode)
        if self._ran:
            raise RuntimeError("set_flow_control() must be called before run()")
        self.config.flow_control = mode
        for context in self.verbs_contexts:
            context.set_flow_control(mode)

    def set_transport(self, mode: str) -> None:
        """Select the data-message service level (before :meth:`run`).

        ``"rc"`` or ``"ud"`` — see ``RuntimeConfig.transport`` and
        :mod:`repro.net.ud_transport`.  The detector always stamps the
        in-process carried clock, and a gapped or stale UD frame triggers a
        charged receiver resync before the verdict, so switching the
        service level can never change a verdict — only traffic, latency
        and resync accounting.  The campaign runner's configure hook uses
        this to sweep the knob on an already-built runtime.
        """
        mode = validate_transport(mode)
        if self._ran:
            raise RuntimeError("set_transport() must be called before run()")
        self.config.transport = mode
        self.config.nic.transport = mode

    def set_clock_wire_resync(self, value: Union[int, str]) -> None:
        """Set the sparse-wire resync cadence (before :meth:`run`).

        A positive message count, or ``"adaptive"`` for the per-channel
        self-tuning cadence — see ``RuntimeConfig.clock_wire_resync``.
        Purely a byte-accounting policy (every frame decodes to the exact
        clock), so switching it can never change a verdict.  The campaign
        runner's configure hook uses this to sweep the knob on an
        already-built runtime.
        """
        value = validate_clock_wire_resync(value)
        if self._ran:
            raise RuntimeError(
                "set_clock_wire_resync() must be called before run()"
            )
        self.config.clock_wire_resync = value
        self.config.nic.clock_wire_resync = value

    def clock_transport_stats(self) -> ClockTransportStats:
        """Whole-machine clock-transport accounting (summed over ranks)."""
        total = ClockTransportStats()
        for nic in self.nics:
            total.merge(nic.clock_transport.stats)
        return total

    # -- construction helpers -------------------------------------------------------

    @staticmethod
    def _build_topology(spec: Union[str, Topology], world_size: int) -> Topology:
        if isinstance(spec, Topology):
            if spec.world_size != world_size:
                raise ValueError(
                    f"topology covers {spec.world_size} ranks but world_size={world_size}"
                )
            return spec
        name = spec.lower()
        if name == "complete":
            return Topology.complete(world_size)
        if name == "ring":
            return Topology.ring(world_size)
        if name == "star":
            return Topology.star(world_size)
        if name in ("mesh", "torus"):
            rows = int(world_size ** 0.5)
            while rows > 1 and world_size % rows:
                rows -= 1
            cols = world_size // max(rows, 1)
            if rows * cols != world_size:
                rows, cols = 1, world_size
            return Topology.mesh2d(rows, cols, torus=(name == "torus"))
        if name == "hypercube":
            dimension = max(1, (world_size - 1).bit_length())
            if 2 ** dimension != world_size:
                raise ValueError(
                    f"hypercube topology needs a power-of-two world size, got {world_size}"
                )
            return Topology.hypercube(dimension)
        raise ValueError(f"unknown topology {spec!r}")

    def _build_latency(self, spec: Union[str, LatencyModel]) -> LatencyModel:
        if isinstance(spec, LatencyModel):
            return spec
        scale = self.config.latency_scale
        name = spec.lower()
        if name == "constant":
            return ConstantLatency(base=1.0 * scale)
        if name == "uniform":
            return UniformLatency(self.sim.rng, low=0.5 * scale, high=1.5 * scale)
        if name == "loggp":
            return LogGPLatency(
                L=1.0 * scale, o_send=0.3 * scale, o_recv=0.3 * scale, G=0.001 * scale,
                jitter=self.sim.rng, jitter_fraction=0.05,
            )
        raise ValueError(f"unknown latency model {spec!r}")

    # -- shared-data declaration -------------------------------------------------------

    def declare_scalar(self, name: str, owner: Optional[int] = None, initial: Any = None):
        """Declare a shared scalar (see :class:`SymbolDirectory`)."""
        symbol = self.directory.declare_scalar(name, owner=owner, initial=initial)
        if initial is not None:
            self._initial_values[self.directory.resolve(name, 0)] = initial
        return symbol

    def declare_array(
        self,
        name: str,
        length: int,
        policy: PlacementPolicy = PlacementPolicy.BLOCK,
        owner: Optional[int] = None,
        initial: Any = None,
    ):
        """Declare a shared array (see :class:`SymbolDirectory`)."""
        symbol = self.directory.declare_array(
            name, length, policy=policy, owner=owner, initial=initial
        )
        if initial is not None:
            for index in range(length):
                self._initial_values[self.directory.resolve(name, index)] = initial
        return symbol

    # -- program registration ------------------------------------------------------------

    def set_program(self, rank: int, function: ProgramFunction, **kwargs: Any) -> None:
        """Register the program run by *rank*."""
        if not (0 <= rank < self.config.world_size):
            raise ValueError(f"rank {rank} outside world of size {self.config.world_size}")
        self._programs[rank] = ProcessProgram(
            rank=rank, function=function, kwargs=tuple(kwargs.items())
        )

    def set_spmd_program(
        self,
        function: ProgramFunction,
        per_rank_kwargs: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> None:
        """Register the same program for every rank (SPMD)."""
        for program in replicate_program(function, self.config.world_size, per_rank_kwargs):
            self._programs[program.rank] = program

    def api(self, rank: int) -> ProcessAPI:
        """Return (creating if needed) the :class:`ProcessAPI` of *rank*."""
        if rank not in self._apis:
            self._apis[rank] = ProcessAPI(
                rank,
                self.sim,
                self.nics[rank],
                self.directory,
                self.private_memories[rank],
                barrier=self.barrier,
                recorder=self.recorder,
                verbs=self.verbs_contexts[rank],
            )
        return self._apis[rank]

    # -- execution ---------------------------------------------------------------------------

    def run(self, until: Optional[float] = None, check_locks: bool = True) -> RunResult:
        """Launch every registered program and run the simulation to completion."""
        if self._ran:
            raise RuntimeError("DSMRuntime.run() may only be called once per instance")
        if not self._programs:
            raise RuntimeError("no programs registered; call set_program/set_spmd_program first")
        self._ran = True
        self.recorder.set_run_info(
            world_size=self.config.world_size,
            seed=self.config.seed,
            clock_transport=self.config.clock_transport,
            clock_wire=self.config.clock_wire,
            cq_moderation=self.config.cq_moderation,
            detector_epochs=self.config.detector_epochs,
            flow_control=self.config.flow_control,
            cq_moderation_timer=self.config.cq_moderation_timer,
            clock_wire_resync=self.config.clock_wire_resync,
            transport=self.config.transport,
        )
        ranks_without_program = [
            rank for rank in range(self.config.world_size) if rank not in self._programs
        ]
        for program in self._programs.values():
            api = self.api(program.rank)
            self.sim.process(program.launch(api), name=program.display_name)
        self.logger.log(
            "runtime",
            f"launched {len(self._programs)} programs "
            f"({len(ranks_without_program)} idle ranks) on {self.topology.name}",
        )
        elapsed = self.sim.run(until=until)
        if check_locks and until is None:
            for table in self.lock_tables:
                table.assert_quiescent()
        return self._collect_results(elapsed)

    def _collect_results(self, elapsed: float) -> RunResult:
        final_shared: Dict[str, List[Any]] = {}
        for symbol in self.directory.symbols():
            values = []
            for index in range(symbol.length):
                address = self.directory.resolve(symbol.name, index)
                values.append(self.public_memories[address.rank].peek(address))
            final_shared[symbol.name] = values
        per_rank_private = {
            rank: self.private_memories[rank].snapshot()
            for rank in range(self.config.world_size)
        }
        clock_entries = self.detector.clock_storage_entries() + sum(
            memory.clock_storage_entries() for memory in self.public_memories
        )
        return RunResult(
            config=self.config,
            races=self.report,
            trace_summary=self.recorder.summary(),
            fabric_stats=self.fabric.stats,
            elapsed_sim_time=elapsed,
            detection_control_messages=self.detector.control_messages,
            detection_clock_bytes=self.detector.clock_bytes_on_wire,
            clock_storage_entries=clock_entries,
            final_shared_values=final_shared,
            per_rank_private=per_rank_private,
            clock_transport=self.config.clock_transport,
            clock_transport_stats=self.clock_transport_stats().as_dict(),
            clock_wire=self.config.clock_wire,
            cq_moderation=self.config.cq_moderation,
            cq_moderation_timer=self.config.cq_moderation_timer,
            flow_control=self.config.flow_control,
            clock_wire_resync=self.config.clock_wire_resync,
            transport=self.config.transport,
            detector_epochs=self.config.detector_epochs,
            metrics=self.sim.obs.metrics.snapshot(),
            detection_profile=self.sim.obs.profiler.snapshot(),
        )

    # -- post-run helpers -----------------------------------------------------------------------

    def consistency_check(self) -> List[str]:
        """Run the sequential-consistency reference checker over the trace."""
        checker = SequentialConsistencyChecker(self._initial_values)
        return checker.check(self.recorder.accesses())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DSMRuntime n={self.config.world_size} topology={self.topology.name} "
            f"detection={'on' if self.config.detector.enabled else 'off'}>"
        )
