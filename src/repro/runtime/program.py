"""Program descriptors for per-rank simulated processes.

A *program* is any callable that takes a :class:`~repro.runtime.api.ProcessAPI`
and returns a generator (typically by being a generator function itself).  The
runtime turns each program into a simulated process.  This module provides the
small descriptor class plus a helper for the common SPMD case where every rank
runs the same function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

ProgramFunction = Callable[..., Generator]


@dataclass(frozen=True)
class ProcessProgram:
    """One rank's program.

    Attributes
    ----------
    rank:
        The rank this program runs as.
    function:
        Generator function taking the rank's :class:`ProcessAPI` (and the
        optional keyword arguments below).
    kwargs:
        Extra keyword arguments passed to *function* at launch, so workload
        generators can parameterize a single function per rank.
    name:
        Label used for the simulated process (defaults to ``rank-<n>``).
    """

    rank: int
    function: ProgramFunction
    kwargs: tuple = ()
    name: Optional[str] = None

    def launch(self, api: Any) -> Generator:
        """Instantiate the generator for this rank."""
        return self.function(api, **dict(self.kwargs))

    @property
    def display_name(self) -> str:
        """The process name shown in logs and errors."""
        return self.name or f"rank-{self.rank}"


def replicate_program(
    function: ProgramFunction,
    world_size: int,
    per_rank_kwargs: Optional[Dict[int, Dict[str, Any]]] = None,
) -> List[ProcessProgram]:
    """Build an SPMD program list: every rank runs *function*.

    ``per_rank_kwargs`` lets individual ranks receive different parameters
    (e.g. the master in a master-worker pattern).
    """
    if world_size <= 0:
        raise ValueError(f"world_size must be positive, got {world_size}")
    programs = []
    for rank in range(world_size):
        kwargs = (per_rank_kwargs or {}).get(rank, {})
        programs.append(
            ProcessProgram(rank=rank, function=function, kwargs=tuple(kwargs.items()))
        )
    return programs
