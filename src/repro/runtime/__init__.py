"""The PGAS-style runtime on top of the simulated hardware.

The paper assumes programs are written in a parallel language (UPC, Titanium,
Co-Array Fortran) whose compiler and run-time environment translate shared
accesses into remote memory operations.  This package is that run-time
environment:

* :class:`~repro.runtime.api.ProcessAPI` — the handle a per-rank program uses
  to access shared data (``put``/``get`` by symbolic name, local compute,
  barriers, notifications, one-sided reductions);
* :mod:`repro.runtime.collectives` — synchronization and collective patterns
  built *only* from the model's primitives (one-sided operations and
  notifications), including the non-collective one-sided reduction sketched in
  the paper's future work (Section V-B);
* :class:`~repro.runtime.runtime.DSMRuntime` — the launcher that builds the
  simulator, network, memories, NICs, detector and tracer, runs the per-rank
  programs, and returns a :class:`~repro.runtime.runtime.RunResult`.
"""

from repro.runtime.api import ProcessAPI
from repro.runtime.collectives import Barrier, one_sided_reduction, broadcast_via_puts
from repro.runtime.program import ProcessProgram, replicate_program
from repro.runtime.runtime import DSMRuntime, RuntimeConfig, RunResult

__all__ = [
    "ProcessAPI",
    "Barrier",
    "one_sided_reduction",
    "broadcast_via_puts",
    "ProcessProgram",
    "replicate_program",
    "DSMRuntime",
    "RuntimeConfig",
    "RunResult",
]
