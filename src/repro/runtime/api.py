"""The per-rank programming interface.

A user program is a generator function receiving a :class:`ProcessAPI`; every
operation that involves communication or waiting is itself a generator and is
invoked with ``yield from``::

    def program(api):
        yield from api.put("x", api.rank)          # remote write by symbol
        value = yield from api.get("x")            # remote read
        yield from api.compute(5.0)                # local work
        yield from api.barrier()                   # synchronization
        api.private.write("result", value)

The API resolves symbolic names through the
:class:`~repro.memory.directory.SymbolDirectory` (the paper's "compiler") and
routes the access through the origin NIC: remote targets become RDMA
operations, targets owned by the calling rank become local public-memory
accesses — the paper makes no semantic distinction between the two
(Section III-A), and neither does the detector.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.memory.address import GlobalAddress
from repro.memory.directory import SymbolDirectory
from repro.memory.private import PrivateMemory
from repro.net.nic import NIC, RemoteOperationResult
from repro.runtime.collectives import Barrier, one_sided_reduction
from repro.sim.engine import Simulator
from repro.util.validation import require_non_negative


class ProcessAPI:
    """Handle through which one rank's program touches the DSM."""

    def __init__(
        self,
        rank: int,
        sim: Simulator,
        nic: NIC,
        directory: SymbolDirectory,
        private: PrivateMemory,
        barrier: Optional[Barrier] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        self.rank = rank
        self._sim = sim
        self._nic = nic
        self._directory = directory
        self.private = private
        self._barrier = barrier
        self._recorder = recorder
        self._operation_results: List[RemoteOperationResult] = []

    # -- introspection -----------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Number of ranks in the application."""
        return self._directory.world_size

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._sim.now

    @property
    def nic(self) -> NIC:
        """The rank's NIC (exposed for advanced workloads and tests)."""
        return self._nic

    @property
    def directory(self) -> SymbolDirectory:
        """The shared-symbol directory."""
        return self._directory

    def operation_results(self) -> List[RemoteOperationResult]:
        """All one-sided operations this rank has completed, in order."""
        return list(self._operation_results)

    def owner_of(self, symbol: str, index: int = 0) -> int:
        """Rank that physically holds ``symbol[index]``."""
        return self._directory.owner_of(symbol, index)

    def address_of(self, symbol: str, index: int = 0) -> GlobalAddress:
        """Global address of ``symbol[index]``."""
        return self._directory.resolve(symbol, index)

    # -- shared-memory operations ----------------------------------------------------

    def _finish(self, result: RemoteOperationResult, symbol: Optional[str]) -> RemoteOperationResult:
        self._operation_results.append(result)
        if self._recorder is not None:
            self._recorder.record_operation(result, symbol=symbol)
        return result

    def put(self, symbol: str, value: Any, index: int = 0) -> Generator:
        """Write *value* into shared ``symbol[index]`` (one-sided put).

        Returns the :class:`RemoteOperationResult`.
        """
        address = self._directory.resolve(symbol, index)
        return self.put_address(address, value, symbol=symbol)

    def put_address(
        self, address: GlobalAddress, value: Any, symbol: Optional[str] = None
    ) -> Generator:
        """Write *value* at an explicit global address."""
        if address.rank == self.rank:
            result = yield from self._nic.local_write(address, value, symbol=symbol)
        else:
            result = yield from self._nic.rdma_put(value, address, symbol=symbol)
        return self._finish(result, symbol)

    def get(self, symbol: str, index: int = 0) -> Generator:
        """Read shared ``symbol[index]`` (one-sided get); returns the value."""
        address = self._directory.resolve(symbol, index)
        value = yield from self.get_address(address, symbol=symbol)
        return value

    def get_address(self, address: GlobalAddress, symbol: Optional[str] = None) -> Generator:
        """Read the value at an explicit global address; returns the value."""
        if address.rank == self.rank:
            result = yield from self._nic.local_read(address, symbol=symbol)
        else:
            result = yield from self._nic.rdma_get(address, symbol=symbol)
        self._finish(result, symbol)
        return result.value

    def get_result(self, symbol: str, index: int = 0) -> Generator:
        """Like :meth:`get` but returns the full :class:`RemoteOperationResult`."""
        address = self._directory.resolve(symbol, index)
        if address.rank == self.rank:
            result = yield from self._nic.local_read(address, symbol=symbol)
        else:
            result = yield from self._nic.rdma_get(address, symbol=symbol)
        return self._finish(result, symbol)

    def copy_shared(
        self, source_symbol: str, source_index: int, dest_symbol: str, dest_index: int
    ) -> Generator:
        """Copy one shared cell to another ("communication within the public space").

        Implemented as a get followed by a put, which is how a run-time
        library would realize it with RDMA verbs.
        """
        value = yield from self.get(source_symbol, index=source_index)
        result = yield from self.put(dest_symbol, value, index=dest_index)
        return result

    # -- local behaviour ----------------------------------------------------------------

    def compute(self, duration: float) -> Generator:
        """Model *duration* units of purely local computation."""
        require_non_negative(duration, "duration")
        yield self._sim.timeout(duration, name=f"compute-P{self.rank}")
        return duration

    def barrier(self) -> Generator:
        """Cross the global barrier (a synchronization / happens-before edge)."""
        if self._barrier is None:
            raise RuntimeError("this runtime was built without a barrier")
        generation = yield from self._barrier.wait(self.rank)
        return generation

    def notify(self, destination: int, payload: Any = None) -> Generator:
        """Send a runtime notification message to *destination*."""
        message = yield from self._nic.send_notification(destination, payload)
        return message

    def log(self, message: str) -> None:
        """Emit a structured log line tagged with this rank."""
        self._sim.logger.log("app", message, rank=self.rank)

    # -- composite patterns ----------------------------------------------------------------

    def reduce_shared(
        self,
        symbol: str,
        length: int,
        operator: Callable[[Any, Any], Any] = lambda a, b: a + b,
        initial: Any = 0,
    ) -> Generator:
        """One-sided reduction over shared array *symbol* (paper, Section V-B)."""
        value = yield from one_sided_reduction(self, symbol, length, operator, initial)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessAPI rank={self.rank}/{self.world_size}>"
