"""The per-rank programming interface.

A user program is a generator function receiving a :class:`ProcessAPI`; every
operation that involves communication or waiting is itself a generator and is
invoked with ``yield from``::

    def program(api):
        yield from api.put("x", api.rank)          # remote write by symbol
        value = yield from api.get("x")            # remote read
        yield from api.compute(5.0)                # local work
        yield from api.barrier()                   # synchronization
        api.private.write("result", value)

Blocking operations suspend the program for the whole round trip.  The
nonblocking (verbs) surface posts instead and retires later, so computation
overlaps communication, and adds the one-sided atomics::

    def overlapped(api):
        left = api.iput("halo", 1.0, index=0)      # posts, returns immediately
        right = api.iput("halo", 2.0, index=1)
        yield from api.compute(5.0)                # overlaps both puts
        yield from api.wait(left, right)           # retire the completions
        old = yield from api.fetch_add("counter")  # atomic read-modify-write

The two-sided (SEND/RECV) surface adds receiver-directed delivery: the
receiver posts buffers (per-source with :meth:`ProcessAPI.irecv`, or to a
shared receive queue with :meth:`ProcessAPI.post_srq_recv`), the sender
:meth:`ProcessAPI.isend`\\ s a multi-cell payload naming only the peer, and
matching is FIFO::

    def receiver(api):
        api.irecv(source=0, symbol="inbox", indices=range(4))  # scatter list
        (message,) = yield from api.wait_recv(1)               # blocking retire
        use(message.value)                                     # the payload

    def sender(api):
        request = api.isend(1, [10, 20, 30, 40])   # lands where P1 said
        yield from api.wait(request)

The API resolves symbolic names through the
:class:`~repro.memory.directory.SymbolDirectory` (the paper's "compiler") and
routes the access through the origin NIC: remote targets become RDMA
operations, targets owned by the calling rank become local public-memory
accesses — the paper makes no semantic distinction between the two
(Section III-A), and neither does the detector.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence, Union

from repro.memory.address import GlobalAddress
from repro.memory.directory import SymbolDirectory
from repro.memory.private import PrivateMemory
from repro.net.nic import NIC, RemoteOperationResult
from repro.runtime.collectives import Barrier, one_sided_reduction
from repro.sim.engine import Simulator
from repro.util.validation import require_non_negative
from repro.verbs.context import VerbsContext
from repro.verbs.memory_registration import RemoteAccessError
from repro.verbs.receive_queue import ReceiveWorkRequest, SharedReceiveQueue
from repro.verbs.work import (
    CompletionError,
    CompletionStatus,
    WorkCompletion,
    WorkRequest,
)


class ProcessAPI:
    """Handle through which one rank's program touches the DSM."""

    def __init__(
        self,
        rank: int,
        sim: Simulator,
        nic: NIC,
        directory: SymbolDirectory,
        private: PrivateMemory,
        barrier: Optional[Barrier] = None,
        recorder: Optional[Any] = None,
        verbs: Optional[VerbsContext] = None,
    ) -> None:
        self.rank = rank
        self._sim = sim
        self._nic = nic
        self._directory = directory
        self.private = private
        self._barrier = barrier
        self._recorder = recorder
        self._verbs = verbs
        self._operation_results: List[RemoteOperationResult] = []

    # -- introspection -----------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Number of ranks in the application."""
        return self._directory.world_size

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._sim.now

    @property
    def nic(self) -> NIC:
        """The rank's NIC (exposed for advanced workloads and tests)."""
        return self._nic

    @property
    def directory(self) -> SymbolDirectory:
        """The shared-symbol directory."""
        return self._directory

    def operation_results(self) -> List[RemoteOperationResult]:
        """All one-sided operations this rank has completed, in order."""
        return list(self._operation_results)

    def clock_transport_stats(self) -> dict:
        """This rank's clock-traffic accounting, as a flat dictionary.

        The per-rank slice of ``RunResult.clock_transport_stats``: round
        trips charged, piggybacked riders and their wire-format bytes,
        completion events (coalesced or not), and retirement joins.  Useful
        inside a program to observe how the ``clock_transport`` /
        ``clock_wire`` / ``cq_moderation`` knobs change what this rank pays.
        """
        return self._nic.clock_transport.stats.as_dict()

    def metrics(self) -> dict:
        """This rank's slice of the run's metric snapshot.

        Every instrument in ``sim.obs.metrics`` whose labels include
        ``rank=<this rank>`` — NIC operation counters, clock-transport
        accounting, queue occupancy — keyed ``name{label=value,...}`` and
        sorted, exactly as in ``RunResult.metrics``.  Useful inside a
        program to observe what this rank has paid so far.
        """
        from repro.obs.observability import Observability

        return Observability.of(self._sim).metrics.snapshot_for_rank(self.rank)

    def owner_of(self, symbol: str, index: int = 0) -> int:
        """Rank that physically holds ``symbol[index]``."""
        return self._directory.owner_of(symbol, index)

    def address_of(self, symbol: str, index: int = 0) -> GlobalAddress:
        """Global address of ``symbol[index]``."""
        return self._directory.resolve(symbol, index)

    # -- shared-memory operations ----------------------------------------------------

    def _finish(self, result: RemoteOperationResult, symbol: Optional[str]) -> RemoteOperationResult:
        self._operation_results.append(result)
        if self._recorder is not None:
            self._recorder.record_operation(result, symbol=symbol)
        return result

    def put(self, symbol: str, value: Any, index: int = 0) -> Generator:
        """Write *value* into shared ``symbol[index]`` (one-sided put).

        Returns the :class:`RemoteOperationResult`.
        """
        address = self._directory.resolve(symbol, index)
        return self.put_address(address, value, symbol=symbol)

    def put_address(
        self, address: GlobalAddress, value: Any, symbol: Optional[str] = None
    ) -> Generator:
        """Write *value* at an explicit global address."""
        if address.rank == self.rank:
            result = yield from self._nic.local_write(address, value, symbol=symbol)
        else:
            result = yield from self._nic.rdma_put(value, address, symbol=symbol)
        return self._finish(result, symbol)

    def get(self, symbol: str, index: int = 0) -> Generator:
        """Read shared ``symbol[index]`` (one-sided get); returns the value."""
        address = self._directory.resolve(symbol, index)
        value = yield from self.get_address(address, symbol=symbol)
        return value

    def get_address(self, address: GlobalAddress, symbol: Optional[str] = None) -> Generator:
        """Read the value at an explicit global address; returns the value."""
        if address.rank == self.rank:
            result = yield from self._nic.local_read(address, symbol=symbol)
        else:
            result = yield from self._nic.rdma_get(address, symbol=symbol)
        self._finish(result, symbol)
        return result.value

    def get_result(self, symbol: str, index: int = 0) -> Generator:
        """Like :meth:`get` but returns the full :class:`RemoteOperationResult`."""
        address = self._directory.resolve(symbol, index)
        if address.rank == self.rank:
            result = yield from self._nic.local_read(address, symbol=symbol)
        else:
            result = yield from self._nic.rdma_get(address, symbol=symbol)
        return self._finish(result, symbol)

    def copy_shared(
        self, source_symbol: str, source_index: int, dest_symbol: str, dest_index: int
    ) -> Generator:
        """Copy one shared cell to another ("communication within the public space").

        Implemented as a get followed by a put, which is how a run-time
        library would realize it with RDMA verbs.
        """
        value = yield from self.get(source_symbol, index=source_index)
        result = yield from self.put(dest_symbol, value, index=dest_index)
        return result

    # -- one-sided atomics (blocking) --------------------------------------------------

    def fetch_add(self, symbol: str, amount: Any = 1, index: int = 0) -> Generator:
        """Atomically add *amount* to shared ``symbol[index]``; returns the old value.

        Serviced entirely by the owning NIC under the cell's lock — no
        read-modify-write window exists, so concurrent ``fetch_add`` calls
        never lose updates (unlike the get-then-put idiom of the master/worker
        ticket, which races by construction).
        """
        address = self._directory.resolve(symbol, index)
        result = yield from self._nic.fetch_add(address, amount, symbol=symbol)
        self._finish(result, symbol)
        return result.value

    def compare_and_swap(
        self, symbol: str, expected: Any, desired: Any, index: int = 0
    ) -> Generator:
        """Atomic compare-and-swap on shared ``symbol[index]``.

        Deposits *desired* iff the cell holds *expected*; returns the prior
        value (the swap succeeded iff the returned value equals *expected*).
        """
        address = self._directory.resolve(symbol, index)
        result = yield from self._nic.compare_and_swap(
            address, expected, desired, symbol=symbol
        )
        self._finish(result, symbol)
        return result.value

    # -- nonblocking (verbs) interface --------------------------------------------------

    @property
    def verbs(self) -> VerbsContext:
        """This rank's verbs context (exposed for advanced workloads and tests)."""
        if self._verbs is None:
            raise RuntimeError("this runtime was built without a verbs subsystem")
        return self._verbs

    def iput(self, symbol: str, value: Any, index: int = 0) -> WorkRequest:
        """Post a nonblocking put to shared ``symbol[index]``; returns immediately.

        The returned :class:`~repro.verbs.work.WorkRequest` is retired with
        :meth:`wait` or :meth:`wait_all`; until then the operation proceeds in
        the background while this program keeps computing.

        Posting captures a post-time clock snapshot (the unified
        clock-transport discipline, all opcodes): the NIC checks the access
        with the carried snapshot, and this rank synchronizes with the
        operation's effect only when it retires the completion — so an
        access to the same *remote* cell before waiting is a detectable
        race, under either ``RuntimeConfig.clock_transport`` mode.  (A
        posted operation on this rank's own memory shares the poster's
        clock identity and keeps the pre-existing blind spot — see
        :mod:`repro.verbs.queue_pair`.)
        """
        address = self._directory.resolve(symbol, index)
        return self.verbs.post_put(address, value, symbol=symbol)

    def iget(self, symbol: str, index: int = 0) -> WorkRequest:
        """Post a nonblocking get; the completion's ``value`` is the value read."""
        address = self._directory.resolve(symbol, index)
        return self.verbs.post_get(address, symbol=symbol)

    def ifetch_add(self, symbol: str, amount: Any = 1, index: int = 0) -> WorkRequest:
        """Post a nonblocking fetch-and-add; the completion carries the old value."""
        address = self._directory.resolve(symbol, index)
        return self.verbs.post_fetch_add(address, amount, symbol=symbol)

    def icompare_and_swap(
        self, symbol: str, expected: Any, desired: Any, index: int = 0
    ) -> WorkRequest:
        """Post a nonblocking compare-and-swap; the completion carries the old value."""
        address = self._directory.resolve(symbol, index)
        return self.verbs.post_compare_and_swap(address, expected, desired, symbol=symbol)

    # -- throttled posting (configurable send backpressure) -------------------------------

    def iput_throttled(self, symbol: str, value: Any, index: int = 0) -> Generator:
        """Post a put under the configured backpressure policy (generator).

        With ``RuntimeConfig.verbs_backpressure="raise"`` this is
        :meth:`iput` (a full send queue raises
        :class:`~repro.verbs.queue_pair.SendQueueFull`); with ``"block"``
        the program yields until a completion frees a slot, then posts —
        the blocking-post mode of many runtime libraries.  Use with
        ``yield from``; returns the posted work request.
        """
        address = self._directory.resolve(symbol, index)
        request = yield from self.verbs.post_put_throttled(address, value, symbol=symbol)
        return request

    def isend_throttled(
        self,
        destination: int,
        values: Union[Any, Sequence[Any]],
        symbol: Optional[str] = None,
    ) -> Generator:
        """Post a two-sided SEND under the configured backpressure policy.

        The blocking-mode counterpart of :meth:`isend`; see
        :meth:`iput_throttled` for the policy semantics.
        """
        payload = list(values) if isinstance(values, (list, tuple)) else [values]
        request = yield from self.verbs.post_send_throttled(
            destination, payload, symbol=symbol
        )
        return request

    # -- two-sided (SEND/RECV) interface --------------------------------------------------

    def _resolve_local_scatter(
        self, symbol: str, indices: Optional[Iterable[int]], index: int
    ) -> List[GlobalAddress]:
        chosen = list(indices) if indices is not None else [index]
        addresses = [self._directory.resolve(symbol, i) for i in chosen]
        for address in addresses:
            if address.rank != self.rank:
                raise ValueError(
                    f"receive buffer cell {symbol}[{address.offset}] lives on rank "
                    f"{address.rank}, not on this rank ({self.rank}); a receive "
                    f"buffer must be the receiver's own memory"
                )
        return addresses

    def isend(
        self,
        destination: int,
        values: Union[Any, Sequence[Any]],
        symbol: Optional[str] = None,
    ) -> WorkRequest:
        """Post a two-sided SEND of *values* to *destination*; returns immediately.

        A scalar is a one-cell payload; a list/tuple is a gathered multi-cell
        payload carried by a single message.  Where it lands is decided by
        the receive buffer *destination* posted (:meth:`irecv` /
        :meth:`post_srq_recv`); matching is FIFO.  Retire the returned
        request with :meth:`wait` / :meth:`wait_all` like any posted work.
        """
        payload = list(values) if isinstance(values, (list, tuple)) else [values]
        return self.verbs.post_send(destination, payload, symbol=symbol)

    def isend_gather(
        self,
        destination: int,
        symbol: str,
        indices: Optional[Iterable[int]] = None,
        index: int = 0,
    ) -> WorkRequest:
        """Post a SEND gathering its payload from this rank's own shared cells.

        The gather reads happen at service time through the NIC (instrumented
        local reads), modelling the DMA gather of a real SGE list.
        """
        addresses = self._resolve_local_scatter(symbol, indices, index)
        return self.verbs.post_send(destination, gather_from=addresses, symbol=symbol)

    def irecv(
        self,
        source: int,
        symbol: str,
        indices: Optional[Iterable[int]] = None,
        index: int = 0,
    ) -> ReceiveWorkRequest:
        """Post a receive buffer for the next unmatched SEND from *source*.

        ``symbol[indices]`` (this rank's own cells) is the scatter list; a
        shorter payload leaves the tail untouched, a longer one is a length
        error.  The buffer is consumed in FIFO order; the matching
        completion arrives on the receive CQ (:meth:`wait_recv` /
        :meth:`poll_recv`) carrying the payload values and this request's
        ``wr_id``.
        """
        addresses = self._resolve_local_scatter(symbol, indices, index)
        return self.verbs.post_recv(source, addresses, symbol=symbol)

    def post_srq_recv(
        self,
        symbol: str,
        indices: Optional[Iterable[int]] = None,
        index: int = 0,
    ) -> ReceiveWorkRequest:
        """Post a receive buffer to this rank's shared receive queue.

        Requires :meth:`create_srq` first.  SRQ buffers are consumed, in
        posting order, by sends from *any* peer — the server-side pattern
        that sizes buffering for aggregate load.
        """
        addresses = self._resolve_local_scatter(symbol, indices, index)
        return self.verbs.post_srq_recv(addresses, symbol=symbol)

    def create_srq(self, max_wr: Optional[int] = None) -> SharedReceiveQueue:
        """Create this rank's shared receive queue (before any traffic arrives)."""
        return self.verbs.create_srq(max_wr=max_wr)

    def arm_srq_limit(self, threshold: int) -> None:
        """Arm the SRQ low-watermark event (fires once below *threshold*)."""
        self.verbs.arm_srq_limit(threshold)

    def take_srq_limit_event(self) -> bool:
        """Consume one pending SRQ limit event (the bulk-replenish trigger)."""
        return self.verbs.take_srq_limit_event()

    def wait_recv(self, count: int = 1) -> Generator:
        """Block until *count* receive completions retire; returns them in order.

        A completion with a non-success status (e.g. a length error) raises
        :class:`~repro.verbs.work.CompletionError` — with *all* retired
        completions attached as ``error.completions``, because the
        successful siblings were already claimed from the CQ and cannot be
        re-waited; a server recovers their payloads (and reposts their
        buffers) from the exception.
        """
        completions = yield from self.verbs.wait_recv(count)
        failed = next((c for c in completions if not c.ok), None)
        if failed is not None:
            raise CompletionError(
                f"receive wr#{failed.wr_id} failed: {failed.detail}",
                completions=completions,
            )
        return completions

    def poll_recv(self) -> List[WorkCompletion]:
        """Retire whatever receive completions are ready, without blocking."""
        return self.verbs.poll_recv()

    def _claim(
        self, completions: List[WorkCompletion], raise_on_error: bool
    ) -> List[WorkCompletion]:
        # Record every successful sibling before raising, so one failed
        # request does not lose the results of the others (they have already
        # been claimed from the verbs context and cannot be re-waited).
        failed: Optional[WorkCompletion] = None
        for completion in completions:
            if completion.result is not None:
                self._operation_results.append(completion.result)
            if failed is None and not completion.ok:
                failed = completion
        if raise_on_error and failed is not None:
            message = f"work request {failed.wr_id} failed: {failed.detail}"
            if failed.status is CompletionStatus.REMOTE_ACCESS_ERROR:
                raise RemoteAccessError(message)
            raise CompletionError(message)
        return completions

    def wait(self, *requests: WorkRequest, raise_on_error: bool = True) -> Generator:
        """Block until every given work request completes; returns the completions.

        Completions are returned in the order of *requests*.  A failed request
        (for example, a bad rkey) raises
        :class:`~repro.verbs.memory_registration.RemoteAccessError` unless
        ``raise_on_error=False``, in which case the caller inspects the
        completion statuses.
        """
        completions = yield from self.verbs.wait(requests)
        return self._claim(completions, raise_on_error)

    def wait_all(self, raise_on_error: bool = True) -> Generator:
        """Block until every outstanding posted operation completes.

        Returns all completions not yet claimed, in posting order.
        """
        completions = yield from self.verbs.wait_all()
        return self._claim(completions, raise_on_error)

    def poll_completions(self) -> List[WorkCompletion]:
        """Retire whatever completions are ready, without blocking."""
        return self._claim(self.verbs.poll(), raise_on_error=False)

    # -- local behaviour ----------------------------------------------------------------

    def compute(self, duration: float) -> Generator:
        """Model *duration* units of purely local computation."""
        require_non_negative(duration, "duration")
        yield self._sim.timeout(duration, name=f"compute-P{self.rank}")
        return duration

    def barrier(self) -> Generator:
        """Cross the global barrier (a synchronization / happens-before edge)."""
        if self._barrier is None:
            raise RuntimeError("this runtime was built without a barrier")
        generation = yield from self._barrier.wait(self.rank)
        return generation

    def notify(self, destination: int, payload: Any = None) -> Generator:
        """Send a runtime notification message to *destination*."""
        message = yield from self._nic.send_notification(destination, payload)
        return message

    def log(self, message: str) -> None:
        """Emit a structured log line tagged with this rank."""
        self._sim.logger.log("app", message, rank=self.rank)

    # -- composite patterns ----------------------------------------------------------------

    def reduce_shared(
        self,
        symbol: str,
        length: int,
        operator: Callable[[Any, Any], Any] = lambda a, b: a + b,
        initial: Any = 0,
    ) -> Generator:
        """One-sided reduction over shared array *symbol* (paper, Section V-B)."""
        value = yield from one_sided_reduction(self, symbol, length, operator, initial)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessAPI rank={self.rank}/{self.world_size}>"
