"""Synchronization and collective patterns built on the model's primitives.

The model offers nothing but one-sided memory operations and notifications, so
every higher-level pattern must be expressed with them — exactly the situation
of SHMEM/UPC programs.  Three are provided:

* :class:`Barrier` — a centralized barrier: every rank notifies the root, the
  root releases everyone.  A barrier is a synchronization point, so the
  participants' vector clocks are merged (the detector's
  :meth:`~repro.core.detector.DualClockRaceDetector.transfer_clock`), which is
  what makes post-barrier accesses causally ordered after pre-barrier ones.
* :func:`broadcast_via_puts` — the root writes a value into a shared array
  slot owned by each rank.
* :func:`one_sided_reduction` — the paper's future-work operation
  (Section V-B): one process performs a global reduction *"without any
  participation of the other processes, by fetching the data remotely"*.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.clocks import VectorClock
from repro.core.detector import DualClockRaceDetector
from repro.net.fabric import Fabric
from repro.net.message import MessageKind
from repro.obs.observability import Observability
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.util.validation import require_positive, require_rank


class Barrier:
    """A reusable centralized barrier over all ranks.

    One :class:`Barrier` instance is shared by the whole runtime; it can be
    crossed any number of times (generations).  Message accounting: each
    non-root arrival costs one NOTIFY to the root and each release costs one
    NOTIFY from the root, i.e. ``2·(n−1)`` messages per crossing.
    """

    def __init__(
        self,
        sim: Simulator,
        world_size: int,
        fabric: Optional[Fabric] = None,
        detector: Optional[DualClockRaceDetector] = None,
        root: int = 0,
        charge_messages: bool = True,
        recorder: Optional[object] = None,
    ) -> None:
        require_positive(world_size, "world_size")
        require_rank(root, world_size, "root")
        self._sim = sim
        self._world_size = world_size
        self._fabric = fabric
        self._detector = detector
        self._recorder = recorder
        self._root = root
        self._charge_messages = charge_messages and fabric is not None
        self._generation = 0
        self._arrived = 0
        self._merged: Optional[VectorClock] = None
        self._release_events: Dict[int, Event] = {}
        self._crossings = 0
        #: generation -> (last-arriving rank, open sim time): the fan-in
        #: edge the critical-path analyzer hops across.
        self._open_info: Dict[int, tuple] = {}
        self._obs = Observability.of(sim)

    @property
    def crossings(self) -> int:
        """Number of completed barrier generations."""
        return self._crossings

    @property
    def generation(self) -> int:
        """Current (possibly in-progress) generation index."""
        return self._generation

    def wait(self, rank: int) -> Generator:
        """Generator a rank yields from to cross the barrier."""
        require_rank(rank, self._world_size, "rank")
        if self._world_size == 1:
            self._crossings += 1
            return self._generation
        generation = self._generation
        arrived_at = self._sim.now
        # Arrival notification to the root (charged as a message for non-root ranks).
        if rank != self._root and self._charge_messages:
            event, _ = self._fabric.send(
                MessageKind.NOTIFY, rank, self._root, payload=("barrier", generation),
                payload_bytes=8,
            )
            yield event
        # Merge this rank's causal knowledge into the barrier.
        if self._detector is not None:
            snapshot = self._detector.current_clock(rank)
            if self._merged is None:
                self._merged = snapshot.copy()
            else:
                self._merged.merge_in_place(snapshot)
        release = self._release_events.setdefault(
            rank, self._sim.event(name=f"barrier-release-g{generation}-P{rank}")
        )
        self._arrived += 1
        if self._arrived == self._world_size:
            self._open(generation, rank)
        yield release
        # Every participant leaves knowing everything every participant knew.
        if self._detector is not None and self._merged is not None:
            self._detector.process_clock(rank).observe_vector(self._merged)
        # The fan-in span: from this rank's arrival to its release — the
        # straggler's span is ~zero, the first arrival's spans the longest.
        # The opener args name the true fan-in edge: wait time before the
        # open was the last arriver's fault, time after it is release flight.
        opener, opened_at = self._open_info.get(generation, (None, None))
        span_args: Dict[str, object] = {"generation": generation}
        if opener is not None:
            span_args["opener"] = f"P{opener}"
            span_args["opened_at"] = opened_at
        self._obs.spans.complete(
            f"rank-P{rank}",
            "barrier_wait",
            arrived_at,
            self._sim.now,
            **span_args,
        )
        self._obs.metrics.histogram(
            "barrier.wait_time", layout="sim_time", rank=rank
        ).observe(self._sim.now - arrived_at)
        return generation

    def _open(self, generation: int, opener: int) -> None:
        """Last arrival: release every waiter, after the release messages land.

        The merged clock is recomputed from every participant's *current*
        clock at release time rather than from the arrival-time snapshots:
        while a process waits at the barrier its clock can still advance
        (remote writes landing in its public memory count as reception
        events), and all of those events precede the release, so folding them
        in is sound and spares third-party readers a conservative report for
        writes that demonstrably completed before the barrier opened.
        """
        if self._detector is not None:
            release_view = self._detector.current_clock(0).copy()
            for rank in range(1, self._world_size):
                release_view.merge_in_place(self._detector.current_clock(rank))
            self._merged = release_view
        if self._recorder is not None:
            # Synchronization events are part of the trace so that offline
            # (post-mortem) detection reconstructs the same happens-before.
            self._recorder.record_sync(
                range(self._world_size), time=self._sim.now, kind="barrier"
            )
        merged = self._merged
        self._open_info[generation] = (opener, self._sim.now)
        releases = dict(self._release_events)
        # Reset state for the next generation before any waiter resumes.
        self._generation = generation + 1
        self._arrived = 0
        self._release_events = {}
        self._crossings += 1
        self._obs.metrics.counter("barrier.crossings").inc()
        # Barrier fan-out order is a controlled choice point: with a
        # schedule controller installed, which waiter's release fires (or is
        # put on the wire) next is a logged, replayable decision — the last
        # previously-uncontrolled ordering.  The default (index 0 at every
        # pick) reproduces arrival order, the uncontrolled behaviour.
        order = list(releases.items())
        controller = getattr(self._sim, "controller", None)
        controlled = controller is not None and hasattr(
            controller, "on_barrier_release"
        )
        while order:
            index = 0
            if controlled and len(order) > 1:
                index = controller.on_barrier_release(generation, len(order))
            rank, release = order.pop(index)
            if rank != self._root and self._charge_messages:
                event, _ = self._fabric.send(
                    MessageKind.NOTIFY, self._root, rank,
                    payload=("barrier-release", generation), payload_bytes=8,
                )
                event.callbacks.append(
                    lambda _ev, rel=release: rel.succeed(generation)
                )
            else:
                release.succeed(generation)
        # Keep the merged clock available to late observers of this generation.
        self._merged = merged.copy() if merged is not None else None


def broadcast_via_puts(api: Any, symbol: str, value: Any, root: Optional[int] = None) -> Generator:
    """Root writes *value* into element ``rank`` of shared array *symbol*.

    The array must have at least ``world_size`` elements (one slot per rank).
    Non-root ranks do nothing; the caller typically follows the broadcast with
    a barrier before readers consume their slot.
    """
    root = 0 if root is None else root
    if api.rank != root:
        return None
    for rank in range(api.world_size):
        yield from api.put(symbol, value, index=rank)
    return value


def one_sided_reduction(
    api: Any,
    symbol: str,
    length: int,
    operator: Callable[[Any, Any], Any],
    initial: Any = 0,
) -> Generator:
    """The paper's future-work non-collective reduction (Section V-B).

    The calling process fetches every element of shared array *symbol* with
    remote ``get`` operations — no participation from the owners — and folds
    them locally with *operator*.  Returns the reduced value.
    """
    require_positive(length, "length")
    accumulator = initial
    for index in range(length):
        value = yield from api.get(symbol, index=index)
        accumulator = operator(accumulator, value)
    return accumulator
