"""Utility helpers shared across the ``repro`` packages.

This sub-package holds small, dependency-free building blocks: argument
validation, identifier generation, and a lightweight structured logger used by
the simulation kernel and the runtime.  Nothing in here knows about the
distributed-shared-memory model itself.
"""

from repro.util.validation import (
    require,
    require_type,
    require_non_negative,
    require_positive,
    require_in_range,
    require_rank,
)
from repro.util.ids import IdAllocator, monotonic_id
from repro.util.logging import SimLogger, LogRecord, NullLogger

__all__ = [
    "require",
    "require_type",
    "require_non_negative",
    "require_positive",
    "require_in_range",
    "require_rank",
    "IdAllocator",
    "monotonic_id",
    "SimLogger",
    "LogRecord",
    "NullLogger",
]
