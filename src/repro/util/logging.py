"""Structured, simulation-time-aware logging.

The standard :mod:`logging` module timestamps records with wall-clock time,
which is meaningless inside a discrete-event simulation.  :class:`SimLogger`
records the *simulated* time of each event and keeps records in memory so that
tests and the analysis package can assert on them; it can also echo to stdout
for interactive debugging (the paper's recommendation is precisely that race
reports go to standard output without aborting the run, Section IV-D).

Records carry a severity level (``debug`` < ``info`` < ``warning`` <
``error``); :meth:`SimLogger.to_jsonl` exports the collected records as JSON
Lines for offline analysis, one canonical (sorted-keys) object per line.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, List, Optional

#: Severity names in ascending order; index == numeric level.
LEVELS = ("debug", "info", "warning", "error")


def level_number(level: str) -> int:
    """Numeric value of a severity name (for threshold comparisons)."""
    try:
        return LEVELS.index(level)
    except ValueError:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")


@dataclass(frozen=True)
class LogRecord:
    """A single structured log entry.

    Attributes
    ----------
    time:
        Simulated time at which the record was emitted.
    category:
        Free-form category tag, e.g. ``"nic"``, ``"race"``, ``"lock"``.
    message:
        Human-readable message.
    rank:
        Rank of the process the record concerns, or ``None`` for global events.
    level:
        Severity: ``"debug"``, ``"info"``, ``"warning"`` or ``"error"``.
    """

    time: float
    category: str
    message: str
    rank: Optional[int] = None
    level: str = "info"


class SimLogger:
    """Collects :class:`LogRecord` objects emitted during a simulation run."""

    def __init__(self, echo: bool = False, clock: Optional[Callable[[], float]] = None) -> None:
        self._records: List[LogRecord] = []
        self._echo = echo
        self._clock = clock or (lambda: 0.0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock used to timestamp records."""
        self._clock = clock

    def log(
        self,
        category: str,
        message: str,
        rank: Optional[int] = None,
        level: str = "info",
    ) -> LogRecord:
        """Record a message under *category* at the current simulated time."""
        level_number(level)  # validate early: a typo'd level is a bug
        record = LogRecord(
            time=self._clock(), category=category, message=message, rank=rank,
            level=level,
        )
        self._records.append(record)
        if self._echo:
            where = f"P{record.rank}" if record.rank is not None else "--"
            print(f"[t={record.time:10.3f}] [{record.category:>6}] [{where}] {record.message}")
        return record

    # -- severity shorthands -------------------------------------------------------

    def debug(self, category: str, message: str, rank: Optional[int] = None) -> LogRecord:
        """Record at ``debug`` severity."""
        return self.log(category, message, rank=rank, level="debug")

    def info(self, category: str, message: str, rank: Optional[int] = None) -> LogRecord:
        """Record at ``info`` severity."""
        return self.log(category, message, rank=rank, level="info")

    def warning(self, category: str, message: str, rank: Optional[int] = None) -> LogRecord:
        """Record at ``warning`` severity."""
        return self.log(category, message, rank=rank, level="warning")

    def error(self, category: str, message: str, rank: Optional[int] = None) -> LogRecord:
        """Record at ``error`` severity."""
        return self.log(category, message, rank=rank, level="error")

    def records(
        self, category: Optional[str] = None, min_level: Optional[str] = None
    ) -> List[LogRecord]:
        """Return all records, optionally filtered by *category* and severity."""
        selected: Iterable[LogRecord] = self._records
        if category is not None:
            selected = [r for r in selected if r.category == category]
        if min_level is not None:
            threshold = level_number(min_level)
            selected = [r for r in selected if level_number(r.level) >= threshold]
        return list(selected)

    def categories(self) -> List[str]:
        """Return the distinct categories seen so far, in first-seen order."""
        seen: List[str] = []
        for record in self._records:
            if record.category not in seen:
                seen.append(record.category)
        return seen

    def to_jsonl(self, category: Optional[str] = None, min_level: Optional[str] = None) -> str:
        """Export records as JSON Lines (one sorted-keys object per line).

        Deterministic for deterministic runs: record order is emission order
        and every object is canonical JSON, so equal runs export equal bytes.
        """
        return "\n".join(
            json.dumps(asdict(record), sort_keys=True)
            for record in self.records(category=category, min_level=min_level)
        )

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[LogRecord]:
        return iter(self._records)


class NullLogger(SimLogger):
    """A logger that drops everything; used when tracing overhead matters.

    The returned record still carries the *real* bound-clock time (not a
    fabricated ``0.0``) so call sites that inspect the return value see the
    same timestamps they would with a recording logger.
    """

    def log(
        self,
        category: str,
        message: str,
        rank: Optional[int] = None,
        level: str = "info",
    ) -> LogRecord:  # noqa: D102
        return LogRecord(
            time=self._clock(), category=category, message=message, rank=rank,
            level=level,
        )
