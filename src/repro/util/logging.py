"""Structured, simulation-time-aware logging.

The standard :mod:`logging` module timestamps records with wall-clock time,
which is meaningless inside a discrete-event simulation.  :class:`SimLogger`
records the *simulated* time of each event and keeps records in memory so that
tests and the analysis package can assert on them; it can also echo to stdout
for interactive debugging (the paper's recommendation is precisely that race
reports go to standard output without aborting the run, Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional


@dataclass(frozen=True)
class LogRecord:
    """A single structured log entry.

    Attributes
    ----------
    time:
        Simulated time at which the record was emitted.
    category:
        Free-form category tag, e.g. ``"nic"``, ``"race"``, ``"lock"``.
    message:
        Human-readable message.
    rank:
        Rank of the process the record concerns, or ``None`` for global events.
    """

    time: float
    category: str
    message: str
    rank: Optional[int] = None


class SimLogger:
    """Collects :class:`LogRecord` objects emitted during a simulation run."""

    def __init__(self, echo: bool = False, clock: Optional[Callable[[], float]] = None) -> None:
        self._records: List[LogRecord] = []
        self._echo = echo
        self._clock = clock or (lambda: 0.0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock used to timestamp records."""
        self._clock = clock

    def log(self, category: str, message: str, rank: Optional[int] = None) -> LogRecord:
        """Record a message under *category* at the current simulated time."""
        record = LogRecord(time=self._clock(), category=category, message=message, rank=rank)
        self._records.append(record)
        if self._echo:
            where = f"P{record.rank}" if record.rank is not None else "--"
            print(f"[t={record.time:10.3f}] [{record.category:>6}] [{where}] {record.message}")
        return record

    def records(self, category: Optional[str] = None) -> List[LogRecord]:
        """Return all records, optionally filtered by *category*."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def categories(self) -> List[str]:
        """Return the distinct categories seen so far, in first-seen order."""
        seen: List[str] = []
        for record in self._records:
            if record.category not in seen:
                seen.append(record.category)
        return seen

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[LogRecord]:
        return iter(self._records)


class NullLogger(SimLogger):
    """A logger that drops everything; used when tracing overhead matters."""

    def log(self, category: str, message: str, rank: Optional[int] = None) -> LogRecord:  # noqa: D102
        return LogRecord(time=0.0, category=category, message=message, rank=rank)
