"""Monotonic identifier allocation.

Every message, event and lock request in the simulation carries a small
integer id so that traces are reproducible and ties in the event queue can be
broken deterministically (the paper's model is asynchronous; determinism in
the *simulator* is what lets a test assert on an exact interleaving).
"""

from __future__ import annotations

import itertools
from typing import Iterator


class IdAllocator:
    """Hand out consecutive integer ids, optionally with a string prefix.

    >>> alloc = IdAllocator("msg")
    >>> alloc.next_int()
    0
    >>> alloc.next_str()
    'msg-1'
    """

    def __init__(self, prefix: str = "id") -> None:
        self._prefix = prefix
        self._counter: Iterator[int] = itertools.count()

    @property
    def prefix(self) -> str:
        """Prefix used by :meth:`next_str`."""
        return self._prefix

    def next_int(self) -> int:
        """Return the next integer id."""
        return next(self._counter)

    def next_str(self) -> str:
        """Return the next id formatted as ``"<prefix>-<n>"``."""
        return f"{self._prefix}-{self.next_int()}"

    def peek(self) -> int:
        """Return the id that the *next* call to :meth:`next_int` would produce.

        This consumes-and-rebuilds the underlying counter, so it is intended
        for diagnostics only.
        """
        value = next(self._counter)
        self._counter = itertools.chain([value], self._counter)
        return value


_GLOBAL_ALLOCATOR = IdAllocator("g")


def monotonic_id() -> int:
    """Return a process-wide monotonically increasing integer.

    Used for tie-breaking where no per-object allocator is available.
    """
    return _GLOBAL_ALLOCATOR.next_int()
