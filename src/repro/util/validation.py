"""Argument-validation helpers.

The simulator is used as a library by tests, benchmarks and example programs;
clear, early errors are much cheaper to debug than silent mis-simulation.  The
helpers below raise standard exception types (``ValueError`` / ``TypeError``)
with consistent messages so the calling modules stay terse.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Type


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* when *condition* is false."""
    if not condition:
        raise ValueError(message)


def require_type(value: Any, types: Type | tuple[Type, ...], name: str) -> Any:
    """Raise :class:`TypeError` unless *value* is an instance of *types*.

    Returns the value so calls can be used inline::

        self._rank = require_type(rank, int, "rank")
    """
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__}: {value!r}"
        )
    return value


def require_non_negative(value: float | int, name: str) -> float | int:
    """Raise :class:`ValueError` unless ``value >= 0``."""
    require_type(value, (int, float), name)
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_positive(value: float | int, name: str) -> float | int:
    """Raise :class:`ValueError` unless ``value > 0``."""
    require_type(value, (int, float), name)
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_in_range(
    value: float | int, low: float | int, high: float | int, name: str
) -> float | int:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    require_type(value, (int, float), name)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_rank(rank: int, world_size: int, name: str = "rank") -> int:
    """Validate a process rank against the world size.

    Ranks in the global address space are integers in ``[0, world_size)``,
    mirroring MPI/UPC conventions.
    """
    require_type(rank, int, name)
    if isinstance(rank, bool):
        raise TypeError(f"{name} must be an int, got bool")
    require_type(world_size, int, "world_size")
    if world_size <= 0:
        raise ValueError(f"world_size must be positive, got {world_size}")
    if not (0 <= rank < world_size):
        raise ValueError(
            f"{name} must be in [0, {world_size}), got {rank}"
        )
    return rank


def require_unique(items: Iterable[Any], name: str) -> Sequence[Any]:
    """Raise :class:`ValueError` if *items* contains duplicates."""
    seq = list(items)
    seen = set()
    for item in seq:
        if item in seen:
            raise ValueError(f"{name} contains duplicate entry {item!r}")
        seen.add(item)
    return seq
