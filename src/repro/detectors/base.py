"""Common interface for offline (trace-based) detectors.

Every baseline consumes a list of :class:`~repro.memory.consistency.MemoryAccess`
records (as produced by :class:`~repro.trace.recorder.TraceRecorder`) plus the
world size, and produces a :class:`DetectionResult`: a set of
:class:`DetectedRace` findings keyed by the shared cell involved.  Keeping the
interface at the level of *cells flagged as racy* (rather than exact access
pairs) lets the accuracy metrics compare detectors with very different
internal granularity against the execution-varying ground truth, which is also
expressed per cell/symbol.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess


@dataclass(frozen=True)
class DetectedRace:
    """One race finding produced by a detector.

    ``first_access_id`` / ``second_access_id`` identify the conflicting pair
    when the detector works at access granularity; detectors that only flag a
    cell may leave them as ``None``.
    """

    address: GlobalAddress
    symbol: Optional[str]
    ranks: Tuple[int, ...]
    kinds: Tuple[str, ...]
    first_access_id: Optional[int] = None
    second_access_id: Optional[int] = None
    detail: str = ""

    def involves_write(self) -> bool:
        """True when at least one side of the pair writes (plain write or RMW)."""
        return any(AccessKind(kind).is_write for kind in self.kinds)


@dataclass
class DetectionResult:
    """Everything an offline detector reports for one trace."""

    detector_name: str
    findings: List[DetectedRace] = field(default_factory=list)
    accesses_analyzed: int = 0

    def flagged_addresses(self) -> Set[GlobalAddress]:
        """Cells the detector considers racy."""
        return {f.address for f in self.findings}

    def flagged_symbols(self) -> Set[str]:
        """Shared-variable names the detector considers racy (when known)."""
        return {f.symbol for f in self.findings if f.symbol is not None}

    def count(self) -> int:
        """Number of findings."""
        return len(self.findings)

    def by_address(self) -> Dict[GlobalAddress, List[DetectedRace]]:
        """Group findings per cell."""
        grouped: Dict[GlobalAddress, List[DetectedRace]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.address, []).append(finding)
        return grouped


class BaselineDetector(abc.ABC):
    """Interface shared by every offline detector."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "baseline"

    @abc.abstractmethod
    def detect(
        self, accesses: Sequence[MemoryAccess], world_size: int, syncs: Sequence = ()
    ) -> DetectionResult:
        """Analyse *accesses* (plus optional synchronization events) and report.

        ``syncs`` is a sequence of :class:`~repro.trace.events.SyncEvent`
        objects; detectors that do not model explicit synchronization (e.g.
        lockset) simply ignore it.
        """

    # -- shared helpers ----------------------------------------------------------

    @staticmethod
    def order_accesses(accesses: Sequence[MemoryAccess]) -> List[MemoryAccess]:
        """Sort accesses by ``(time, access_id)``, the trace's observation order."""
        return sorted(accesses, key=lambda a: (a.time, a.access_id))

    @staticmethod
    def group_by_address(
        accesses: Sequence[MemoryAccess],
    ) -> Dict[GlobalAddress, List[MemoryAccess]]:
        """Group accesses per cell, preserving observation order within a cell."""
        grouped: Dict[GlobalAddress, List[MemoryAccess]] = {}
        for access in BaselineDetector.order_accesses(accesses):
            grouped.setdefault(access.address, []).append(access)
        return grouped
