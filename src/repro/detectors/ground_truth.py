"""Execution-varying ground-truth oracle.

The paper defines a race condition operationally: *"a race condition is
observed when the result of a computation differs between executions of this
computation"* (Section III-C).  The oracle takes that definition literally:
it runs the *same* program under several different legal interleavings —
obtained by re-seeding the latency model, which perturbs message timing — and
labels as "truly racy" every shared cell whose observable behaviour (final
value, or the multiset of values returned by reads) differs across executions.

This gives the reference answer against which the detectors' precision and
recall are measured (benchmark E13).  Two caveats, both conservative:

* a cell can be causally unracy yet always produce the same value (e.g. two
  unordered writes of the same constant); the oracle then labels it non-racy
  while a happens-before detector flags it — such findings are counted
  separately as "value-benign" rather than as false positives;
* with a finite number of seeds the oracle can miss races whose alternative
  outcomes need a rare interleaving; increasing ``seeds`` tightens it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind
from repro.runtime.runtime import DSMRuntime, RunResult

#: A callable that builds a fresh, fully configured runtime for a given seed.
#: It must declare the shared data and register the programs, but not run.
RuntimeFactory = Callable[[int], DSMRuntime]


@dataclass
class GroundTruth:
    """The oracle's verdict for one program."""

    seeds: Tuple[int, ...]
    racy_addresses: Set[GlobalAddress] = field(default_factory=set)
    racy_symbols: Set[str] = field(default_factory=set)
    final_values_by_seed: Dict[int, Dict[str, List[object]]] = field(default_factory=dict)
    read_values_by_seed: Dict[int, Dict[GlobalAddress, Tuple[object, ...]]] = field(
        default_factory=dict
    )
    runs: Dict[int, RunResult] = field(default_factory=dict)

    def is_racy_symbol(self, symbol: str) -> bool:
        """True when the oracle observed divergent behaviour on *symbol*."""
        return symbol in self.racy_symbols

    def is_racy_address(self, address: GlobalAddress) -> bool:
        """True when the oracle observed divergent behaviour on *address*."""
        return address in self.racy_addresses

    @property
    def racy(self) -> bool:
        """True when any shared datum diverged across executions."""
        return bool(self.racy_addresses or self.racy_symbols)


class SeedVaryingOracle:
    """Runs a program under several seeds and diffs the observable outcomes."""

    def __init__(self, factory: RuntimeFactory, seeds: Sequence[int] = (0, 1, 2, 3, 4)) -> None:
        if not seeds:
            raise ValueError("the oracle needs at least one seed")
        self._factory = factory
        self._seeds = tuple(int(s) for s in seeds)

    @property
    def seeds(self) -> Tuple[int, ...]:
        """Seeds the oracle will run."""
        return self._seeds

    def evaluate(self) -> GroundTruth:
        """Run every seed and compute the divergence sets."""
        truth = GroundTruth(seeds=self._seeds)
        symbol_values: Dict[str, Set[Tuple[object, ...]]] = {}
        address_by_symbol_index: Dict[Tuple[str, int], GlobalAddress] = {}
        read_values: Dict[GlobalAddress, Set[Tuple[object, ...]]] = {}

        for seed in self._seeds:
            runtime = self._factory(seed)
            result = runtime.run()
            truth.runs[seed] = result
            truth.final_values_by_seed[seed] = result.final_shared_values
            # Final values per symbol.
            for symbol, values in result.final_shared_values.items():
                symbol_values.setdefault(symbol, set()).add(tuple(values))
                for index in range(len(values)):
                    address_by_symbol_index[(symbol, index)] = runtime.directory.resolve(
                        symbol, index
                    )
            # Sequence of values observed by reads, per cell.  An atomic RMW
            # observes its cell too: its ``observed`` (pre-update) value joins
            # the read stream, so e.g. a CAS seeing different old values across
            # seeds marks the cell racy even when the final value converges.
            per_cell_reads: Dict[GlobalAddress, List[object]] = {}
            for access in runtime.recorder.accesses():
                if not access.kind.is_read:
                    continue
                seen = access.observed if access.kind is AccessKind.RMW else access.value
                per_cell_reads.setdefault(access.address, []).append(seen)
            truth.read_values_by_seed[seed] = {
                addr: tuple(vals) for addr, vals in per_cell_reads.items()
            }
            for addr, vals in per_cell_reads.items():
                read_values.setdefault(addr, set()).add(tuple(sorted(map(repr, vals))))

        # A symbol is racy when its final contents differ across seeds; the
        # specific diverging cells are found element-wise.
        for symbol, outcomes in symbol_values.items():
            if len(outcomes) > 1:
                truth.racy_symbols.add(symbol)
                lengths = {len(o) for o in outcomes}
                width = min(lengths)
                columns = list(zip(*[list(o)[:width] for o in outcomes]))
                for index, column in enumerate(columns):
                    if len(set(map(repr, column))) > 1:
                        truth.racy_addresses.add(address_by_symbol_index[(symbol, index)])
        # A cell whose reads observe different value multisets across seeds is
        # racy even if its final value converges.
        for addr, outcomes in read_values.items():
            if len(outcomes) > 1:
                truth.racy_addresses.add(addr)
        return truth
