"""Single-clock happens-before baseline (the ablation of Section IV-D).

The paper's detector keeps *two* clocks per shared datum precisely so that
concurrent read-only accesses are not reported (Figure 4).  This baseline is
what you get without the write clock: a single general-purpose clock per
datum, and a race signalled for *any* causally unordered pair of accesses to
the same datum — including read/read pairs, which are harmless.

The paper (Section IV-D): *"[the dual-clock approach] offers more precision
and eliminates numerous cases of false positives (e.g., concurrent read-only
accesses)"* — benchmark E9 quantifies exactly that by running both detectors
over the same traces and counting the read/read findings only this one
produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.clocks import VectorClock
from repro.core.comparator import concurrent
from repro.detectors.base import BaselineDetector, DetectedRace, DetectionResult
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess


class SingleClockDetector(BaselineDetector):
    """Happens-before detection with one clock per datum and no read/write split."""

    name = "single-clock"

    def __init__(self, origin_learns: bool = True) -> None:
        #: Whether the accessing process merges the datum clock into its own
        #: clock after each access (the same convention as the dual-clock
        #: detector); turning it off makes the baseline even noisier.
        self.origin_learns = origin_learns

    def detect(
        self, accesses: Sequence[MemoryAccess], world_size: int, syncs: Sequence = ()
    ) -> DetectionResult:
        """Run the single-clock algorithm over a recorded trace."""
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        process_clocks: Dict[int, VectorClock] = {
            rank: VectorClock.zeros(world_size) for rank in range(world_size)
        }
        datum_clocks: Dict[GlobalAddress, VectorClock] = {}
        last_access: Dict[GlobalAddress, MemoryAccess] = {}
        findings: List[DetectedRace] = []

        stream = [(a.time, a.access_id, "access", a) for a in self.order_accesses(accesses)]
        stream.extend((s.time, s.sync_id, "sync", s) for s in syncs)
        stream.sort(key=lambda item: (item[0], item[1]))

        for _time, _eid, item_kind, event in stream:
            if item_kind == "sync":
                participants = [r for r in event.participants if 0 <= r < world_size]
                if len(participants) >= 2:
                    merged = process_clocks[participants[0]].copy()
                    for rank in participants[1:]:
                        merged.merge_in_place(process_clocks[rank])
                    for rank in participants:
                        process_clocks[rank].merge_in_place(merged)
                continue
            access = event
            clock = process_clocks[access.rank]
            clock.tick(access.rank)
            datum_clock = datum_clocks.get(access.address)
            if datum_clock is not None and datum_clock.total() > 0:
                if concurrent(clock, datum_clock):
                    previous = last_access.get(access.address)
                    findings.append(
                        DetectedRace(
                            address=access.address,
                            symbol=access.symbol,
                            ranks=(
                                access.rank,
                                previous.rank if previous is not None else -1,
                            ),
                            kinds=(
                                access.kind.value,
                                previous.kind.value
                                if previous is not None
                                else AccessKind.WRITE.value,
                            ),
                            first_access_id=(
                                previous.access_id if previous is not None else None
                            ),
                            second_access_id=access.access_id,
                            detail="single-clock: unordered accesses (kind ignored)",
                        )
                    )
            if datum_clock is None:
                datum_clock = VectorClock.zeros(world_size)
                datum_clocks[access.address] = datum_clock
            if self.origin_learns:
                clock.merge_in_place(datum_clock)
            datum_clock.merge_in_place(clock)
            last_access[access.address] = access

        return DetectionResult(
            detector_name=self.name,
            findings=findings,
            accesses_analyzed=len(accesses),
        )

    def read_read_findings(self, result: DetectionResult) -> List[DetectedRace]:
        """The findings that involve no write at all: guaranteed false positives."""
        return [f for f in result.findings if not f.involves_write()]
