"""Single-clock happens-before baseline (the ablation of Section IV-D).

The paper's detector keeps *two* clocks per shared datum precisely so that
concurrent read-only accesses are not reported (Figure 4).  This baseline is
what you get without the write clock: a single general-purpose clock per
datum, and a race signalled for *any* causally unordered pair of accesses to
the same datum — including read/read pairs, which are harmless.

The paper (Section IV-D): *"[the dual-clock approach] offers more precision
and eliminates numerous cases of false positives (e.g., concurrent read-only
accesses)"* — benchmark E9 quantifies exactly that by running both detectors
over the same traces and counting the read/read findings only this one
produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.clocks import Epoch, VectorClock
from repro.core.comparator import concurrent, epoch_precedes
from repro.detectors.base import BaselineDetector, DetectedRace, DetectionResult
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess


class SingleClockDetector(BaselineDetector):
    """Happens-before detection with one clock per datum and no read/write split."""

    name = "single-clock"

    def __init__(self, origin_learns: bool = True, epochs: bool = True) -> None:
        #: Whether the accessing process merges the datum clock into its own
        #: clock after each access (the same convention as the dual-clock
        #: detector); turning it off makes the baseline even noisier.
        self.origin_learns = origin_learns
        #: FastTrack-style epoch fast path: when the datum clock's content is
        #: known to equal a single rank's captured clock, the concurrency
        #: test collapses to one O(1) component probe (the access's fresh
        #: tick rules out every Mattern outcome except ``datum <= clock``).
        #: Findings are identical either way; off runs the full compares.
        self.epochs = epochs

    def detect(
        self, accesses: Sequence[MemoryAccess], world_size: int, syncs: Sequence = ()
    ) -> DetectionResult:
        """Run the single-clock algorithm over a recorded trace."""
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        process_clocks: Dict[int, VectorClock] = {
            rank: VectorClock.zeros(world_size) for rank in range(world_size)
        }
        datum_clocks: Dict[GlobalAddress, VectorClock] = {}
        datum_epochs: Dict[GlobalAddress, Optional[Epoch]] = {}
        last_access: Dict[GlobalAddress, MemoryAccess] = {}
        findings: List[DetectedRace] = []

        stream = [(a.time, a.access_id, "access", a) for a in self.order_accesses(accesses)]
        stream.extend((s.time, s.sync_id, "sync", s) for s in syncs)
        stream.sort(key=lambda item: (item[0], item[1]))

        for _time, _eid, item_kind, event in stream:
            if item_kind == "sync":
                participants = [r for r in event.participants if 0 <= r < world_size]
                if len(participants) >= 2:
                    merged = process_clocks[participants[0]].copy()
                    for rank in participants[1:]:
                        merged.merge_in_place(process_clocks[rank])
                    for rank in participants:
                        process_clocks[rank].merge_in_place(merged)
                continue
            access = event
            clock = process_clocks[access.rank]
            clock.tick(access.rank)
            datum_clock = datum_clocks.get(access.address)
            # Does the pre-merge datum content precede this access's clock?
            # True for a virgin datum; re-derived below from the verdict.
            covered = True
            if datum_clock is not None and datum_clock.total() > 0:
                epoch = datum_epochs.get(access.address) if self.epochs else None
                if epoch is not None:
                    # O(1) fast path: the just-ticked ``clock[access.rank]``
                    # appears in no other clock yet, so ``clock <= datum``
                    # and equality are impossible and ``concurrent`` reduces
                    # to ``not (datum <= clock)`` — decided by the probe.
                    is_race = not epoch_precedes(epoch, clock)
                else:
                    is_race = concurrent(clock, datum_clock)
                covered = not is_race
                if is_race:
                    previous = last_access.get(access.address)
                    findings.append(
                        DetectedRace(
                            address=access.address,
                            symbol=access.symbol,
                            ranks=(
                                access.rank,
                                previous.rank if previous is not None else -1,
                            ),
                            kinds=(
                                access.kind.value,
                                previous.kind.value
                                if previous is not None
                                else AccessKind.WRITE.value,
                            ),
                            first_access_id=(
                                previous.access_id if previous is not None else None
                            ),
                            second_access_id=access.access_id,
                            detail="single-clock: unordered accesses (kind ignored)",
                        )
                    )
            if datum_clock is None:
                datum_clock = VectorClock.zeros(world_size)
                datum_clocks[access.address] = datum_clock
            if self.origin_learns:
                # The access absorbs the datum clock first, so the merge
                # below always leaves the datum equal to this clock.
                clock.merge_in_place(datum_clock)
                covered = True
            datum_clock.merge_in_place(clock)
            if self.epochs:
                datum_epochs[access.address] = (
                    Epoch(access.rank, int(clock.component(access.rank)))
                    if covered
                    else None
                )
            last_access[access.address] = access

        return DetectionResult(
            detector_name=self.name,
            findings=findings,
            accesses_analyzed=len(accesses),
        )

    def read_read_findings(self, result: DetectionResult) -> List[DetectedRace]:
        """The findings that involve no write at all: guaranteed false positives."""
        return [f for f in result.findings if not f.involves_write()]
