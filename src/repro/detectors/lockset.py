"""Eraser-style lockset baseline.

Lockset algorithms (Savage et al.'s Eraser and its descendants) check a
*locking discipline*: every shared datum must be consistently protected by at
least one common lock across all accesses.  In the paper's DSM model every
one-sided operation is automatically serialized by the NIC lock of the target
cell (Section III-A), so the discipline is trivially satisfied: the candidate
lockset of every cell always contains its own NIC lock and never becomes
empty.

The consequence — which this baseline exists to demonstrate in benchmark E13 —
is that lockset analysis reports *no* races at all in this model, even for the
executions of Figures 5a and 5c whose outcome genuinely depends on message
timing.  Mutual exclusion gives atomicity of the individual accesses, not
ordering between them; detecting the missing ordering requires causality
tracking, which is the paper's argument for a clock-based detector.

The implementation still performs the full lockset computation (per-datum
candidate set intersection, with the refinement that read-only data never
warns) so that traces carrying *additional* application-level locks — the
``extra_locks_by_access`` hook used in tests — are analysed faithfully.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.detectors.base import BaselineDetector, DetectedRace, DetectionResult
from repro.memory.address import GlobalAddress
from repro.memory.consistency import AccessKind, MemoryAccess

#: The implicit NIC lock protecting a cell is named after the cell itself.
def nic_lock_name(address: GlobalAddress) -> str:
    """Name of the NIC-provided lock covering *address*."""
    return f"nic-lock:{address.rank}:{address.offset}"


class LocksetDetector(BaselineDetector):
    """Lockset (locking-discipline) analysis over a recorded trace."""

    name = "lockset"

    def __init__(
        self,
        model_nic_locks: bool = True,
        extra_locks_by_access: Optional[Mapping[int, Sequence[str]]] = None,
    ) -> None:
        #: Include the implicit per-cell NIC lock in every access's held set
        #: (the model's reality).  Setting this to ``False`` simulates an
        #: implementation without NIC locks, in which case lockset degenerates
        #: to "flag every multi-rank datum with a write".
        self.model_nic_locks = model_nic_locks
        #: Optional map ``access_id -> iterable of user-level lock names`` for
        #: traces of programs that use application locks.
        self.extra_locks_by_access = dict(extra_locks_by_access or {})

    def _held_locks(self, access: MemoryAccess) -> FrozenSet[str]:
        held: Set[str] = set()
        if self.model_nic_locks:
            held.add(nic_lock_name(access.address))
        held.update(self.extra_locks_by_access.get(access.access_id, ()))
        return frozenset(held)

    def detect(
        self, accesses: Sequence[MemoryAccess], world_size: int, syncs: Sequence = ()
    ) -> DetectionResult:
        """Run the lockset state machine per shared cell.

        ``syncs`` is accepted for interface uniformity and ignored: lockset
        analysis reasons about locking discipline, not happens-before.
        """
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        findings: List[DetectedRace] = []
        grouped = self.group_by_address(accesses)
        for address, cell_accesses in grouped.items():
            candidate: Optional[FrozenSet[str]] = None
            writers: Set[int] = set()
            accessors: Set[int] = set()
            first_warned = False
            previous: Optional[MemoryAccess] = None
            for access in cell_accesses:
                accessors.add(access.rank)
                if access.kind.is_write:
                    writers.add(access.rank)
                held = self._held_locks(access)
                candidate = held if candidate is None else candidate & held
                # Eraser's refinement: only warn once the datum is shared
                # (accessed by more than one rank) and written at least once.
                shared_and_written = len(accessors) > 1 and bool(writers)
                if shared_and_written and not candidate and not first_warned:
                    first_warned = True
                    findings.append(
                        DetectedRace(
                            address=address,
                            symbol=access.symbol,
                            ranks=(access.rank, previous.rank if previous else -1),
                            kinds=(
                                access.kind.value,
                                previous.kind.value if previous else AccessKind.WRITE.value,
                            ),
                            first_access_id=previous.access_id if previous else None,
                            second_access_id=access.access_id,
                            detail="lockset became empty: no common lock protects this datum",
                        )
                    )
                previous = access
        return DetectionResult(
            detector_name=self.name,
            findings=findings,
            accesses_analyzed=len(accesses),
        )
