"""Baseline and reference detectors.

The paper's detector (the online dual-clock algorithm wired into the NIC) is
in :mod:`repro.core.detector`.  This package provides the comparison points
used by the detector-accuracy and ablation experiments (E9, E13):

* :mod:`repro.detectors.single_clock` — a single-clock variant that flags any
  causally unordered pair of accesses, including read/read pairs: the false
  positives the paper's write clock exists to eliminate (Section IV-D);
* :mod:`repro.detectors.lockset` — an Eraser-style lockset discipline checker:
  because every one-sided access in this model is serialized by the NIC lock
  on the target cell, lockset analysis reports nothing and therefore *misses*
  every logical race — locks give atomicity, not ordering;
* :mod:`repro.detectors.postmortem` — the paper's algorithm applied offline to
  a recorded trace (the "pre-compiler wrapper" deployment of Section V-B);
* :mod:`repro.detectors.ground_truth` — an execution-varying oracle: a datum
  is truly racy when re-running the program under different legal
  interleavings (different latency seeds) changes the observable outcome,
  which is the paper's own definition of a race condition (Section III-C).
"""

from repro.detectors.base import BaselineDetector, DetectedRace, DetectionResult
from repro.detectors.single_clock import SingleClockDetector
from repro.detectors.lockset import LocksetDetector
from repro.detectors.postmortem import PostMortemDualClockDetector
from repro.detectors.ground_truth import (
    GroundTruth,
    SeedVaryingOracle,
    RuntimeFactory,
)

__all__ = [
    "BaselineDetector",
    "DetectedRace",
    "DetectionResult",
    "SingleClockDetector",
    "LocksetDetector",
    "PostMortemDualClockDetector",
    "GroundTruth",
    "SeedVaryingOracle",
    "RuntimeFactory",
]
