"""The paper's detector deployed offline, over a recorded trace.

Section V-B lists two implementation routes for the detection algorithm: in
the communication library (the online detector wired into the NIC) or "in the
pre-compiler, as wrappers around remote data accesses" — i.e. log every remote
access and analyse the log.  :class:`PostMortemDualClockDetector` is that
second route: it adapts :class:`~repro.trace.replay.TraceReplayer` to the
common :class:`~repro.detectors.base.BaselineDetector` interface so the
accuracy benchmarks can compare both deployments on identical traces (they
should — and the property tests check that they do — agree).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.detector import DetectorConfig
from repro.detectors.base import BaselineDetector, DetectedRace, DetectionResult
from repro.memory.consistency import MemoryAccess
from repro.trace.replay import TraceReplayer


class PostMortemDualClockDetector(BaselineDetector):
    """Replay-based deployment of the dual-clock algorithm."""

    name = "dual-clock-postmortem"

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        epochs: Optional[bool] = None,
    ) -> None:
        #: Detector configuration used during replay (defaults to the paper's
        #: dual-clock settings with the Mattern comparison).
        self.config = config if config is not None else DetectorConfig()
        # Convenience override of the epoch fast path (``DetectorConfig.
        # epochs``) so differential tests can flip just this knob; findings
        # are identical either way by construction.
        if epochs is not None:
            self.config.epochs = epochs

    def detect(
        self, accesses: Sequence[MemoryAccess], world_size: int, syncs: Sequence = ()
    ) -> DetectionResult:
        """Replay *accesses* (and recorded synchronizations) through the detector."""
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        replayer = TraceReplayer(world_size, config=self.config)
        outcome = replayer.replay(list(accesses), syncs=list(syncs))
        findings: List[DetectedRace] = []
        for record in outcome.races:
            findings.append(
                DetectedRace(
                    address=record.address,
                    symbol=record.symbol,
                    ranks=(
                        record.current_rank,
                        record.previous_rank if record.previous_rank is not None else -1,
                    ),
                    kinds=(record.current_kind.value, record.previous_kind.value),
                    detail=record.detail,
                )
            )
        return DetectionResult(
            detector_name=self.name,
            findings=findings,
            accesses_analyzed=len(accesses),
        )
