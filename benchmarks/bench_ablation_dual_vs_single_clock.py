"""E9 — Section IV-D ablation: dual clock vs single clock.

The dual-clock design exists to eliminate false positives on concurrent
read-only accesses.  The benchmark runs both detectors over the same traces —
a read-heavy random workload and the Figure 4 scenario — and checks the shape
the paper claims: the single-clock detector reports a superset of findings,
and the excess is exactly the read/read pairs the dual-clock detector never
reports.
"""

from conftest import record

from repro.detectors.postmortem import PostMortemDualClockDetector
from repro.detectors.single_clock import SingleClockDetector
from repro.workloads.figures import figure4_concurrent_reads
from repro.workloads.random_access import RandomAccessWorkload


def traces():
    """A read-heavy workload trace plus the Figure 4 trace."""
    collected = []
    workload = RandomAccessWorkload(
        world_size=4, operations_per_rank=12, hotspot_fraction=0.7, write_fraction=0.25
    )
    runtime = workload.build(seed=3)
    runtime.run()
    collected.append(("random-read-heavy", runtime.recorder.accesses(), 4))

    fig4 = figure4_concurrent_reads()
    fig4.run()
    collected.append(("figure-4", fig4.recorder.accesses(), 3))
    return collected


def test_single_clock_reports_superset_with_read_read_noise(benchmark):
    def analyse():
        rows = []
        for name, accesses, world in traces():
            dual = PostMortemDualClockDetector().detect(accesses, world)
            single_detector = SingleClockDetector()
            single = single_detector.detect(accesses, world)
            read_read = single_detector.read_read_findings(single)
            rows.append((name, dual.count(), single.count(), len(read_read)))
        return rows

    rows = benchmark(analyse)

    for name, dual_count, single_count, read_read_count in rows:
        # The single-clock detector never reports fewer findings...
        assert single_count >= dual_count, name
        # ...and the dual-clock detector reports no read/read pair at all,
        # while the single-clock one does whenever reads dominate.
        if name == "figure-4":
            assert dual_count == 0 and read_read_count >= 1

    total_dual = sum(r[1] for r in rows)
    total_single = sum(r[2] for r in rows)
    total_read_read = sum(r[3] for r in rows)
    assert total_single > total_dual, "the ablation must show a precision gap"
    assert total_read_read >= total_single - total_dual * 2 - 1 or total_read_read > 0

    record(
        benchmark,
        experiment="E9 / Section IV-D ablation",
        per_trace=[
            {
                "trace": name,
                "dual_clock_findings": dual_count,
                "single_clock_findings": single_count,
                "read_read_false_positives": rr,
            }
            for name, dual_count, single_count, rr in rows
        ],
    )


def test_strict_literal_comparison_is_more_noisy(benchmark):
    """Second ablation: Algorithm 3's strict comparison reports at least as much."""
    from repro.core.detector import ComparisonMode, DetectorConfig

    def analyse():
        results = []
        for name, accesses, world in traces():
            mattern = PostMortemDualClockDetector(
                DetectorConfig(comparison=ComparisonMode.MATTERN)
            ).detect(accesses, world)
            strict = PostMortemDualClockDetector(
                DetectorConfig(comparison=ComparisonMode.STRICT)
            ).detect(accesses, world)
            results.append((name, mattern.count(), strict.count()))
        return results

    results = benchmark(analyse)
    for name, mattern_count, strict_count in results:
        assert strict_count >= mattern_count, name
    record(
        benchmark,
        experiment="E9 strict-comparison ablation",
        per_trace=[
            {"trace": n, "mattern": m, "strict": s} for n, m, s in results
        ],
    )
