"""E14 — verbs overlap: posted halo exchange beats blocking halo exchange.

The asynchronous one-sided layer exists to let programs hide communication
behind computation — the capability the paper's RDMA model promises
(operations serviced entirely by the target NIC, no origin-side blocking
required).  This benchmark runs the *same* Jacobi stencil twice, blocking
(:class:`StencilWorkload`) and overlapped (:class:`VerbsStencilWorkload`),
with identical world size, block size, iteration count and compute cost, and
asserts:

* identical numerics — the overlap is a pure scheduling transformation;
* strictly smaller simulated completion time for the overlapped version, at
  every tested scale and seed;
* the speedup grows with the compute available to hide communication under,
  up to the point where computation fully covers the exchange.
"""

import os

from conftest import record

from repro.runtime.runtime import RuntimeConfig
from repro.workloads import StencilWorkload, VerbsStencilWorkload

WORLD, CELLS, ITERS, COST = 4, 8, 3, 4.0
#: The CI clock-transport smoke job re-runs this whole file with
#: ``REPRO_CLOCK_TRANSPORT=piggyback``: every claim must hold under both
#: transports (they are verdict- and numerics-identical by construction).
CLOCK_TRANSPORT = os.environ.get("REPRO_CLOCK_TRANSPORT", "roundtrip")


def _config():
    return RuntimeConfig(clock_transport=CLOCK_TRANSPORT)


def _pair(seed: int, world=WORLD, compute_cost=COST):
    blocking = StencilWorkload(
        world_size=world, cells_per_rank=CELLS, iterations=ITERS,
        compute_cost=compute_cost, config=_config(),
    ).run(seed)
    overlapped = VerbsStencilWorkload(
        world_size=world, cells_per_rank=CELLS, iterations=ITERS,
        compute_cost=compute_cost, config=_config(),
    ).run(seed)
    return blocking, overlapped


def test_overlapped_stencil_is_faster_and_identical(benchmark):
    benchmark(lambda: _pair(0))
    speedups = []
    for seed in (0, 1, 2):
        blocking, overlapped = _pair(seed)
        # Pure scheduling change: same values, same (absence of) races.
        for rank in range(WORLD):
            assert (
                overlapped.run.per_rank_private[rank]["block"]
                == blocking.run.per_rank_private[rank]["block"]
            ), "overlap must not change the numerics"
        assert blocking.run.race_count == 0 and overlapped.run.race_count == 0
        assert (
            overlapped.run.elapsed_sim_time < blocking.run.elapsed_sim_time
        ), f"seed {seed}: overlap must reduce simulated completion time"
        speedups.append(
            blocking.run.elapsed_sim_time / overlapped.run.elapsed_sim_time
        )
        # The posted puts really went through the verbs path.
        assert overlapped.run.trace_summary.posted_operations > 0
        assert blocking.run.trace_summary.posted_operations == 0
    record(
        benchmark,
        experiment="E14 / verbs overlap",
        world_size=WORLD,
        iterations=ITERS,
        speedups=[round(s, 3) for s in speedups],
        min_speedup=round(min(speedups), 3),
    )


def test_overlap_speedup_grows_with_hidden_compute(benchmark):
    """More interior work to hide under -> larger absolute saving, until the
    computation fully covers the exchange."""

    def sweep():
        savings = {}
        for cost in (1.0, 4.0, 8.0):
            blocking, overlapped = _pair(0, compute_cost=cost)
            savings[cost] = (
                blocking.run.elapsed_sim_time - overlapped.run.elapsed_sim_time
            )
        return savings

    savings = benchmark(sweep)
    assert all(saving > 0 for saving in savings.values())
    assert savings[4.0] >= savings[1.0], (
        "hiding communication under more compute must not shrink the saving"
    )
    record(
        benchmark,
        experiment="E14 / overlap scaling",
        savings={str(k): round(v, 3) for k, v in savings.items()},
    )


def test_overlap_benefit_across_world_sizes(benchmark):
    def sweep():
        out = {}
        for world in (2, 4, 8):
            blocking, overlapped = _pair(0, world=world)
            out[world] = (
                blocking.run.elapsed_sim_time,
                overlapped.run.elapsed_sim_time,
            )
        return out

    times = benchmark(sweep)
    for world, (blocking_t, overlapped_t) in times.items():
        assert overlapped_t < blocking_t, f"world={world}"
    record(
        benchmark,
        experiment="E14 / world sweep",
        times={str(k): (round(b, 2), round(o, 2)) for k, (b, o) in times.items()},
    )
