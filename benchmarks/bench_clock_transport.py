"""E16 — clock transport: piggybacked clocks beat Algorithm 5's round trips.

The unified clock-transport layer's headline claim, pinned per workload
family: switching ``clock_transport`` from ``"roundtrip"`` (a dedicated
CLOCK_FETCH/CLOCK_UPDATE pair per instrumented remote access) to
``"piggyback"`` (clocks ride on the data messages, origin-side joins batched
per queue-pair drain) must

* move **strictly fewer messages** end to end — the entire detection
  message category disappears;
* leave the **detector verdict byte-identical** — same race count, same
  flagged symbols, same records — because both modes share post-time
  snapshots, carried-clock checks and retirement joins, and differ only in
  traffic;
* leave the **numerics identical** — the transport is invisible to the
  application;
* show the **join batching**: a burst of posts retired together costs one
  clock merge per queue-pair drain, visible as ``joins_elided > 0``.

The sweep covers the three workload families the acceptance criteria name —
the overlapped verbs stencil, the SRQ RPC echo server, and the RMW pattern
corpus (the latter through the exploration campaign runner, so the verdict
identity is checked across explored schedules, not just one run) — and
writes ``BENCH_clock_transport.json`` (messages per operation, detection
traffic bytes, join counts) so CI tracks the perf trajectory per push.
"""

import json
import os

from conftest import record

from repro.explore.campaign import CampaignConfig, run_campaign
from repro.runtime.runtime import RuntimeConfig
from repro.workloads import RPCEchoWorkload, VerbsStencilWorkload

#: Where the per-push perf artifact lands (CI uploads it).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_clock_transport.json")

MODES = ("roundtrip", "piggyback")


def _stencil(mode, seed=0):
    return VerbsStencilWorkload(
        world_size=4, cells_per_rank=8, iterations=3, compute_cost=2.0,
        config=RuntimeConfig(clock_transport=mode),
    ).run(seed)


def _rpc(mode, seed=0):
    return RPCEchoWorkload(
        num_clients=3, requests_per_client=2,
        config=RuntimeConfig(clock_transport=mode),
    ).run(seed)


def _verdict(run):
    """The race report reduced to a comparable value (order-insensitive)."""
    return sorted(
        (r.address.rank, r.address.offset, r.current_rank, r.current_kind.value,
         r.previous_rank, r.symbol)
        for r in run.race_records()
    )


def _measure(result):
    stats = result.fabric_stats
    ops = max(1, result.trace_summary.operations)
    return {
        "total_messages": stats.total_messages,
        "data_messages": stats.data_messages,
        "detection_messages": stats.detection_messages,
        "detection_bytes": stats.detection_bytes,
        "piggybacked_bytes": result.clock_transport_stats["piggybacked_bytes"],
        "messages_per_op": round(stats.total_messages / ops, 3),
        "joins_performed": result.clock_transport_stats["joins_performed"],
        "joins_elided": result.clock_transport_stats["joins_elided"],
        "races": result.race_count,
    }


def test_piggyback_fewer_messages_identical_verdicts(benchmark):
    benchmark(lambda: (_stencil("piggyback"), _rpc("piggyback")))
    report = {}
    for name, build in (("stencil", _stencil), ("rpc-echo", _rpc)):
        for seed in (0, 1):
            runs = {mode: build(mode, seed) for mode in MODES}
            roundtrip, piggyback = runs["roundtrip"].run, runs["piggyback"].run
            # Byte-identical detector verdicts...
            assert _verdict(piggyback) == _verdict(roundtrip), (
                f"{name}: transport changed the race report"
            )
            # ...identical numerics.  The stencil is deterministic
            # (constant latency), so bitwise; the RPC echo draws per-message
            # uniform latencies, and removing the CLOCK messages shifts the
            # RNG stream — which client lands in which SRQ slot is
            # schedule-dependent — so compare the value multisets.
            if name == "stencil":
                assert piggyback.final_shared_values == roundtrip.final_shared_values
            else:
                for symbol, values in piggyback.final_shared_values.items():
                    assert sorted(map(repr, values)) == sorted(
                        map(repr, roundtrip.final_shared_values[symbol])
                    ), f"{name}: transport changed the delivered payloads"
            # ...strictly fewer messages, with detection traffic gone entirely.
            assert (
                piggyback.fabric_stats.total_messages
                < roundtrip.fabric_stats.total_messages
            ), f"{name}: piggybacking must move strictly fewer messages"
            assert piggyback.fabric_stats.detection_messages == 0
            assert roundtrip.fabric_stats.detection_messages > 0
        report[name] = {mode: _measure(runs[mode].run) for mode in MODES}
    record(
        benchmark,
        experiment="E16 / clock transport",
        **{
            f"{name}_{mode}_messages": report[name][mode]["total_messages"]
            for name in report for mode in MODES
        },
    )
    _write_artifact(report)


def test_qp_drain_batches_clock_joins(benchmark):
    """A burst of posts retired together costs one join per drain under
    piggybacking (joins elided), while the roundtrip transport joins per
    completion — at identical resulting clocks and verdicts."""

    def burst(mode):
        from repro.runtime.runtime import DSMRuntime

        runtime = DSMRuntime(RuntimeConfig(world_size=3, clock_transport=mode))
        runtime.declare_array("cells", 8, owner=1, initial=0)

        def poster(api):
            for index in range(8):
                api.iput("cells", index, index=index)
            # Compute while the burst completes, then retire it in one go —
            # the batch shape the per-drain join batching is built for.
            yield from api.compute(100.0)
            yield from api.wait_all()

        def idle(api):
            yield from api.compute(0.0)

        runtime.set_program(0, poster)
        runtime.set_program(1, idle)
        runtime.set_program(2, idle)
        return runtime.run()

    results = benchmark(lambda: {mode: burst(mode) for mode in MODES})
    piggyback = results["piggyback"].clock_transport_stats
    roundtrip = results["roundtrip"].clock_transport_stats
    assert piggyback["joins_elided"] > 0, (
        "a burst retired together must elide per-access joins"
    )
    assert piggyback["joins_performed"] < roundtrip["joins_performed"], (
        "batching must perform strictly fewer joins than per-access merging"
    )
    assert results["piggyback"].race_count == results["roundtrip"].race_count == 0
    record(
        benchmark,
        experiment="E16 / join batching",
        joins_roundtrip=roundtrip["joins_performed"],
        joins_piggyback=piggyback["joins_performed"],
        joins_elided=piggyback["joins_elided"],
    )


def test_rmw_corpus_campaign_verdicts_identical_across_transports(benchmark):
    """Across explored schedules of the RMW corpus, both transports flag the
    same symbols in the same fraction of schedules (the every-schedule
    guarantee holds in both), and piggybacking moves fewer messages."""

    def campaigns():
        out = {}
        for mode in MODES:
            out[mode] = run_campaign(
                CampaignConfig(
                    strategy="systematic", budget=4, branch_factor=2,
                    quantum=4.0, clock_transport=mode,
                ),
                corpus="rmw",
            )
        return out

    reports = benchmark(campaigns)
    roundtrip, piggyback = reports["roundtrip"], reports["piggyback"]
    assert piggyback.fully_consistent() and roundtrip.fully_consistent(), (
        "the every-schedule guarantee must hold under both transports"
    )
    assert (
        piggyback.matrix_clock_consistency() == roundtrip.matrix_clock_consistency()
    )
    for pb_pattern, rt_pattern in zip(piggyback.per_pattern, roundtrip.per_pattern):
        assert pb_pattern["flagged_in_any"] == rt_pattern["flagged_in_any"], (
            f"{pb_pattern['pattern']}: transport changed a verdict"
        )
        pb_messages = sum(o["total_messages"] for o in pb_pattern["outcomes"])
        rt_messages = sum(o["total_messages"] for o in rt_pattern["outcomes"])
        assert pb_messages < rt_messages, (
            f"{pb_pattern['pattern']}: piggybacking must move fewer messages"
        )
    record(
        benchmark,
        experiment="E16 / RMW corpus sweep",
        patterns=len(piggyback.per_pattern),
    )


def _write_artifact(report) -> None:
    payload = {
        "format": "repro-bench-clock-transport",
        "version": 1,
        "modes": list(MODES),
        "workloads": report,
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
