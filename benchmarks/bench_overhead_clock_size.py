"""E8 — Section IV-C / IV-D: clock storage grows with n; dual clock doubles it.

Charron-Bost's bound says vector clocks need at least ``n`` entries, so the
per-datum storage of the detector is ``2·n`` entries (access clock + write
clock) and cannot be reduced.  The benchmark measures the clock entries a real
run allocates for several world sizes and checks the analytical model:
linear growth in ``n`` per shared datum and a 2x ratio over a single-clock
scheme.
"""

from conftest import record

from repro.analysis.overhead import clock_storage_model
from repro.workloads.random_access import RandomAccessWorkload

WORLD_SIZES = (2, 4, 8, 16)


def measure(world_size):
    workload = RandomAccessWorkload(
        world_size=world_size, operations_per_rank=6, hotspot_fraction=0.5,
        array_length=32,
    )
    result = workload.run(seed=0).run
    return result.clock_storage_entries


def test_clock_storage_grows_with_world_size(benchmark):
    entries = benchmark(lambda: [measure(n) for n in WORLD_SIZES])

    # Monotone growth in n (the paper: clocks cannot be smaller than n).
    assert entries == sorted(entries)
    assert entries[-1] > entries[0]

    # Per-datum model: doubling n doubles the per-datum clock entries.
    models = [clock_storage_model(n, shared_data=32) for n in WORLD_SIZES]
    for small, large in zip(models, models[1:]):
        assert large.entries_per_datum_dual == 2 * small.entries_per_datum_dual

    record(
        benchmark,
        experiment="E8 / Section IV-C",
        world_sizes=list(WORLD_SIZES),
        measured_entries=entries,
        per_datum_entries=[m.entries_per_datum_dual for m in models],
    )


def test_dual_clock_doubles_per_datum_storage(benchmark):
    """Section IV-D: 'it doubles the necessary amount of memory'."""
    models = benchmark(lambda: [clock_storage_model(n, shared_data=100) for n in WORLD_SIZES])
    for model in models:
        assert model.dual_over_single_ratio == 2.0
    record(
        benchmark,
        experiment="E8 dual-vs-single storage",
        ratios=[m.dual_over_single_ratio for m in models],
        dual_bytes_for_100_data=[m.datum_entries_dual * 8 for m in models],
    )
