"""E15 — gathered SEND vs per-cell puts: same bytes moved, fewer messages.

The scatter/gather claim of the two-sided verbs layer: moving a k-cell
boundary plane as ONE gathered SEND into a posted receive buffer must beat k
individually posted puts on every axis the model accounts for —

* **message count**: one SEND_REQUEST vs k PUT_DATA messages per plane
  (the receive side costs no wire traffic: buffers are posted locally);
* **payload bytes**: identical — ``k * cell_bytes`` either way, so the win
  is pure message-count/overhead, not data compression;
* **detection traffic**: one batched clock round trip per SEND message vs
  one per put (the scattered cells share a target, their clocks travel
  together);
* **simulated completion time**: strictly smaller, with identical numerics
  (the transport is invisible to the Jacobi relaxation).

:class:`~repro.workloads.send_recv_stencil.SendRecvStencilWorkload` runs the
same multi-plane stencil under both transports; the receive buffers are
pre-posted, so the send mode never pays an RNR retransmission (asserted).
"""

import os

from conftest import record

from repro.net.message import HEADER_BYTES
from repro.runtime.runtime import RuntimeConfig
from repro.workloads import SendRecvStencilWorkload

WORLD, CELLS, PLANE, ITERS, COST = 4, 6, 4, 3, 1.0
#: The CI clock-transport smoke job re-runs this whole file with
#: ``REPRO_CLOCK_TRANSPORT=piggyback``: every claim must hold under both
#: transports (they are verdict- and numerics-identical by construction).
CLOCK_TRANSPORT = os.environ.get("REPRO_CLOCK_TRANSPORT", "roundtrip")


def _pair(seed: int, plane=PLANE, world=WORLD):
    send = SendRecvStencilWorkload(
        world_size=world, cells_per_rank=CELLS, plane_width=plane,
        iterations=ITERS, compute_cost=COST, transport="send",
        config=RuntimeConfig(clock_transport=CLOCK_TRANSPORT),
    ).run(seed)
    puts = SendRecvStencilWorkload(
        world_size=world, cells_per_rank=CELLS, plane_width=plane,
        iterations=ITERS, compute_cost=COST, transport="puts",
        config=RuntimeConfig(clock_transport=CLOCK_TRANSPORT),
    ).run(seed)
    return send, puts


def _payload_bytes(run):
    """Data bytes net of headers and piggybacked clocks: what the app moved."""
    stats = run.fabric_stats
    return (
        stats.data_bytes
        - stats.data_messages * HEADER_BYTES
        - run.clock_transport_stats.get("piggybacked_bytes", 0)
    )


def test_gathered_send_same_bytes_fewer_messages(benchmark):
    benchmark(lambda: _pair(0))
    for seed in (0, 1, 2):
        send, puts = _pair(seed)
        # The transport must be invisible to the numerics and to detection.
        for rank in range(WORLD):
            assert (
                send.run.per_rank_private[rank]["tile"]
                == puts.run.per_rank_private[rank]["tile"]
            ), "gathered sends must not change the numerics"
        assert send.run.race_count == 0 and puts.run.race_count == 0
        # Same application bytes on the wire...
        assert _payload_bytes(send.run) == _payload_bytes(puts.run), "both transports must move exactly the same payload bytes"
        # ...carried by strictly fewer messages...
        assert (
            send.run.fabric_stats.data_messages
            < puts.run.fabric_stats.data_messages
        ), "the gathered plane must use fewer messages than per-cell puts"
        # ...with no hidden RNR retransmissions inflating the send side.
        send_ops = [
            op for op in send.runtime.recorder.operations()
            if op.operation == "send"
        ]
        assert send_ops and all(op.data_messages == 1 for op in send_ops), (
            "pre-posted receives must make every SEND land on its first try"
        )
        # ...and a strictly faster exchange.
        assert send.run.elapsed_sim_time < puts.run.elapsed_sim_time
    send, puts = _pair(0)
    record(
        benchmark,
        experiment="E15 / gathered send vs per-cell puts",
        plane_width=PLANE,
        data_messages_send=send.run.fabric_stats.data_messages,
        data_messages_puts=puts.run.fabric_stats.data_messages,
        payload_bytes=_payload_bytes(send.run),
        time_send=round(send.run.elapsed_sim_time, 3),
        time_puts=round(puts.run.elapsed_sim_time, 3),
    )


def test_message_saving_grows_with_plane_width(benchmark):
    """k cells per plane -> the puts transport pays ~k messages per exchange
    where the send transport pays 1; the ratio must grow with k."""

    def sweep():
        ratios = {}
        for plane in (2, 4, 8):
            send, puts = _pair(0, plane=plane)
            ratios[plane] = (
                puts.run.fabric_stats.data_messages
                / send.run.fabric_stats.data_messages
            )
        return ratios

    ratios = benchmark(sweep)
    assert ratios[4] > ratios[2] and ratios[8] > ratios[4], (
        "message saving must grow with the plane width"
    )
    record(
        benchmark,
        experiment="E15 / plane-width sweep",
        message_ratios={str(k): round(v, 2) for k, v in ratios.items()},
    )


def test_detection_overhead_shrinks_with_gathered_sends(benchmark):
    """One batched clock per SEND message vs one per put: the detection
    traffic attributable to the exchange must shrink — dedicated round
    trips under the roundtrip transport, piggybacked clock bytes under
    piggyback (where no CLOCK message ever crosses the fabric)."""

    def run():
        return _pair(0)

    send, puts = benchmark(run)
    if CLOCK_TRANSPORT == "piggyback":
        assert send.run.fabric_stats.detection_messages == 0
        assert puts.run.fabric_stats.detection_messages == 0
        assert (
            send.run.clock_transport_stats["piggybacked_bytes"]
            < puts.run.clock_transport_stats["piggybacked_bytes"]
        ), "fewer data messages must mean fewer piggybacked clocks"
    else:
        assert (
            send.run.fabric_stats.detection_messages
            < puts.run.fabric_stats.detection_messages
        ), "batched clock traffic must beat per-cell clock round trips"
    record(
        benchmark,
        experiment="E15 / detection overhead",
        clock_transport=CLOCK_TRANSPORT,
        detection_messages_send=send.run.fabric_stats.detection_messages,
        detection_messages_puts=puts.run.fabric_stats.detection_messages,
    )
