"""Observability must be free of observable effect: obs on/off, same run.

The observability layer (``repro.obs``) is always-on for metrics and
opt-in for span tracing, and its hard rule is that neither mode may perturb
the simulation: verdicts, final shared values, and the metric snapshot itself
must be byte-identical whether span tracing is enabled or not, and
byte-identical across reruns at a fixed seed.  This benchmark asserts exactly
that on both a racy and a clean workload, measures the Python-side cost of
tracing, and writes ``BENCH_obs_overhead.json`` so ``tools/perf_gate.py``
catches silent growth in trace volume or instrument count.
"""

import json
import os

from conftest import record

from repro.runtime.runtime import RuntimeConfig
from repro.workloads.rpc_echo import RPCEchoWorkload
from repro.workloads.stencil import StencilWorkload

#: Where the per-push perf artifact lands (CI uploads it).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_obs_overhead.json")


def _verdict(run):
    """The race report reduced to a comparable value (order-insensitive)."""
    return sorted(
        (r.address.rank, r.address.offset, r.current_rank, r.current_kind.value,
         r.previous_rank, r.symbol)
        for r in run.race_records()
    )


def _build(workload_name, trace_spans, seed=0):
    config = RuntimeConfig(trace_spans=trace_spans)
    if workload_name == "stencil-racy":
        workload = StencilWorkload(
            world_size=4, cells_per_rank=6, iterations=2, use_barriers=False,
            config=config,
        )
    else:
        workload = RPCEchoWorkload(
            num_clients=3, requests_per_client=2, racy_buffer_reuse=True,
            config=config,
        )
    return workload.run(seed=seed)


def test_span_tracing_does_not_perturb_the_simulation(benchmark):
    benchmark(lambda: _build("rpc-echo", trace_spans=True))

    report = {}
    for name in ("stencil-racy", "rpc-echo"):
        plain = _build(name, trace_spans=False)
        traced = _build(name, trace_spans=True)

        # Tracing changes nothing the simulation can see.
        assert _verdict(traced.run) == _verdict(plain.run), name
        assert traced.run.final_shared_values == plain.run.final_shared_values, name
        assert traced.run.race_count > 0 and plain.run.race_count > 0, name
        # The metric snapshot itself is part of the contract: canonical JSON,
        # byte-identical with tracing on or off, and across reruns.
        plain_snapshot = json.dumps(plain.run.metrics, sort_keys=True)
        assert json.dumps(traced.run.metrics, sort_keys=True) == plain_snapshot, name
        rerun = _build(name, trace_spans=False)
        assert json.dumps(rerun.run.metrics, sort_keys=True) == plain_snapshot, name

        # With tracing off the span buffer stays empty; on, it holds a
        # deterministic event count.
        assert len(plain.runtime.sim.obs.spans.events()) == 0, name
        events = traced.runtime.sim.obs.spans.events()
        assert len(events) > 0, name
        report[name] = {
            "trace_events": len(events),
            "trace_tracks": len(traced.runtime.sim.obs.spans.tracks()),
            "instruments": len(traced.run.metrics),
            "races": traced.run.race_count,
            "checks": sum(
                entry["checks"] for entry in traced.run.detection_profile.values()
            ),
        }

    _write_artifact(report)
    record(benchmark, experiment="obs overhead", **{
        f"{name}_{key}": value
        for name, stats in report.items()
        for key, value in stats.items()
    })


def _write_artifact(report: dict) -> None:
    payload = {"format": "repro-bench-obs-overhead", "version": 1, **report}
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
