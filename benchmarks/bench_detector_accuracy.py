"""E13 — detector accuracy: the paper's detector vs baselines vs ground truth.

The labelled pattern corpus (paper figures + synchronized/unsynchronized
workload pairs + hand-written kernels) provides per-program and per-symbol
ground truth.  Four detectors are scored on it:

* the online dual-clock detector (the paper's algorithm, in the NIC);
* its post-mortem deployment (trace replay, Section V-B);
* the single-clock ablation (no write clock);
* the lockset baseline (Eraser-style discipline checking).

Expected shape: the two dual-clock deployments achieve perfect program-level
accuracy on the corpus; the single-clock ablation keeps recall but loses
precision (read/read noise); lockset has (near-)zero recall because the NIC
locks satisfy its discipline while leaving the logical races in place.
"""

from conftest import record

from repro.analysis.metrics import score_patterns
from repro.detectors.lockset import LocksetDetector
from repro.detectors.postmortem import PostMortemDualClockDetector
from repro.detectors.single_clock import SingleClockDetector
from repro.explore.campaign import CampaignConfig, run_campaign
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

SEED = 0


def score_all():
    corpus = pattern_corpus()

    def online_flagged(pattern):
        runtime = pattern.build(SEED)
        result = runtime.run()
        return {s for s in result.races.by_symbol() if s is not None}

    def offline_flagged(detector):
        def flagged(pattern):
            runtime = pattern.build(SEED)
            runtime.run()
            found = detector.detect(
                runtime.recorder.accesses(),
                runtime.config.world_size,
                syncs=runtime.recorder.syncs(),
            )
            return found.flagged_symbols()
        return flagged

    scores = {
        "dual-clock (online)": score_patterns(corpus, online_flagged, "dual-clock (online)", seed=SEED),
        "dual-clock (post-mortem)": score_patterns(
            corpus, offline_flagged(PostMortemDualClockDetector()), "dual-clock (post-mortem)", seed=SEED
        ),
        "single-clock": score_patterns(
            corpus, offline_flagged(SingleClockDetector()), "single-clock", seed=SEED
        ),
        "lockset": score_patterns(
            corpus, offline_flagged(LocksetDetector()), "lockset", seed=SEED
        ),
    }
    return scores


def test_detector_accuracy_on_labelled_corpus(benchmark):
    scores = benchmark(score_all)

    dual = scores["dual-clock (online)"]
    postmortem = scores["dual-clock (post-mortem)"]
    single = scores["single-clock"]
    lockset = scores["lockset"]

    # The paper's detector gets every program-level verdict right on the corpus.
    assert dual.program_level.accuracy == 1.0
    # The two deployments of the same algorithm agree.
    assert postmortem.program_level.accuracy == dual.program_level.accuracy
    # The single-clock ablation keeps recall but loses precision.
    assert single.program_level.recall if hasattr(single.program_level, "recall") else True
    assert single.symbol_level.recall >= dual.symbol_level.recall - 1e-9
    assert single.symbol_level.precision < dual.symbol_level.precision
    # Lockset misses essentially everything (locks give atomicity, not order).
    assert lockset.symbol_level.recall <= 0.25
    assert lockset.program_level.accuracy < dual.program_level.accuracy

    record(
        benchmark,
        experiment="E13 detector accuracy",
        table=[
            {
                "detector": name,
                "program_accuracy": round(score.program_level.accuracy, 3),
                "symbol_precision": round(score.symbol_level.precision, 3),
                "symbol_recall": round(score.symbol_level.recall, 3),
                "symbol_f1": round(score.symbol_level.f1, 3),
            }
            for name, score in scores.items()
        ],
    )


def rmw_sweep():
    """E14 — atomic-aware accuracy across schedules, per RMW-pair knob.

    The RMW corpus is scored through the schedule-exploration campaign
    runner (not one run per seed): each pattern's verdict aggregates a
    fuzzed sample of its schedule *space*, once per
    ``treat_rmw_pairs_as_ordered`` setting.  Labels follow the operational
    definition, so pure-RMW contention with deterministic outcomes (atomic
    counter, CAS flag claim) counts against precision while the knob is off
    and stops being flagged once it is on — with recall pinned by the
    get-then-put counter and the work-stealing head scans, which must stay
    flagged under either setting.
    """
    reports = {}
    for ordered in (False, True):
        config = CampaignConfig(
            strategy="fuzz",
            budget=4,
            seed=SEED,
            quantum=4.0,
            treat_rmw_pairs_as_ordered=ordered,
        )
        reports[ordered] = run_campaign(config, corpus="rmw")
    return reports


def test_rmw_accuracy_per_ordering_knob_through_campaign(benchmark):
    reports = benchmark(rmw_sweep)
    corpus = {p.name: p for p in rmw_pattern_corpus()}

    default_knob = reports[False].detector_scores()["matrix-clock"]
    ordered_knob = reports[True].detector_scores()["matrix-clock"]

    # The knob buys precision: every pure-RMW benign pattern goes silent.
    assert ordered_knob.symbol_level.precision > default_knob.symbol_level.precision
    assert ordered_knob.symbol_level.precision == 1.0
    assert ordered_knob.program_level.accuracy == 1.0
    # ... and costs no recall under either setting: plain-access races and
    # RMW-vs-plain-read races stay flagged.
    assert default_knob.symbol_level.recall == 1.0
    assert ordered_knob.symbol_level.recall == 1.0

    # The true race is flagged in every explored schedule, on both settings.
    for ordered in (False, True):
        consistency = reports[ordered].matrix_clock_consistency()
        assert consistency["rmw-counter-getput"]["counter"] == 1.0

    # Under the default knob, each benign pure-RMW pattern is flagged
    # (that's the imprecision the knob removes).
    default_flagged = {
        p["pattern"]: set(p["flagged_in_any"]["matrix-clock"])
        for p in reports[False].per_pattern
    }
    assert "counter" in default_flagged["rmw-counter-atomic"]
    assert "flag" in default_flagged["rmw-cas-flag"]

    record(
        benchmark,
        experiment="E14 atomic-aware accuracy per RMW knob (campaign)",
        table=[
            {
                "treat_rmw_pairs_as_ordered": ordered,
                "schedules_per_pattern": reports[ordered].config.budget,
                "patterns": len(corpus),
                "program_accuracy": round(
                    reports[ordered].detector_scores()["matrix-clock"].program_level.accuracy, 3
                ),
                "symbol_precision": round(
                    reports[ordered].detector_scores()["matrix-clock"].symbol_level.precision, 3
                ),
                "symbol_recall": round(
                    reports[ordered].detector_scores()["matrix-clock"].symbol_level.recall, 3
                ),
            }
            for ordered in (False, True)
        ],
    )
