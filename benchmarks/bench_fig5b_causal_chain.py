"""E6 — Figure 5b: a causally chained get/put sequence produces no race.

``get1`` (P1 reads ``a``), ``m1`` (P0 writes ``b``), ``m2`` (P1 writes ``c``
after reading ``b``), ``m3`` (P2 writes ``a`` after reading ``c``): every pair
of conflicting accesses is connected by the data that flowed between them, so
the detector must stay silent and the chain must deliver its payloads.
"""

from conftest import record

from repro.workloads.figures import figure5b_causal_chain


def run_scenario():
    runtime = figure5b_causal_chain()
    result = runtime.run()
    return runtime, result


def test_fig5b_causal_chain_is_silent(benchmark):
    _runtime, result = benchmark(run_scenario)

    assert result.race_count == 0, (
        "Figure 5b: the causally ordered chain must not be reported\n"
        + result.races.summary()
    )
    # The chain really happened: P1 read the initial value of a, the final
    # write of a is m3 carrying the value propagated through b and c.
    assert result.per_rank_private[1]["a"] == "A0"
    final_a = result.shared_value("a")
    assert final_a[0] == "m3"
    assert "m2" in repr(final_a)

    record(
        benchmark,
        experiment="E6 / Figure 5b",
        races=result.race_count,
        chain_hops=3,
        final_a=str(final_a),
    )


def test_fig5b_breaking_the_chain_restores_the_race(benchmark):
    """Control: cut the chain before P2 (no m2 at all) and m3 races with get1.

    In Figure 5b the final put is ordered because the causal history of
    ``get1`` reached P2 through ``m1`` and ``m2``.  If P2 never receives
    anything, its put of ``a`` carries a clock that is incomparable with the
    read recorded on ``a`` and the detector reports the pair.
    """
    from repro.runtime.runtime import DSMRuntime, RuntimeConfig

    def run():
        runtime = DSMRuntime(RuntimeConfig(world_size=3, latency="constant"))
        runtime.declare_scalar("a", owner=0, initial="A0")
        runtime.declare_scalar("b", owner=1, initial=None)

        def p0(api):
            yield from api.compute(10.0)
            yield from api.put("b", "m1")

        def p1(api):
            value = yield from api.get("a")      # get1
            api.private.write("a", value)
            yield from api.compute(30.0)
            yield from api.get("b")              # still reads m1, but never relays

        def p2(api):
            # The broken link: nothing ever reaches P2 before it writes a.
            yield from api.compute(60.0)
            yield from api.put("a", "m3-unchained")

        runtime.set_program(0, p0)
        runtime.set_program(1, p1)
        runtime.set_program(2, p2)
        return runtime.run()

    result = benchmark(run)
    racy_symbols = {record_.symbol for record_ in result.race_records()}
    assert "a" in racy_symbols, "without the causal chain, m3 races with get1 on a"
    record(benchmark, experiment="E6 control", races=result.race_count)
