"""Critical-path extraction: exact attribution, gated end-to-end sim time.

Runs a barrier-heavy, a lock-contended, and a pipeline-shaped workload from
the racy-pattern corpus with span tracing on, extracts each run's critical
path, and asserts the analyzer's exactness contract:

* the path tiles ``[0, elapsed_sim_time]`` — its length equals the simulated
  run time *exactly* (rational arithmetic, not within-epsilon);
* per-category attribution sums to the path length exactly;
* the what-if engine at factor 1.0 reproduces the run time exactly, and
  shrinking the dominant category never predicts a slower run.

Writes ``BENCH_critical_path.json`` with per-workload ``*_sim_time`` leaves
(gated by ``tools/perf_gate.py`` — the end-to-end run time joins the perf
trajectory) and ``critical_path`` sections the gate's regression explainer
uses to attribute any future slowdown to its category.
"""

import json
import os
from fractions import Fraction

from conftest import record

from repro.obs.critical_path import CriticalPathAnalyzer
from repro.obs.whatif import WhatIfEngine
from repro.workloads.racy_patterns import pattern_corpus, rmw_pattern_corpus

#: Where the per-push perf artifact lands (CI uploads it).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_critical_path.json")

#: Corpus patterns exercising distinct path compositions: barrier fan-in,
#: lock serialization, and a long send/recv pipeline.
WORKLOADS = ("rmw-with-barriers", "stencil-no-barriers", "master-worker")

SEED = 7


def _patterns():
    by_name = {p.name: p for p in pattern_corpus() + rmw_pattern_corpus()}
    return [by_name[name] for name in WORKLOADS]


def _traced_run(pattern, seed=SEED):
    runtime = pattern.build(seed=seed)
    runtime.sim.obs.configure(trace_spans=True)
    result = runtime.run()
    return runtime, result


def test_critical_path_attribution_is_exact_and_gated(benchmark):
    runs = {p.name: _traced_run(p) for p in _patterns()}

    def analyze_all():
        return {
            name: CriticalPathAnalyzer.from_tracer(
                runtime.sim.obs.spans, result.elapsed_sim_time
            ).critical_path()
            for name, (runtime, result) in runs.items()
        }

    paths = benchmark(analyze_all)

    report = {}
    for name, (runtime, result) in runs.items():
        path = paths[name]
        analyzer = CriticalPathAnalyzer.from_tracer(
            runtime.sim.obs.spans, result.elapsed_sim_time
        )
        # Exactness contract: length == run time, attribution sums to length.
        assert path.length_exact == Fraction(result.elapsed_sim_time), name
        attribution = path.attribution_exact()
        assert sum(attribution.values(), Fraction(0)) == path.length_exact, name
        # What-if contract: factor 1.0 is a no-op; shrinking the dominant
        # category cannot predict a slower run.
        engine = WhatIfEngine(analyzer)
        assert engine.predict_exact() == Fraction(result.elapsed_sim_time), name
        dominant = path.dominant_category()
        shrunk = engine.predict({dominant: 0.9})
        assert shrunk <= result.elapsed_sim_time, name
        summary = path.summary()
        report[name] = {
            "total_sim_time": result.elapsed_sim_time,
            "whatif_dominant90_sim_time": shrunk,
            "critical_path": {
                "path_sim_time": summary["path_sim_time"],
                "segments": summary["segments"],
                "dominant": summary["dominant"],
                "categories": summary["categories"],
            },
        }

    _write_artifact(report)
    record(benchmark, experiment="critical path", **{
        f"{name}_{key}": stats[key]
        for name, stats in report.items()
        for key in ("total_sim_time", "whatif_dominant90_sim_time")
    })


def _write_artifact(report: dict) -> None:
    payload = {"format": "repro-bench-critical-path", "version": 1, **report}
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
