"""E10 — Section IV-D: intentional races are signalled but never fatal.

The master/worker pattern races on purpose (task tickets, completion
counter).  The benchmark checks the paper's policy end to end: the program
runs to completion under the default signalling policy, every task result is
produced, the races are reported, and they concentrate on the coordination
cells.
"""

from conftest import record

from repro.workloads.master_worker import MasterWorkerWorkload


def run_workload():
    workload = MasterWorkerWorkload(world_size=5, tasks=10)
    outcome = workload.run(seed=0)
    return workload, outcome


def test_benign_races_signalled_but_not_fatal(benchmark):
    workload, outcome = benchmark(run_workload)
    result = outcome.run

    # The run completed and produced every result despite the races.
    results = result.final_shared_values["results"]
    assert all(value is not None for value in results)
    assert len(results) == workload.tasks

    # Races were signalled...
    assert result.race_count > 0
    # ...and they involve the intentionally racy coordination cells.
    flagged = outcome.detected_symbols()
    assert flagged & {"ticket", "completed"}
    assert flagged <= workload.expected_racy_symbols

    record(
        benchmark,
        experiment="E10 / Section IV-D benign races",
        tasks=workload.tasks,
        race_signals=result.race_count,
        distinct_races=result.distinct_race_count,
        flagged_symbols=sorted(flagged),
        final_completed_counter=result.shared_value("completed"),
    )


def test_completion_counter_nondeterminism_across_interleavings(benchmark):
    """The observable symptom of the benign race: lost updates vary by seed."""

    def measure():
        counters = []
        for seed in range(4):
            outcome = MasterWorkerWorkload(world_size=5, tasks=10).run(seed=seed)
            counters.append(outcome.run.shared_value("completed"))
        return counters

    counters = benchmark(measure)
    # The counter is data-dependent on the interleaving; across several seeds
    # we expect at least two different final values (the race is observable).
    assert len(set(counters)) >= 2
    record(
        benchmark,
        experiment="E10 observable nondeterminism",
        final_counters=counters,
    )
